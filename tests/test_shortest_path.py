"""Tests for Dijkstra, Floyd–Warshall, Yen's kSP and bounded path enumeration."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planning.graph import BusNetwork
from repro.planning.shortest_path import (
    all_pairs_shortest_distances,
    dijkstra,
    enumerate_paths_within_distance,
    floyd_warshall,
    shortest_path,
    yen_k_shortest_paths,
)


@pytest.fixture
def grid_network():
    network = BusNetwork()
    size = 4
    for row in range(size):
        for column in range(size):
            network.add_vertex(row * size + column, (float(column), float(row)))
    for row in range(size):
        for column in range(size):
            vertex = row * size + column
            if column + 1 < size:
                network.add_edge(vertex, vertex + 1)
            if row + 1 < size:
                network.add_edge(vertex, vertex + size)
    return network


def to_networkx(network: BusNetwork) -> nx.Graph:
    graph = nx.Graph()
    for vertex in network.vertices():
        graph.add_node(vertex)
    for u, v, weight in network.edges():
        graph.add_edge(u, v, weight=weight)
    return graph


def random_network(seed: int, vertices: int = 12, extra_edges: int = 8) -> BusNetwork:
    import random

    rng = random.Random(seed)
    network = BusNetwork()
    for vertex in range(vertices):
        network.add_vertex(vertex, (rng.uniform(0, 10), rng.uniform(0, 10)))
    # Chain for connectivity plus random chords.
    for vertex in range(vertices - 1):
        network.add_edge(vertex, vertex + 1)
    for _ in range(extra_edges):
        u, v = rng.sample(range(vertices), 2)
        if not network.has_edge(u, v):
            network.add_edge(u, v)
    return network


class TestDijkstra:
    def test_distances_on_grid(self, grid_network):
        distances, _ = dijkstra(grid_network, 0)
        assert distances[0] == 0.0
        assert distances[3] == pytest.approx(3.0)
        assert distances[15] == pytest.approx(6.0)

    def test_early_exit_with_target(self, grid_network):
        distances, _ = dijkstra(grid_network, 0, target=5)
        assert 5 in distances

    def test_unknown_source_raises(self, grid_network):
        with pytest.raises(KeyError):
            dijkstra(grid_network, 999)

    def test_forbidden_vertices(self, grid_network):
        # Block most of the second row; the path to vertex 8 must detour all
        # the way around via the last column.
        distances, _ = dijkstra(grid_network, 0, forbidden_vertices={4, 5, 6})
        assert distances[8] == pytest.approx(8.0)

    def test_forbidden_source_returns_empty(self, grid_network):
        distances, predecessors = dijkstra(grid_network, 0, forbidden_vertices={0})
        assert distances == {}
        assert predecessors == {}

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_matches_networkx(self, seed):
        network = random_network(seed)
        reference = to_networkx(network)
        distances, _ = dijkstra(network, 0)
        expected = nx.single_source_dijkstra_path_length(reference, 0)
        assert set(distances) == set(expected)
        for vertex, distance in expected.items():
            assert distances[vertex] == pytest.approx(distance)


class TestShortestPath:
    def test_path_endpoints_and_distance(self, grid_network):
        distance, path = shortest_path(grid_network, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert distance == pytest.approx(6.0)
        assert grid_network.path_distance(path) == pytest.approx(distance)

    def test_unreachable_target(self):
        network = BusNetwork()
        network.add_vertex(0, (0, 0))
        network.add_vertex(1, (5, 5))
        distance, path = shortest_path(network, 0, 1)
        assert math.isinf(distance)
        assert path == ()

    def test_source_equals_target(self, grid_network):
        distance, path = shortest_path(grid_network, 3, 3)
        assert distance == 0.0
        assert path == (3,)


class TestAllPairs:
    def test_matches_floyd_warshall(self):
        network = random_network(5, vertices=9, extra_edges=6)
        dijkstra_matrix = all_pairs_shortest_distances(network)
        fw_matrix = floyd_warshall(network)
        for u in network.vertices():
            for v in network.vertices():
                assert dijkstra_matrix[u].get(v, math.inf) == pytest.approx(
                    fw_matrix[u][v]
                )

    def test_restricted_sources(self, grid_network):
        matrix = all_pairs_shortest_distances(grid_network, sources=[0, 15])
        assert set(matrix) == {0, 15}

    def test_symmetry(self, grid_network):
        matrix = all_pairs_shortest_distances(grid_network)
        for u in grid_network.vertices():
            for v in grid_network.vertices():
                assert matrix[u][v] == pytest.approx(matrix[v][u])


class TestYen:
    def test_first_path_is_shortest(self, grid_network):
        paths = yen_k_shortest_paths(grid_network, 0, 15, 3)
        assert len(paths) == 3
        best_distance, best_path = paths[0]
        reference_distance, _ = shortest_path(grid_network, 0, 15)
        assert best_distance == pytest.approx(reference_distance)

    def test_paths_sorted_and_loopless(self, grid_network):
        paths = yen_k_shortest_paths(grid_network, 0, 15, 6)
        distances = [d for d, _ in paths]
        assert distances == sorted(distances)
        for _, path in paths:
            assert len(path) == len(set(path))
            assert path[0] == 0 and path[-1] == 15

    def test_paths_are_distinct(self, grid_network):
        paths = yen_k_shortest_paths(grid_network, 0, 15, 8)
        assert len({path for _, path in paths}) == len(paths)

    def test_matches_networkx_ranking(self, grid_network):
        reference = to_networkx(grid_network)
        expected = []
        generator = nx.shortest_simple_paths(reference, 0, 15, weight="weight")
        for _ in range(5):
            path = next(generator)
            expected.append(
                sum(
                    reference[u][v]["weight"]
                    for u, v in zip(path, path[1:])
                )
            )
        actual = [d for d, _ in yen_k_shortest_paths(grid_network, 0, 15, 5)]
        assert actual == pytest.approx(expected)

    def test_disconnected_returns_empty(self):
        network = BusNetwork()
        network.add_vertex(0, (0, 0))
        network.add_vertex(1, (1, 1))
        assert yen_k_shortest_paths(network, 0, 1, 3) == []

    def test_invalid_k(self, grid_network):
        with pytest.raises(ValueError):
            yen_k_shortest_paths(grid_network, 0, 1, 0)


class TestEnumeratePathsWithinDistance:
    def test_all_paths_respect_budget(self, grid_network):
        budget = 8.0
        paths = list(enumerate_paths_within_distance(grid_network, 0, 15, budget))
        assert paths
        for distance, path in paths:
            assert distance <= budget + 1e-9
            assert path[0] == 0 and path[-1] == 15
            assert len(path) == len(set(path))
            assert grid_network.path_distance(path) == pytest.approx(distance)

    def test_matches_networkx_simple_paths(self, grid_network):
        budget = 8.0
        reference = to_networkx(grid_network)
        expected = set()
        for path in nx.all_simple_paths(reference, 0, 15):
            distance = sum(
                reference[u][v]["weight"] for u, v in zip(path, path[1:])
            )
            if distance <= budget:
                expected.add(tuple(path))
        actual = {
            path for _, path in enumerate_paths_within_distance(grid_network, 0, 15, budget)
        }
        assert actual == expected

    def test_budget_below_shortest_yields_nothing(self, grid_network):
        assert list(enumerate_paths_within_distance(grid_network, 0, 15, 5.9)) == []

    def test_max_paths_cap(self, grid_network):
        paths = list(
            enumerate_paths_within_distance(grid_network, 0, 15, 10.0, max_paths=3)
        )
        assert len(paths) == 3

    def test_unknown_vertices_raise(self, grid_network):
        with pytest.raises(KeyError):
            list(enumerate_paths_within_distance(grid_network, 0, 999, 5.0))
