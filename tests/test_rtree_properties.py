"""Property-based tests of the R-tree against brute-force reference answers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import euclidean
from repro.index.rtree import RTree, RTreeEntry

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)
point_sets = st.lists(point, min_size=0, max_size=80)


def build_tree(points, bulk, max_entries=6):
    entries = [RTreeEntry(p, frozenset({i})) for i, p in enumerate(points)]
    if bulk:
        return RTree.bulk_load(entries, max_entries=max_entries, track_payload_union=True)
    tree = RTree(max_entries=max_entries, track_payload_union=True)
    for entry in entries:
        tree.insert(entry)
    return tree


@given(points=point_sets, bulk=st.booleans())
@settings(max_examples=60, deadline=None)
def test_size_and_contents_preserved(points, bulk):
    tree = build_tree(points, bulk)
    assert len(tree) == len(points)
    assert sorted(e.point for e in tree.entries()) == sorted(
        (float(x), float(y)) for x, y in points
    )


@given(points=point_sets, bulk=st.booleans(), query=point)
@settings(max_examples=60, deadline=None)
def test_nearest_neighbor_matches_bruteforce(points, bulk, query):
    tree = build_tree(points, bulk)
    found = tree.nearest_neighbors(query, k=1)
    if not points:
        assert found == []
        return
    best = min(euclidean(p, query) for p in points)
    assert abs(found[0][0] - best) < 1e-9


@given(
    points=point_sets,
    bulk=st.booleans(),
    x1=coord,
    y1=coord,
    x2=coord,
    y2=coord,
)
@settings(max_examples=60, deadline=None)
def test_range_search_matches_bruteforce(points, bulk, x1, y1, x2, y2):
    box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    tree = build_tree(points, bulk)
    expected = sorted(
        (float(x), float(y)) for x, y in points if box.contains_point((x, y))
    )
    assert sorted(e.point for e in tree.range_search(box)) == expected


@given(points=point_sets, bulk=st.booleans())
@settings(max_examples=40, deadline=None)
def test_iter_nearest_order_is_non_decreasing(points, bulk):
    tree = build_tree(points, bulk)
    distances = [d for d, _ in tree.iter_nearest((0.0, 0.0))]
    assert distances == sorted(distances)


@given(points=st.lists(point, min_size=1, max_size=60), removals=st.data())
@settings(max_examples=40, deadline=None)
def test_insert_then_remove_random_subset(points, removals):
    tree = build_tree(points, bulk=False)
    unique_points = list({(float(x), float(y)) for x, y in points})
    to_remove = removals.draw(
        st.lists(st.sampled_from(unique_points), max_size=len(unique_points), unique=True)
    )
    removed_count = 0
    for p in to_remove:
        if tree.remove(p) is not None:
            removed_count += 1
    assert len(tree) == len(points) - removed_count
    # Remaining nearest-neighbour queries still agree with brute force.
    remaining = [e.point for e in tree.entries()]
    if remaining:
        query = (12.5, -7.5)
        best = min(euclidean(p, query) for p in remaining)
        assert abs(tree.nearest_neighbors(query, k=1)[0][0] - best) < 1e-9


@given(points=point_sets, bulk=st.booleans())
@settings(max_examples=40, deadline=None)
def test_payload_union_of_root_is_every_payload(points, bulk):
    tree = build_tree(points, bulk)
    if points:
        assert tree.root.payload_union == frozenset(range(len(points)))
