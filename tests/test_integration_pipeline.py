"""Integration tests: the full pipeline from data generation to planning.

These tests exercise the same end-to-end flows as the examples and the
benchmark harness, but on tiny datasets and with every cross-component
consistency check enabled (RkNNT methods vs brute force, planner vs
exhaustive enumeration, per-vertex pre-computation vs direct queries).
"""

import math

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import METHODS, RkNNTProcessor
from repro.data.checkins import TransitionGenerator
from repro.data.synthetic import CityGenerator
from repro.data.workloads import QueryWorkload
from repro.planning.bruteforce import maxrknnt_bruteforce, maxrknnt_pre
from repro.planning.maxrknnt import MaxRkNNTPlanner
from repro.planning.precompute import VertexRkNNTIndex


@pytest.fixture(scope="module")
def pipeline():
    """A complete tiny deployment: city, transitions, processor, planner."""
    generator = CityGenerator(width=9.0, height=9.0, grid_spacing=1.5, seed=17)
    city = generator.generate(8, name="integration")
    transitions = TransitionGenerator(city.routes, seed=18).generate(250)
    processor = RkNNTProcessor(city.routes, transitions)
    vertex_index = VertexRkNNTIndex(city.network, processor, k=2)
    vertex_index.build()
    planner = MaxRkNNTPlanner(city.network, vertex_index)
    workload = QueryWorkload(city, seed=19)
    return city, transitions, processor, vertex_index, planner, workload


class TestQueryPipeline:
    def test_generated_city_supports_all_methods(self, pipeline):
        city, transitions, processor, _, _, workload = pipeline
        for query in workload.query_routes(3, 5, 1.0):
            oracle = rknnt_bruteforce(city.routes, transitions, query, 2)
            for method in METHODS:
                assert (
                    processor.query(query, 2, method=method).transition_ids
                    == oracle.transition_ids
                )

    def test_capacity_estimation_flow(self, pipeline):
        """The capacity_estimation example's core loop."""
        city, transitions, processor, _, _, _ = pipeline
        demands = {}
        for route in city.routes:
            result = processor.query(route, 2, method="divide-conquer")
            demands[route.route_id] = len(result)
        assert len(demands) == len(city.routes)
        assert all(count >= 0 for count in demands.values())
        # At least one route should attract someone in a transit-anchored city.
        assert max(demands.values()) > 0

    def test_semantics_consistency_across_city(self, pipeline):
        city, transitions, processor, _, _, workload = pipeline
        query = workload.random_query_route(4, 1.0)
        exists = processor.query(query, 3, semantics="exists")
        forall = processor.query(query, 3, semantics="forall")
        assert forall.transition_ids <= exists.transition_ids


class TestPlanningPipeline:
    def _planning_query(self, city, vertex_index):
        vertices = sorted(city.network.vertices())
        for start in vertices:
            for end in reversed(vertices):
                distance = vertex_index.shortest_distance(start, end)
                if math.isfinite(distance) and 2.0 <= distance <= 6.0:
                    return start, end, distance * 1.3
        pytest.skip("no suitable planning query in the generated network")

    def test_planner_agrees_with_baselines(self, pipeline):
        city, transitions, processor, vertex_index, planner, _ = pipeline
        start, end, tau = self._planning_query(city, vertex_index)
        bf = maxrknnt_bruteforce(city.network, processor, start, end, tau, k=2)
        pre = maxrknnt_pre(city.network, vertex_index, start, end, tau)
        planned = planner.plan(start, end, tau, use_dominance=False)
        assert bf.passengers == pre.passengers == planned.passengers

    def test_planned_route_queryable_as_rknnt(self, pipeline):
        """The planner's ω(R) matches an actual RkNNT query over the route."""
        city, transitions, processor, vertex_index, planner, _ = pipeline
        start, end, tau = self._planning_query(city, vertex_index)
        planned = planner.plan(start, end, tau)
        query_points = city.network.path_points(planned.vertices)
        direct = processor.query(query_points, 2, method="divide-conquer")
        assert direct.transition_ids == planned.transition_ids

    def test_new_transitions_change_planning_inputs(self, pipeline):
        """Dynamic updates flow through to the (lazily recomputed) vertex sets."""
        city, transitions, processor, vertex_index, planner, _ = pipeline
        start, end, tau = self._planning_query(city, vertex_index)
        before = planner.plan(start, end, tau)

        from repro.model.transition import Transition

        stop = city.network.position(before.vertices[len(before.vertices) // 2])
        new_id = transitions.next_id()
        processor.add_transition(
            Transition(new_id, (stop.x + 0.05, stop.y), (stop.x - 0.05, stop.y))
        )
        # A fresh per-vertex index sees the new passenger.
        refreshed = VertexRkNNTIndex(city.network, processor, k=2)
        refreshed.build(vertices=before.vertices)
        fresh_planner = MaxRkNNTPlanner(city.network, refreshed)
        after = fresh_planner.plan(start, end, tau)
        assert new_id in after.transition_ids
        assert after.passengers >= before.passengers
