"""Tests for the FilterSet and the filter-refine engine internals."""

import pytest

from repro.core.filtering import FilterRefineEngine, FilterSet
from repro.geometry.bbox import BoundingBox
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


class TestFilterSet:
    def test_add_and_views(self):
        fs = FilterSet()
        fs.add((0, 0), frozenset({1}))
        fs.add((1, 0), frozenset({1, 2}))
        fs.add((2, 0), frozenset({3}))
        assert len(fs) == 3
        assert fs.route_ids == {1, 2, 3}
        assert fs.route_points(1) == [(0.0, 0.0), (1.0, 0.0)]
        assert fs.route_points(99) == []

    def test_points_sorted_by_crossover_degree(self):
        fs = FilterSet()
        fs.add((0, 0), frozenset({1}))
        fs.add((1, 0), frozenset({1, 2, 3}))
        fs.add((2, 0), frozenset({4, 5}))
        degrees = [len(c) for _, c in fs.points_by_crossover()]
        assert degrees == sorted(degrees, reverse=True)

    def test_duplicate_points_ignored(self):
        fs = FilterSet()
        fs.add((0, 0), frozenset({1}))
        fs.add((0.0, 0.0), frozenset({2}))
        assert len(fs) == 1
        assert fs.route_ids == {1}


class TestEngineValidation:
    def test_invalid_k(self, toy_route_index, toy_transition_index):
        with pytest.raises(ValueError):
            FilterRefineEngine(toy_route_index, toy_transition_index, 0)

    def test_empty_query(self, toy_route_index, toy_transition_index):
        engine = FilterRefineEngine(toy_route_index, toy_transition_index, 1)
        with pytest.raises(ValueError):
            engine.run([])


class TestIsFiltered:
    def _engine(self, toy_route_index, toy_transition_index, k, use_voronoi=False):
        return FilterRefineEngine(
            toy_route_index, toy_transition_index, k, use_voronoi=use_voronoi
        )

    def test_no_filter_points_never_filters(
        self, toy_route_index, toy_transition_index
    ):
        engine = self._engine(toy_route_index, toy_transition_index, 1)
        assert not engine.is_filtered(BoundingBox(0, 0, 1, 1), [(5, 5)])

    def test_far_node_filtered_after_filter_route_phase(
        self, toy_route_index, toy_transition_index
    ):
        # Query far above every route: every route is between the node near
        # y=0 and the query, so even k=1 filtering should prune it.
        query = [(0.0, 30.0), (8.0, 30.0)]
        engine = self._engine(toy_route_index, toy_transition_index, 1)
        engine.filter_routes(query)
        assert engine.stats.filter_points > 0
        node_near_route0 = BoundingBox(0.0, -0.5, 8.0, 0.5)
        assert engine.is_filtered(node_near_route0, query)

    def test_node_straddling_query_not_filtered(
        self, toy_route_index, toy_transition_index
    ):
        query = [(4.0, 2.0)]
        engine = self._engine(toy_route_index, toy_transition_index, 1)
        engine.filter_routes(query)
        node_on_query = BoundingBox(3.9, 1.9, 4.1, 2.1)
        assert not engine.is_filtered(node_on_query, query)

    def test_larger_k_filters_less(self, toy_route_index, toy_transition_index):
        query = [(0.0, 30.0), (8.0, 30.0)]
        node = BoundingBox(0.0, -0.5, 8.0, 0.5)
        engine_small_k = self._engine(toy_route_index, toy_transition_index, 1)
        engine_small_k.filter_routes(query)
        engine_large_k = self._engine(toy_route_index, toy_transition_index, 5)
        engine_large_k.filter_routes(query)
        assert engine_small_k.is_filtered(node, query)
        # With k above the number of routes nothing can ever be pruned.
        assert not engine_large_k.is_filtered(node, query)

    def test_voronoi_filters_at_least_as_much(
        self, toy_route_index, toy_transition_index
    ):
        query = [(0.0, 12.0), (4.0, 12.0), (8.0, 12.0)]
        plain = self._engine(toy_route_index, toy_transition_index, 2, use_voronoi=False)
        voronoi = self._engine(toy_route_index, toy_transition_index, 2, use_voronoi=True)
        plain.filter_routes(query)
        voronoi.filter_routes(query)
        probe_nodes = [
            BoundingBox(0.0, -0.5, 8.0, 0.5),
            BoundingBox(0.0, 3.5, 8.0, 4.5),
            BoundingBox(2.0, 0.0, 6.0, 4.0),
            BoundingBox(0.0, 9.0, 8.0, 10.0),
        ]
        for node in probe_nodes:
            if plain.is_filtered(node, query):
                assert voronoi.is_filtered(node, query)


class TestEngineExclusions:
    def test_excluded_route_cannot_filter(self):
        # One route only; if it is excluded no pruning evidence exists.
        routes = RouteDataset([Route(0, [(0.0, 0.0), (4.0, 0.0)])])
        transitions = TransitionDataset([Transition(0, (2.0, 0.1), (3.0, 0.2))])
        route_index = RouteIndex(routes, max_entries=4)
        transition_index = TransitionIndex(transitions, max_entries=4)
        query = [(0.0, 10.0), (4.0, 10.0)]

        including = FilterRefineEngine(route_index, transition_index, 1)
        confirmed_with_route = including.run(query)
        assert confirmed_with_route == {}  # route 0 wins everywhere

        excluded = FilterRefineEngine(
            route_index, transition_index, 1, exclude_route_ids={0}
        )
        confirmed_without_route = excluded.run(query)
        assert set(confirmed_without_route) == {0}

    def test_stats_are_populated(self, toy_route_index, toy_transition_index):
        engine = FilterRefineEngine(toy_route_index, toy_transition_index, 2)
        engine.run([(4.0, 2.0), (6.0, 2.0)])
        stats = engine.stats
        assert stats.route_nodes_visited > 0
        assert stats.transition_nodes_visited > 0
        assert stats.filtering_seconds >= 0.0
        assert stats.verification_seconds >= 0.0
        assert stats.candidates >= stats.confirmed_points
