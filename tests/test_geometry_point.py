"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import (
    Point,
    euclidean,
    midpoint,
    path_length,
    point_to_points_distance,
    squared_euclidean,
)

finite_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_point_is_a_tuple(self):
        p = Point(1.0, 2.0)
        assert p == (1.0, 2.0)
        assert p[0] == 1.0 and p[1] == 2.0
        assert isinstance(p, tuple)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance_to(self):
        assert Point(0, 0).squared_distance_to((3, 4)) == pytest.approx(25.0)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_named_fields(self):
        p = Point(x=2.5, y=-1.5)
        assert p.x == 2.5
        assert p.y == -1.5


class TestDistances:
    def test_euclidean_known_value(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_euclidean_zero(self):
        assert euclidean((1.5, -2.0), (1.5, -2.0)) == 0.0

    def test_squared_euclidean_consistency(self):
        a, b = (1.0, 2.0), (4.0, 6.0)
        assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)

    def test_point_to_points_distance_is_minimum(self):
        points = [(0, 0), (10, 0), (5, 5)]
        assert point_to_points_distance((9, 1), points) == pytest.approx(
            math.hypot(1, 1)
        )

    def test_point_to_points_distance_empty_raises(self):
        with pytest.raises(ValueError):
            point_to_points_distance((0, 0), [])

    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == Point(1.0, 2.0)

    def test_path_length_polyline(self):
        assert path_length([(0, 0), (3, 4), (3, 10)]) == pytest.approx(11.0)

    def test_path_length_single_point_is_zero(self):
        assert path_length([(1, 1)]) == 0.0

    def test_path_length_empty_is_zero(self):
        assert path_length([]) == 0.0


class TestDistanceProperties:
    @given(ax=finite_coord, ay=finite_coord, bx=finite_coord, by=finite_coord)
    def test_symmetry(self, ax, ay, bx, by):
        assert euclidean((ax, ay), (bx, by)) == pytest.approx(
            euclidean((bx, by), (ax, ay))
        )

    @given(ax=finite_coord, ay=finite_coord, bx=finite_coord, by=finite_coord)
    def test_non_negativity(self, ax, ay, bx, by):
        assert euclidean((ax, ay), (bx, by)) >= 0.0

    @given(
        ax=finite_coord,
        ay=finite_coord,
        bx=finite_coord,
        by=finite_coord,
        cx=finite_coord,
        cy=finite_coord,
    )
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = (ax, ay), (bx, by), (cx, cy)
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6

    @given(
        px=finite_coord,
        py=finite_coord,
        points=st.lists(st.tuples(finite_coord, finite_coord), min_size=1, max_size=8),
    )
    def test_point_to_points_distance_matches_min(self, px, py, points):
        expected = min(euclidean((px, py), q) for q in points)
        assert point_to_points_distance((px, py), points) == pytest.approx(expected)
