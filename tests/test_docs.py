"""The documentation must stay executable (same checks as the CI docs job).

``tools/check_docs.py`` runs every ``>>>`` doctest example in ``README.md``
and ``docs/*.md``, compiles the plain python fences, resolves relative
links and asserts the CLI surface is documented.  Running it from the
tier-1 suite means documentation rot fails locally, not just in CI.
"""

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs.py")


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_pages_exist_and_are_linked():
    readme = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()
    for page in ("docs/architecture.md", "docs/api.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, page)), page
        assert page in readme, f"README does not link {page}"


def test_check_docs_passes_in_process():
    checker = load_checker()
    assert checker.main() == 0


def test_check_docs_passes_as_script():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if part
    )
    completed = subprocess.run(
        [sys.executable, CHECKER],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "OK" in completed.stdout
