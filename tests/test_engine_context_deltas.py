"""Delta-aware sub-query cache patching in the execution context.

Before this layer existed, ANY transition mutation cleared the whole
memoised single-point answer cache.  Now the context records the typed
mutation stream and patches cached answers in place; these tests pin down

* that transition-only churn preserves the cache (hits keep landing) and
  the patched answers stay equal to the brute-force oracle;
* that route mutations, stream overflow and oversized patch workloads
  still fall back to the wholesale clear; and
* that pickled contexts ship no pending deltas and re-attach their
  listener on arrival.
"""

from __future__ import annotations

import pickle
import random

import pytest

import repro.engine.context as context_module
from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import DIVIDE_CONQUER, RkNNTProcessor
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

K = 3


@pytest.fixture
def world():
    rng = random.Random(4242)
    routes = RouteDataset(
        [
            Route(
                route_id,
                [
                    (rng.uniform(0, 10), rng.uniform(0, 10))
                    for _ in range(4)
                ],
            )
            for route_id in range(8)
        ]
    )
    transitions = TransitionDataset(
        [
            Transition(
                tid,
                (rng.uniform(0, 10), rng.uniform(0, 10)),
                (rng.uniform(0, 10), rng.uniform(0, 10)),
            )
            for tid in range(40)
        ]
    )
    return routes, transitions


@pytest.fixture
def queries():
    return [
        [(2.0, 2.0), (4.0, 4.0)],
        [(6.0, 3.0), (8.0, 8.0)],
        [(1.0, 9.0)],
    ]


def warm_cache(processor, queries):
    processor.query_batch(queries, K, method=DIVIDE_CONQUER)
    return processor.engine_context


def mutate_transitions(processor, inserts=6, deletes=6, seed=9):
    rng = random.Random(seed)
    next_id = processor.transitions.next_id()
    for _ in range(inserts):
        processor.add_transition(
            Transition(
                next_id,
                (rng.uniform(0, 10), rng.uniform(0, 10)),
                (rng.uniform(0, 10), rng.uniform(0, 10)),
            )
        )
        next_id += 1
    victims = list(processor.transitions.transition_ids)[:deletes]
    for victim in victims:
        processor.remove_transition(victim)


class TestPatching:
    def test_transition_churn_patches_instead_of_clearing(self, world, queries):
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        cached = len(context._subqueries)
        assert cached > 0

        mutate_transitions(processor)
        hits_before = context.subquery_hits
        results = processor.query_batch(queries, K, method=DIVIDE_CONQUER)

        assert context.subquery_patches == 12  # 6 inserts + 6 deletes folded
        assert context.subquery_clears == 0
        assert context.subquery_hits - hits_before == cached
        for query, result in zip(queries, results):
            oracle = rknnt_bruteforce(routes, transitions, query, K)
            assert result.transition_ids == oracle.transition_ids
            assert result.confirmed_endpoints == oracle.confirmed_endpoints

    def test_route_mutation_still_clears(self, world, queries):
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        processor.add_route(Route(routes.next_id(), [(3.0, 3.0), (6.0, 6.0)]))
        results = processor.query_batch(queries, K, method=DIVIDE_CONQUER)
        assert context.subquery_clears == 1
        for query, result in zip(queries, results):
            oracle = rknnt_bruteforce(routes, transitions, query, K)
            assert result.transition_ids == oracle.transition_ids

    def test_pending_overflow_falls_back_to_clear(
        self, world, queries, monkeypatch
    ):
        monkeypatch.setattr(context_module, "PENDING_DELTA_LIMIT", 4)
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        mutate_transitions(processor)  # 12 deltas > patched limit of 4
        results = processor.query_batch(queries, K, method=DIVIDE_CONQUER)
        assert context.subquery_patches == 0
        assert context.subquery_clears == 1
        for query, result in zip(queries, results):
            oracle = rknnt_bruteforce(routes, transitions, query, K)
            assert result.transition_ids == oracle.transition_ids

    def test_patch_budget_falls_back_to_clear(self, world, queries, monkeypatch):
        monkeypatch.setattr(context_module, "SUBQUERY_PATCH_BUDGET", 1)
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        mutate_transitions(processor, inserts=2, deletes=2)
        results = processor.query_batch(queries, K, method=DIVIDE_CONQUER)
        assert context.subquery_patches == 0
        assert context.subquery_clears == 1
        for query, result in zip(queries, results):
            oracle = rknnt_bruteforce(routes, transitions, query, K)
            assert result.transition_ids == oracle.transition_ids

    def test_interleaved_patch_rounds_stay_exact(self, world, queries):
        # Several patch → query → patch rounds: versions advance in steps
        # and each round's pending deltas must cover exactly its gap.
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        for round_seed in range(3):
            mutate_transitions(processor, inserts=3, deletes=3, seed=round_seed)
            results = processor.query_batch(queries, K, method=DIVIDE_CONQUER)
            for query, result in zip(queries, results):
                oracle = rknnt_bruteforce(routes, transitions, query, K)
                assert result.confirmed_endpoints == oracle.confirmed_endpoints
        assert context.subquery_clears == 0
        assert context.subquery_patches == 18


class TestPickling:
    def test_pickle_strips_pending_and_listener_reattaches_lazily(
        self, world, queries
    ):
        routes, transitions = world
        processor = RkNNTProcessor(routes, transitions)
        context = warm_cache(processor, queries)
        mutate_transitions(processor, inserts=2, deletes=0)
        assert context._pending_deltas

        clone = pickle.loads(pickle.dumps(context))
        assert clone._pending_deltas == []
        assert clone._subqueries == {}
        assert clone.subquery_patches == 0
        # The clone's index carries no listeners at all yet: the parent's
        # were stripped by the index pickle and the clone attaches lazily.
        assert clone.transition_index._listeners == []

        # First memoised sub-query attaches the clone's own listener, and
        # the clone records deltas for its own mutations from then on.
        clone_queries = queries[:1]
        from repro.engine.executor import execute
        from repro.engine.plan import QueryPlan

        plan = QueryPlan.for_method(
            DIVIDE_CONQUER, share_subquery_cache=True
        ).resolved()
        execute(clone, clone_queries[0], K, plan, "exists")
        assert len(clone._subqueries) > 0
        assert len(clone.transition_index._listeners) == 1
        clone.transition_index.add_transition(
            Transition(990_000, (5.0, 5.0), (6.0, 6.0))
        )
        assert len(clone._pending_deltas) == 1

    def test_throwaway_contexts_do_not_leak_listeners(self, world):
        # The legacy per-call wrappers build one ExecutionContext per query
        # over shared indexes; without memoised sub-queries they must never
        # register on the index's listener list.
        from repro.core.divide_conquer import rknnt_divide_conquer
        from repro.index.route_index import RouteIndex
        from repro.index.transition_index import TransitionIndex

        routes, transitions = world
        route_index = RouteIndex(routes)
        transition_index = TransitionIndex(transitions)
        for _ in range(5):
            rknnt_divide_conquer(
                route_index, transition_index, [(2.0, 2.0)], K
            )
        assert transition_index._listeners == []
