"""Unit tests for the R-tree substrate (bulk load, insert, delete, queries)."""

import math
import random

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import euclidean
from repro.index.rtree import RTree, RTreeEntry, RTreeNode


def make_entries(points, payload_factory=lambda i: frozenset({i})):
    return [RTreeEntry(p, payload_factory(i)) for i, p in enumerate(points)]


def random_points(count, seed=0, span=100.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, span), rng.uniform(0, span)) for _ in range(count)]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert not tree
        assert tree.bbox is None
        assert list(tree.entries()) == []

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_bulk_load_small(self):
        entries = make_entries([(0, 0), (1, 1), (2, 2)])
        tree = RTree.bulk_load(entries, max_entries=4)
        assert len(tree) == 3
        assert tree.bbox.as_tuple() == (0, 0, 2, 2)

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([], max_entries=4)
        assert len(tree) == 0

    def test_bulk_load_preserves_all_entries(self):
        points = random_points(500, seed=1)
        tree = RTree.bulk_load(make_entries(points), max_entries=8)
        assert len(tree) == 500
        stored = sorted(entry.point for entry in tree.entries())
        assert stored == sorted(points)

    def test_bulk_load_node_fill(self):
        points = random_points(300, seed=2)
        tree = RTree.bulk_load(make_entries(points), max_entries=10)
        # Every node respects the fanout limit.
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.children) <= 10
            if not node.is_leaf:
                stack.extend(node.children)


class TestInvariants:
    @staticmethod
    def check_bboxes(node: RTreeNode):
        """Every node's bbox covers its children's bboxes/points."""
        assert node.bbox is not None
        if node.is_leaf:
            for entry in node.children:
                assert node.bbox.contains_point(entry.point)
        else:
            for child in node.children:
                assert node.bbox.contains_box(child.bbox)
                TestInvariants.check_bboxes(child)

    @staticmethod
    def check_payload_unions(node: RTreeNode):
        merged = set()
        if node.is_leaf:
            for entry in node.children:
                merged.update(entry.payload)
        else:
            for child in node.children:
                TestInvariants.check_payload_unions(child)
                merged.update(child.payload_union)
        assert node.payload_union == frozenset(merged)

    def test_bulk_load_invariants(self):
        points = random_points(200, seed=3)
        tree = RTree.bulk_load(
            make_entries(points), max_entries=6, track_payload_union=True
        )
        self.check_bboxes(tree.root)
        self.check_payload_unions(tree.root)

    def test_insert_invariants(self):
        tree = RTree(max_entries=6, track_payload_union=True)
        for i, point in enumerate(random_points(200, seed=4)):
            tree.insert_point(point, frozenset({i}))
        assert len(tree) == 200
        self.check_bboxes(tree.root)
        self.check_payload_unions(tree.root)

    def test_leaf_depth_uniform_after_bulk_load(self):
        tree = RTree.bulk_load(make_entries(random_points(300, seed=5)), max_entries=8)

        depths = set()

        def walk(node, depth):
            if node.is_leaf:
                depths.add(depth)
            else:
                for child in node.children:
                    walk(child, depth + 1)

        walk(tree.root, 0)
        assert len(depths) == 1


class TestInsertDelete:
    def test_insert_then_query(self):
        tree = RTree(max_entries=4)
        tree.insert_point((1, 1), "a")
        tree.insert_point((2, 2), "b")
        results = tree.range_search(BoundingBox(0, 0, 1.5, 1.5))
        assert [e.payload for e in results] == ["a"]

    def test_remove_existing(self):
        tree = RTree(max_entries=4)
        for i, point in enumerate(random_points(50, seed=6)):
            tree.insert_point(point, i)
        points = [e.point for e in tree.entries()]
        removed = tree.remove(points[10])
        assert removed is not None
        assert len(tree) == 49

    def test_remove_missing_returns_none(self):
        tree = RTree(max_entries=4)
        tree.insert_point((0, 0), "x")
        assert tree.remove((5, 5)) is None
        assert len(tree) == 1

    def test_remove_with_match_predicate(self):
        tree = RTree(max_entries=4)
        tree.insert_point((1, 1), "a")
        tree.insert_point((1, 1), "b")
        removed = tree.remove((1, 1), match=lambda e: e.payload == "b")
        assert removed.payload == "b"
        remaining = [e.payload for e in tree.entries()]
        assert remaining == ["a"]

    def test_remove_everything(self):
        points = random_points(60, seed=7)
        tree = RTree.bulk_load(make_entries(points), max_entries=5)
        for point in points:
            assert tree.remove(point) is not None
        assert len(tree) == 0

    def test_condense_keeps_entries(self):
        points = random_points(120, seed=8)
        tree = RTree.bulk_load(make_entries(points), max_entries=5)
        removed = set()
        rng = random.Random(0)
        for point in rng.sample(points, 60):
            tree.remove(point)
            removed.add(point)
        remaining = sorted(e.point for e in tree.entries())
        expected = sorted(p for p in points if p not in removed)
        assert remaining == expected
        TestInvariants.check_bboxes(tree.root)


class TestQueries:
    def test_range_search_matches_scan(self):
        points = random_points(300, seed=9)
        tree = RTree.bulk_load(make_entries(points), max_entries=8)
        box = BoundingBox(20, 20, 60, 70)
        expected = sorted(p for p in points if box.contains_point(p))
        found = sorted(e.point for e in tree.range_search(box))
        assert found == expected

    def test_nearest_neighbors_match_scan(self):
        points = random_points(200, seed=10)
        tree = RTree.bulk_load(make_entries(points), max_entries=8)
        query = (33.3, 66.6)
        expected = sorted(points, key=lambda p: euclidean(p, query))[:5]
        found = [e.point for _, e in tree.nearest_neighbors(query, k=5)]
        assert found == expected

    def test_nearest_k_larger_than_size(self):
        points = random_points(10, seed=11)
        tree = RTree.bulk_load(make_entries(points), max_entries=4)
        assert len(tree.nearest_neighbors((0, 0), k=50)) == 10

    def test_nearest_invalid_k(self):
        tree = RTree.bulk_load(make_entries([(0, 0)]), max_entries=4)
        with pytest.raises(ValueError):
            tree.nearest_neighbors((0, 0), k=0)

    def test_iter_nearest_is_sorted(self):
        points = random_points(150, seed=12)
        tree = RTree.bulk_load(make_entries(points), max_entries=8)
        distances = [d for d, _ in tree.iter_nearest((50, 50))]
        assert distances == sorted(distances)
        assert len(distances) == 150

    def test_iter_best_first_visits_everything(self):
        points = random_points(80, seed=13)
        tree = RTree.bulk_load(make_entries(points), max_entries=8)
        seen_points = [
            item.point
            for _, item in tree.iter_best_first([(10, 10), (90, 90)])
            if isinstance(item, RTreeEntry)
        ]
        assert sorted(seen_points) == sorted(points)

    def test_empty_tree_queries(self):
        tree = RTree()
        assert tree.range_search(BoundingBox(0, 0, 1, 1)) == []
        assert tree.nearest_neighbors((0, 0), k=3) == []
        assert list(tree.iter_nearest((0, 0))) == []
