"""Tests for the Transition model."""

import math

import pytest

from repro.geometry.bbox import BoundingBox
from repro.model.transition import Transition


class TestConstruction:
    def test_points(self):
        t = Transition(0, (0, 0), (3, 4))
        assert t.origin == (0.0, 0.0)
        assert t.destination == (3.0, 4.0)
        assert t.points == (t.origin, t.destination)

    def test_timestamp_optional(self):
        assert Transition(0, (0, 0), (1, 1)).timestamp is None
        assert Transition(0, (0, 0), (1, 1), timestamp=12.5).timestamp == 12.5


class TestGeometry:
    def test_length(self):
        assert Transition(0, (0, 0), (3, 4)).length == pytest.approx(5.0)

    def test_bbox(self):
        t = Transition(0, (2, 5), (-1, 3))
        assert t.bbox == BoundingBox(-1, 3, 2, 5)

    def test_zero_length_transition(self):
        t = Transition(0, (1, 1), (1, 1))
        assert t.length == 0.0
        assert t.bbox.is_point()


class TestProtocols:
    def test_len_iter_getitem(self):
        t = Transition(0, (0, 0), (1, 1))
        assert len(t) == 2
        assert list(t) == [(0.0, 0.0), (1.0, 1.0)]
        assert t[0] == (0.0, 0.0)
        assert t[1] == (1.0, 1.0)

    def test_equality_and_hash(self):
        a = Transition(0, (0, 0), (1, 1))
        b = Transition(0, (0, 0), (1, 1))
        c = Transition(0, (0, 0), (2, 2))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != 42

    def test_repr(self):
        text = repr(Transition(9, (1, 2), (3, 4)))
        assert "9" in text and "(1.0, 2.0)" in text
