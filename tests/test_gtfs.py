"""Tests for CSV persistence and the minimal GTFS loader."""

import os

import pytest

from repro.data.gtfs import (
    load_gtfs_directory,
    load_routes_csv,
    load_transitions_csv,
    save_routes_csv,
    save_transitions_csv,
)
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


class TestRouteCsv:
    def test_round_trip(self, tmp_path, toy_routes):
        path = os.path.join(tmp_path, "routes.csv")
        save_routes_csv(toy_routes, path)
        loaded = load_routes_csv(path)
        assert len(loaded) == len(toy_routes)
        for route in toy_routes:
            other = loaded.get(route.route_id)
            assert [tuple(p) for p in other.points] == [tuple(p) for p in route.points]

    def test_names_preserved(self, tmp_path):
        routes = RouteDataset([Route(0, [(0, 0), (1, 1)], name="M15")])
        path = os.path.join(tmp_path, "routes.csv")
        save_routes_csv(routes, path)
        assert load_routes_csv(path).get(0).name == "M15"

    def test_missing_name_loads_as_none(self, tmp_path):
        routes = RouteDataset([Route(0, [(0, 0), (1, 1)])])
        path = os.path.join(tmp_path, "routes.csv")
        save_routes_csv(routes, path)
        assert load_routes_csv(path).get(0).name is None


class TestTransitionCsv:
    def test_round_trip(self, tmp_path, toy_transitions):
        path = os.path.join(tmp_path, "transitions.csv")
        save_transitions_csv(toy_transitions, path)
        loaded = load_transitions_csv(path)
        assert len(loaded) == len(toy_transitions)
        for transition in toy_transitions:
            other = loaded.get(transition.transition_id)
            assert other.origin == transition.origin
            assert other.destination == transition.destination

    def test_timestamps_round_trip(self, tmp_path):
        transitions = TransitionDataset(
            [
                Transition(0, (0, 0), (1, 1), timestamp=3.5),
                Transition(1, (0, 0), (1, 1)),
            ]
        )
        path = os.path.join(tmp_path, "transitions.csv")
        save_transitions_csv(transitions, path)
        loaded = load_transitions_csv(path)
        assert loaded.get(0).timestamp == 3.5
        assert loaded.get(1).timestamp is None


def write_gtfs(directory, stops, trips, stop_times):
    with open(os.path.join(directory, "stops.txt"), "w", encoding="utf-8") as handle:
        handle.write("stop_id,stop_name,stop_lat,stop_lon\n")
        for stop_id, lat, lon in stops:
            handle.write(f"{stop_id},stop {stop_id},{lat},{lon}\n")
    with open(os.path.join(directory, "trips.txt"), "w", encoding="utf-8") as handle:
        handle.write("route_id,service_id,trip_id\n")
        for route_id, trip_id in trips:
            handle.write(f"{route_id},weekday,{trip_id}\n")
    with open(
        os.path.join(directory, "stop_times.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write("trip_id,arrival_time,departure_time,stop_id,stop_sequence\n")
        for trip_id, stop_id, sequence in stop_times:
            handle.write(f"{trip_id},08:00:00,08:00:00,{stop_id},{sequence}\n")


class TestGtfsLoader:
    def test_loads_one_route_per_gtfs_route(self, tmp_path):
        write_gtfs(
            tmp_path,
            stops=[("A", 40.0, -74.0), ("B", 40.1, -74.0), ("C", 40.2, -74.1)],
            trips=[("r1", "t1"), ("r1", "t2"), ("r2", "t3")],
            stop_times=[
                ("t1", "A", 1),
                ("t1", "B", 2),
                ("t1", "C", 3),
                ("t2", "C", 1),
                ("t2", "B", 2),
                ("t3", "A", 1),
                ("t3", "C", 2),
            ],
        )
        dataset = load_gtfs_directory(str(tmp_path))
        assert len(dataset) == 2
        names = sorted(route.name for route in dataset)
        assert names == ["r1", "r2"]
        first = next(r for r in dataset if r.name == "r1")
        # Points are (lon, lat) ordered by stop_sequence of the first trip.
        assert [tuple(p) for p in first.points] == [
            (-74.0, 40.0),
            (-74.0, 40.1),
            (-74.1, 40.2),
        ]

    def test_max_routes_cap(self, tmp_path):
        write_gtfs(
            tmp_path,
            stops=[("A", 0.0, 0.0), ("B", 1.0, 1.0)],
            trips=[("r1", "t1"), ("r2", "t2")],
            stop_times=[("t1", "A", 1), ("t1", "B", 2), ("t2", "B", 1), ("t2", "A", 2)],
        )
        assert len(load_gtfs_directory(str(tmp_path), max_routes=1)) == 1

    def test_single_stop_trip_skipped(self, tmp_path):
        write_gtfs(
            tmp_path,
            stops=[("A", 0.0, 0.0), ("B", 1.0, 1.0)],
            trips=[("r1", "t1"), ("r2", "t2")],
            stop_times=[("t1", "A", 1), ("t1", "B", 2), ("t2", "A", 1)],
        )
        dataset = load_gtfs_directory(str(tmp_path))
        assert len(dataset) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_gtfs_directory(str(tmp_path))
