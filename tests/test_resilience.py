"""Chaos suite: the resilience runtime under every injected fault.

The contract under test (ISSUE 7): with any fault injected via
:mod:`repro.engine.faults`, a batch either returns answers bitwise
identical to the fault-free run or raises a typed
:class:`~repro.engine.resilience.RkNNTError` — never a wrong answer,
never a hang past its deadline.  Every named injection point is
exercised at least once, and the degraded (in-process) path is asserted
differentially against the healthy pool.
"""

import json
import os
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rknnt import RkNNTProcessor
from repro.data.checkins import TransitionGenerator
from repro.model.dataset import RouteDataset
from repro.engine import arena, faults, resilience
from repro.geometry.kernels import numpy_available
from repro.engine.faults import FaultRuntime, FaultSpec, FaultSpecError, parse_spec
from repro.engine.parallel import ShardedExecutor
from repro.engine.plan import QueryPlan
from repro.engine.resilience import (
    AdmissionGate,
    Deadline,
    DeadlineExceeded,
    PoolSaturated,
    ReseedError,
    RetryPolicy,
    RkNNTError,
    SyncLogError,
    UpdateStreamError,
    WorkerCrashError,
)

K = 3
WORKERS = 2


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Every test starts and ends with no installed fault schedule."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture()
def chaos_processor(mini_city):
    """A private processor over a private route-dataset copy — chaos
    tests churn routes, and the session fixtures must not see it."""
    routes = RouteDataset(mini_city.routes)
    transitions = TransitionGenerator(routes, seed=23).generate(100)
    processor = RkNNTProcessor(routes, transitions)
    yield processor
    processor.close()


@pytest.fixture()
def chaos_jobs(mini_workload):
    queries = mini_workload.query_routes(3, length=4, interval=0.8)
    return [
        ([(float(x), float(y)) for x, y in query], frozenset())
        for query in queries
    ]


def _plan():
    return QueryPlan.for_method("voronoi", share_subquery_cache=True)


def _endpoints(results):
    return [result.confirmed_endpoints for result in results]


def _serial(processor, jobs):
    plan = _plan().resolved()
    from repro.engine.executor import execute

    return [
        execute(processor.engine_context, points, K, plan, "exists",
                exclude_route_ids=excluded)
        for points, excluded in jobs
    ]


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_clause_with_options(self):
        (spec,) = parse_spec("worker_crash:after=3;count=2")
        assert spec == FaultSpec("worker_crash", after=3, count=2)

    def test_parse_multiple_clauses(self):
        specs = parse_spec("task_delay:delay_ms=5, sync_corrupt")
        assert [s.point for s in specs] == ["task_delay", "sync_corrupt"]
        assert specs[0].delay_ms == 5.0

    @pytest.mark.parametrize(
        "bad",
        [
            "warp_core_breach",          # unknown point
            "worker_crash:when=later",   # unknown option key
            "worker_crash:after",        # option without value
            "worker_crash:after=soon",   # non-numeric value
            "worker_crash:count=-1",     # negative count
            "worker_crash:prob=1.5",     # prob out of range
            "task_delay:delay_ms=-2",    # negative delay
            " , ",                       # no clauses at all
        ],
    )
    def test_malformed_specs_raise_loudly(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_render_roundtrips(self):
        (spec,) = parse_spec("task_hang:after=1;count=3;delay_ms=250")
        assert parse_spec(spec.render()) == (spec,)

    def test_after_and_count_gate_occurrences(self):
        runtime = FaultRuntime.from_spec("task_delay:delay_ms=0;after=2;count=2")
        fired = [runtime.fire(faults.TASK_DELAY) for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert runtime.occurrences(faults.TASK_DELAY) == 6
        assert runtime.fire_count(faults.TASK_DELAY) == 2

    def test_probabilistic_schedule_is_seed_deterministic(self):
        spec = "task_delay:delay_ms=0;prob=0.4;seed=7;count=0"
        first = [FaultRuntime.from_spec(spec).fire(faults.TASK_DELAY)
                 for _ in range(1)]
        runs = []
        for _ in range(2):
            runtime = FaultRuntime.from_spec(spec)
            runs.append([runtime.fire(faults.TASK_DELAY) for _ in range(32)])
        assert runs[0] == runs[1]
        assert True in runs[0] and False in runs[0]
        del first

    def test_env_spec_installs_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "task_delay:delay_ms=0")
        faults.uninstall()
        assert faults.fire(faults.TASK_DELAY) is True
        assert faults.fire(faults.TASK_DELAY) is False  # count defaults to 1

    def test_malformed_env_spec_raises_not_ignores(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "quietly_do_nothing")
        faults.uninstall()
        with pytest.raises(FaultSpecError):
            faults.current()
        # It stays loud on every lookup — not once and then nothing.
        with pytest.raises(FaultSpecError):
            faults.current()

    def test_malformed_env_spec_stays_loud_through_the_pool(
        self, chaos_processor, chaos_jobs, monkeypatch
    ):
        """The pool seed path must not launder a FaultSpecError into a
        silently-retried ReseedError: a chaos run whose spec was mistyped
        would otherwise pass while injecting nothing."""
        monkeypatch.setenv(faults.FAULTS_ENV, "wrker_crash:count=2")
        faults.uninstall()
        with chaos_processor.serving_pool(workers=1) as pool:
            with pytest.raises(FaultSpecError):
                chaos_processor.query_batch(
                    [points for points, _ in chaos_jobs], K, workers=1
                )
            assert pool.reseed_failures == 0
            assert not pool.degraded

    def test_injected_scope_restores_previous_runtime(self):
        assert faults.current() is None
        with faults.injected("task_delay:delay_ms=0") as runtime:
            assert faults.current() is runtime
        assert faults.current() is None

    def test_fire_trace_is_replayable_jsonl(self, tmp_path, monkeypatch):
        trace = tmp_path / "faults.jsonl"
        monkeypatch.setenv(faults.FAULT_TRACE_ENV, str(trace))
        with faults.injected("task_delay:delay_ms=0;count=2") as runtime:
            runtime.fire(faults.TASK_DELAY)
            runtime.fire(faults.TASK_DELAY)
        entries = [json.loads(line) for line in trace.read_text().splitlines()]
        assert [e["point"] for e in entries] == ["task_delay", "task_delay"]
        assert [e["occurrence"] for e in entries] == [0, 1]
        assert all(e["pid"] == os.getpid() for e in entries)


# ----------------------------------------------------------------------
# Fault-spec grammar properties (hypothesis)
# ----------------------------------------------------------------------
_IDENT_ALPHABET = "abcdefghijklmnopqrstuvwxyz_"
_OPTION_KEYS = sorted(faults._OPTION_KEYS)


def _normalize(spec: FaultSpec) -> FaultSpec:
    # ``render()`` omits prob/seed for always-fire clauses, so a seed on a
    # prob=1 clause is unobservable; canonicalize it away for round-trips.
    if spec.prob >= 1.0 and spec.seed != 0:
        return FaultSpec(
            spec.point, spec.after, spec.count, spec.prob, 0, spec.delay_ms
        )
    return spec


def valid_clauses() -> st.SearchStrategy:
    return st.builds(
        FaultSpec,
        point=st.sampled_from(sorted(faults.POINTS)),
        after=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=0, max_value=10_000),
        prob=st.one_of(
            st.just(1.0),
            st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                      allow_nan=False),
        ),
        seed=st.integers(min_value=0, max_value=2**31),
        delay_ms=st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                      allow_infinity=False),
        ),
    ).map(_normalize)


def _identifiers(excluding=frozenset()) -> st.SearchStrategy:
    return st.text(alphabet=_IDENT_ALPHABET, min_size=1, max_size=20).filter(
        lambda name: name not in excluding
    )


class TestFaultSpecGrammarProperties:
    """The ``RKNNT_FAULTS`` grammar, property-tested from both sides:
    every valid spec survives parse → render → parse unchanged, and every
    malformed spec raises :class:`FaultSpecError` — never a silent no-op
    (a chaos run that injects nothing must not look like a green run)."""

    @settings(max_examples=100, deadline=None)
    @given(spec=valid_clauses())
    def test_single_clause_roundtrips(self, spec):
        assert parse_spec(spec.render()) == (spec,)

    @settings(max_examples=50, deadline=None)
    @given(specs=st.lists(valid_clauses(), min_size=1, max_size=5))
    def test_multi_clause_roundtrips(self, specs):
        text = ",".join(spec.render() for spec in specs)
        assert parse_spec(text) == tuple(specs)

    @settings(max_examples=50, deadline=None)
    @given(
        specs=st.lists(valid_clauses(), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_whitespace_and_empty_clauses_are_insignificant(self, specs, data):
        padded = []
        for spec in specs:
            left = data.draw(st.sampled_from(["", " ", "  ", "\t"]))
            right = data.draw(st.sampled_from(["", " ", "  "]))
            padded.append(f"{left}{spec.render()}{right}")
            if data.draw(st.booleans()):
                padded.append(" ")  # a blank clause between real ones
        assert parse_spec(",".join(padded)) == tuple(specs)

    @settings(max_examples=60, deadline=None)
    @given(point=_identifiers(excluding=faults.POINTS))
    def test_unknown_points_always_raise(self, point):
        with pytest.raises(FaultSpecError):
            parse_spec(point)
        with pytest.raises(FaultSpecError):
            parse_spec(f"{point}:after=1")

    @settings(max_examples=60, deadline=None)
    @given(
        spec=valid_clauses(),
        key=_identifiers(excluding=faults._OPTION_KEYS),
        value=st.integers(min_value=0, max_value=100),
    )
    def test_unknown_option_keys_always_raise(self, spec, key, value):
        with pytest.raises(FaultSpecError):
            parse_spec(f"{spec.point}:{key}={value}")

    @settings(max_examples=60, deadline=None)
    @given(spec=valid_clauses(), key=st.sampled_from(_OPTION_KEYS),
           value=st.text(alphabet=_IDENT_ALPHABET, min_size=1, max_size=10))
    def test_non_numeric_values_always_raise(self, spec, key, value):
        # "inf"/"nan" spell valid floats; everything else alphabetic must
        # fail loudly rather than default.
        try:
            float(value)
        except ValueError:
            pass
        else:
            return
        with pytest.raises(FaultSpecError):
            parse_spec(f"{spec.point}:{key}={value}")

    @settings(max_examples=60, deadline=None)
    @given(spec=valid_clauses(), data=st.data())
    def test_out_of_range_values_always_raise(self, spec, data):
        key, value = data.draw(
            st.one_of(
                st.tuples(st.sampled_from(["after", "count"]),
                          st.integers(max_value=-1)),
                st.tuples(st.just("prob"),
                          st.one_of(
                              st.floats(max_value=0.0, exclude_max=True,
                                        allow_nan=False, allow_infinity=False),
                              st.floats(min_value=1.0, exclude_min=True,
                                        allow_nan=False, allow_infinity=False),
                          )),
                st.tuples(st.just("delay_ms"),
                          st.floats(max_value=0.0, exclude_max=True,
                                    allow_nan=False, allow_infinity=False)),
            )
        )
        with pytest.raises(FaultSpecError):
            parse_spec(f"{spec.point}:{key}={value}")

    @settings(max_examples=30, deadline=None)
    @given(filler=st.text(alphabet=" \t,", max_size=12))
    def test_specs_with_no_clauses_always_raise(self, filler):
        with pytest.raises(FaultSpecError):
            parse_spec(filler)

    @settings(max_examples=30, deadline=None)
    @given(point=_identifiers(excluding=faults.POINTS))
    def test_runtime_construction_is_never_a_silent_noop(self, point):
        with pytest.raises(FaultSpecError):
            FaultRuntime.from_spec(point)


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_context_renders_and_survives_pickling(self):
        error = SyncLogError("worker sync gap", at_version=4, target=7)
        assert "worker sync gap [at_version=4, target=7]" == str(error)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is SyncLogError
        assert clone.context == {"at_version": 4, "target": 7}
        assert str(clone) == str(error)

    def test_every_failure_is_an_rknnt_error(self):
        for cls in (WorkerCrashError, ReseedError, SyncLogError,
                    DeadlineExceeded, PoolSaturated, UpdateStreamError,
                    faults.FaultInjected):
            assert issubclass(cls, RkNNTError)
            assert issubclass(cls, RuntimeError)
        # Stream errors are also ValueErrors, for callers that predate the
        # taxonomy and catch the stdlib type.
        assert issubclass(UpdateStreamError, ValueError)


# ----------------------------------------------------------------------
# Deadlines, backoff, admission
# ----------------------------------------------------------------------
class TestDeadline:
    def test_check_raises_once_budget_spent(self):
        now = [0.0]
        deadline = Deadline(50.0, clock=lambda: now[0])
        deadline.check("stage")  # well inside the budget
        now[0] = 0.049
        deadline.check("stage")
        now[0] = 0.051
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("stage")
        assert excinfo.value.context["budget_ms"] == 50.0
        assert excinfo.value.context["overrun_ms"] > 0
        assert deadline.expired()

    def test_from_ms_propagates_none(self):
        assert Deadline.from_ms(None) is None
        assert Deadline.from_ms(10.0).budget_ms == 10.0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestRetryPolicy:
    def test_backoff_escalates_with_decorrelated_jitter(self):
        pauses = []
        policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, seed=1,
                             sleep=pauses.append)
        taken = [policy.pause() for _ in range(8)]
        assert all(10.0 <= ms <= 100.0 for ms in taken)
        assert max(taken) > taken[0]  # escalated at least once
        assert len(pauses) == 8
        # Seeded: an identical policy reproduces the exact schedule.
        replay = RetryPolicy(base_ms=10.0, cap_ms=100.0, seed=1,
                             sleep=lambda s: None)
        assert [replay.pause() for _ in range(8)] == taken

    def test_reset_forgets_escalation(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, seed=2,
                             sleep=lambda s: None)
        for _ in range(5):
            policy.pause()
        policy.reset()
        assert policy.pause() <= 30.0  # back in the [base, 3*base] band

    def test_pause_clipped_to_deadline(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        slept = []
        policy = RetryPolicy(base_ms=50.0, cap_ms=500.0, seed=0,
                             sleep=slept.append)
        taken = policy.pause(deadline)
        assert taken <= 5.0  # never the reason the deadline is missed
        now[0] = 10.0  # already expired: no sleep at all
        assert policy.pause(deadline) == 0.0


class TestAdmissionGate:
    def test_unbounded_by_default(self):
        gate = AdmissionGate(0)
        gate.acquire(10_000)
        assert gate.in_flight == 10_000

    def test_overflow_rejected_with_context(self):
        gate = AdmissionGate(4)
        gate.acquire(3)
        with pytest.raises(PoolSaturated) as excinfo:
            gate.acquire(2)
        assert excinfo.value.context == {
            "requested": 2, "in_flight": 3, "limit": 4,
        }
        gate.release(3)
        gate.acquire(2)  # drained: admitted again

    def test_lone_oversized_batch_admitted(self):
        gate = AdmissionGate(4)
        with gate.admitted(9):  # rejecting it could never succeed
            assert gate.in_flight == 9
        assert gate.in_flight == 0


class TestEnvKnobs:
    def test_max_reseeds(self, monkeypatch):
        monkeypatch.setenv(resilience.MAX_RESEEDS_ENV, "1")
        assert resilience.max_reseeds() == 1
        monkeypatch.setenv(resilience.MAX_RESEEDS_ENV, "lots")
        assert resilience.max_reseeds() == resilience.DEFAULT_MAX_RESEEDS
        monkeypatch.setenv(resilience.MAX_RESEEDS_ENV, "-2")
        assert resilience.max_reseeds() == resilience.DEFAULT_MAX_RESEEDS

    def test_default_deadline(self, monkeypatch):
        monkeypatch.delenv(resilience.DEADLINE_ENV, raising=False)
        assert resilience.default_deadline_ms() is None
        monkeypatch.setenv(resilience.DEADLINE_ENV, "250")
        assert resilience.default_deadline_ms() == 250.0
        monkeypatch.setenv(resilience.DEADLINE_ENV, "0")
        assert resilience.default_deadline_ms() is None

    def test_queue_limit_flows_into_executor(self, monkeypatch, mini_processor):
        monkeypatch.setenv(resilience.QUEUE_LIMIT_ENV, "6")
        executor = ShardedExecutor(mini_processor.engine_context, workers=1)
        assert executor.queue_limit == 6
        explicit = ShardedExecutor(
            mini_processor.engine_context, workers=1, queue_limit=2
        )
        assert explicit.queue_limit == 2


# ----------------------------------------------------------------------
# Chaos: the pool under every injection point
# ----------------------------------------------------------------------
class TestChaosPool:
    def test_worker_crash_twice_recovers_within_budget(
        self, chaos_processor, chaos_jobs
    ):
        """Regression for the one-shot recovery: two consecutive crashes
        (the second mid-replay) must still produce the fault-free batch."""
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        with faults.injected("worker_crash:count=2") as runtime:
            with ShardedExecutor(
                chaos_processor.engine_context, workers=1
            ) as pool:
                pool.retry_policy.sleep = lambda seconds: None
                results = pool.run(chaos_jobs, K, _plan())
                assert _endpoints(results) == expected
                assert pool.crash_recoveries == 2
                assert not pool.degraded
                assert pool.pools_spawned == 3  # seed + two reseeds
        assert runtime.fire_count(faults.WORKER_CRASH) == 2

    def test_task_delay_never_changes_answers(self, chaos_processor, chaos_jobs):
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        with faults.injected("task_delay:delay_ms=5;count=0"):
            with ShardedExecutor(
                chaos_processor.engine_context, workers=WORKERS
            ) as pool:
                assert _endpoints(pool.run(chaos_jobs, K, _plan())) == expected
                assert pool.crash_recoveries == 0

    def test_env_schedule_ships_into_a_spawn_pool(
        self, chaos_processor, chaos_jobs, monkeypatch
    ):
        """Regression: the runtime built lazily from ``RKNNT_FAULTS`` used
        to create its counters in the default (fork) context, and pickling
        a fork-context lock into a spawn pool's initializer raises
        ``RuntimeError`` — the schedule must work under every start method."""
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        monkeypatch.setenv(faults.FAULTS_ENV, "task_delay:delay_ms=1;count=0")
        runtime = faults.current()
        assert runtime is not None
        with ShardedExecutor(
            chaos_processor.engine_context, workers=WORKERS,
            start_method="spawn",
        ) as pool:
            assert _endpoints(pool.run(chaos_jobs, K, _plan())) == expected
            assert not pool.degraded
        assert runtime.fire_count(faults.TASK_DELAY) >= 1

    def test_task_hang_is_cut_off_by_the_deadline(
        self, chaos_processor, chaos_jobs
    ):
        """A hung worker must surface as DeadlineExceeded within the
        budget — never a wrong answer, never an unbounded wait."""
        with faults.injected("task_hang:delay_ms=30000;count=1"):
            with ShardedExecutor(
                chaos_processor.engine_context, workers=WORKERS
            ) as pool:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded) as excinfo:
                    pool.run(chaos_jobs, K, _plan(), deadline=Deadline(400.0))
                elapsed = time.monotonic() - started
                assert elapsed < 15.0, "deadline abort must not block"
                assert excinfo.value.context["budget_ms"] == 400.0
                assert not pool.degraded  # deadlines are not pool failures
                # The aborted pool is gone; the next (hang-free) batch
                # reseeds and answers exactly.
                expected = _endpoints(_serial(chaos_processor, chaos_jobs))
                assert _endpoints(pool.run(chaos_jobs, K, _plan())) == expected

    @pytest.mark.skipif(
        not numpy_available(), reason="arenas require the numpy backend"
    )
    def test_arena_attach_failure_degrades_to_pickle_path(
        self, chaos_processor, chaos_jobs
    ):
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        with faults.injected("arena_attach:count=0") as runtime:
            with ShardedExecutor(
                chaos_processor.engine_context, workers=WORKERS, use_arena=True
            ) as pool:
                results = pool.run(chaos_jobs, K, _plan())
                assert _endpoints(results) == expected
                assert pool.arena is not None  # parent still published it
                assert pool.crash_recoveries == 0  # recovered in place
            assert runtime.fire_count(faults.ARENA_ATTACH) >= 1
        assert arena.active_segment_names() == []

    def test_sync_corruption_recovered_by_reseed(self, chaos_processor, chaos_jobs):
        from repro.model.transition import Transition

        with faults.injected("sync_corrupt:count=1") as runtime:
            with ShardedExecutor(
                chaos_processor.engine_context, workers=WORKERS
            ) as pool:
                pool.retry_policy.sleep = lambda seconds: None
                pool.run(chaos_jobs, K, _plan())  # seed the pool
                new_id = chaos_processor.transitions.next_id()
                chaos_processor.add_transition(
                    Transition(new_id, (2.0, 2.1), (2.4, 2.6))
                )
                # The shipped sync log loses its newest delta; the worker
                # replay falls short of the target version, raises a typed
                # SyncLogError (context intact across the process
                # boundary) and the batch recovers by reseeding.
                after = pool.run(chaos_jobs, K, _plan())
                assert pool.sync_recoveries == 1
                assert pool.pools_spawned == 2
                assert runtime.fire_count(faults.SYNC_CORRUPT) == 1
                fresh = _endpoints(_serial(chaos_processor, chaos_jobs))
                assert _endpoints(after) == fresh

    def test_reseed_failure_retried_with_backoff(self, chaos_processor, chaos_jobs):
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        with faults.injected("reseed_fail:count=2"):
            with ShardedExecutor(
                chaos_processor.engine_context, workers=1
            ) as pool:
                pauses = []
                pool.retry_policy.sleep = pauses.append
                results = pool.run(chaos_jobs, K, _plan())
                assert _endpoints(results) == expected
                assert pool.reseed_failures == 2
                assert len(pauses) == 2  # backed off between attempts
                assert not pool.degraded

    def test_reseed_budget_exhaustion_degrades_identically(
        self, chaos_processor, chaos_jobs
    ):
        """Past RKNNT_MAX_RESEEDS consecutive failures the executor turns
        degraded and answers in process — bitwise identical results."""
        expected = _endpoints(_serial(chaos_processor, chaos_jobs))
        with faults.injected("reseed_fail:count=0"):  # every reseed fails
            with ShardedExecutor(
                chaos_processor.engine_context, workers=1
            ) as pool:
                pool.retry_policy.sleep = lambda seconds: None
                results = pool.run(chaos_jobs, K, _plan())
                assert _endpoints(results) == expected
                assert pool.degraded
                assert isinstance(pool.last_failure, ReseedError)
                assert pool.degraded_runs == 1
                # Sticky: later batches stay in process (and stay right).
                again = pool.run(chaos_jobs, K, _plan())
                assert _endpoints(again) == expected
                assert pool.degraded_runs == 2
                # close() heals: the executor starts its next batch fresh.
                pool.close()
                assert not pool.degraded
                assert pool.last_failure is None

    def test_degraded_standing_rebuilds_match_serial(self, chaos_processor):
        queries = [[(2.0, 2.0), (3.0, 2.5)], [(1.0, 1.5)]]
        subscriptions = [chaos_processor.watch(q, K) for q in queries]
        from repro.model.route import Route

        route_id = chaos_processor.routes.next_id()
        chaos_processor.add_route(
            Route(route_id, [(1.5, 1.6), (2.5, 2.1), (3.2, 2.3)])
        )
        assert all(s.is_stale() for s in subscriptions)
        # Every pool rebuild fails: refresh falls back to the serial path
        # and the standing results still match a fresh query exactly.
        with faults.injected("reseed_fail:count=0"):
            with chaos_processor.serving_pool(workers=1) as pool:
                pool.retry_policy.sleep = lambda seconds: None
                chaos_processor.refresh_subscriptions()
        assert not any(s.is_stale() for s in subscriptions)
        for subscription, query in zip(subscriptions, queries):
            fresh = chaos_processor.query(query, K)
            assert subscription.transition_ids == fresh.transition_ids

    def test_saturated_pool_rejects_second_batch(self, chaos_processor, chaos_jobs):
        with ShardedExecutor(
            chaos_processor.engine_context, workers=1, queue_limit=2
        ) as pool:
            # A concurrent caller holds both slots; new work is shed with
            # typed backpressure instead of queueing without bound.
            pool._gate.acquire(2, what="concurrent batch")
            with pytest.raises(PoolSaturated):
                pool.run(chaos_jobs, K, _plan())
            pool._gate.release(2)
            expected = _endpoints(_serial(chaos_processor, chaos_jobs))
            assert _endpoints(pool.run(chaos_jobs, K, _plan())) == expected


# ----------------------------------------------------------------------
# Deadlines end to end (query_batch and the serial path)
# ----------------------------------------------------------------------
class TestDeadlineEndToEnd:
    def test_serial_query_batch_honours_deadline_ms(self, chaos_processor):
        with pytest.raises(DeadlineExceeded):
            chaos_processor.query_batch(
                [[(2.0, 2.0)]], K, deadline_ms=1e-6
            )

    def test_ambient_deadline_env(self, chaos_processor, monkeypatch):
        monkeypatch.setenv(resilience.DEADLINE_ENV, "0.000001")
        with pytest.raises(DeadlineExceeded):
            chaos_processor.query_batch([[(2.0, 2.0)]], K)
        monkeypatch.delenv(resilience.DEADLINE_ENV)
        results = chaos_processor.query_batch([[(2.0, 2.0)]], K)
        assert len(results) == 1

    def test_generous_deadline_changes_nothing(self, chaos_processor, chaos_jobs):
        queries = [points for points, _ in chaos_jobs]
        free = chaos_processor.query_batch(queries, K)
        bounded = chaos_processor.query_batch(queries, K, deadline_ms=60_000.0)
        assert _endpoints(bounded) == _endpoints(free)
