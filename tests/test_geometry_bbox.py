"""Unit tests for repro.geometry.bbox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import euclidean

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def boxes():
    return st.builds(
        lambda x1, y1, x2, y2: BoundingBox(
            min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)
        ),
        coord,
        coord,
        coord,
        coord,
    )


class TestConstruction:
    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_from_point_is_degenerate(self):
        box = BoundingBox.from_point((2, 3))
        assert box.is_point()
        assert box.area == 0.0

    def test_from_points(self):
        box = BoundingBox.from_points([(0, 5), (2, 1), (-1, 3)])
        assert box.as_tuple() == (-1, 1, 2, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_union_all(self):
        box = BoundingBox.union_all(
            [BoundingBox(0, 0, 1, 1), BoundingBox(2, -1, 3, 0.5)]
        )
        assert box.as_tuple() == (0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.union_all([])


class TestDerivedQuantities:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.perimeter == 12
        assert box.center == (2, 1)

    def test_corners(self):
        corners = set(BoundingBox(0, 0, 1, 2).corners())
        assert corners == {(0, 0), (0, 2), (1, 0), (1, 2)}

    def test_equality_and_hash(self):
        assert BoundingBox(0, 0, 1, 1) == BoundingBox(0, 0, 1, 1)
        assert hash(BoundingBox(0, 0, 1, 1)) == hash(BoundingBox(0, 0, 1, 1))
        assert BoundingBox(0, 0, 1, 1) != BoundingBox(0, 0, 1, 2)


class TestPredicates:
    def test_intersects_overlapping(self):
        assert BoundingBox(0, 0, 2, 2).intersects(BoundingBox(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))

    def test_contains_point_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains_point((1, 1))
        assert box.contains_point((0.5, 0.5))
        assert not box.contains_point((1.0001, 0.5))

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        assert outer.contains_box(BoundingBox(1, 1, 2, 2))
        assert not outer.contains_box(BoundingBox(9, 9, 11, 11))

    def test_enlargement(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.enlargement(BoundingBox(0, 0, 1, 1)) == 0.0
        assert box.enlargement(BoundingBox(1, 0, 2, 1)) == pytest.approx(1.0)


class TestDistances:
    def test_min_dist_inside_is_zero(self):
        assert BoundingBox(0, 0, 2, 2).min_dist((1, 1)) == 0.0

    def test_min_dist_outside_corner(self):
        assert BoundingBox(0, 0, 1, 1).min_dist((4, 5)) == pytest.approx(5.0)

    def test_min_dist_outside_edge(self):
        assert BoundingBox(0, 0, 1, 1).min_dist((0.5, 3)) == pytest.approx(2.0)

    def test_max_dist_corner(self):
        assert BoundingBox(0, 0, 3, 4).max_dist((0, 0)) == pytest.approx(5.0)

    def test_min_dist_to_query_multiple_points(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.min_dist_to_query([(5, 0.5), (0.5, 2)]) == pytest.approx(1.0)


class TestDistanceProperties:
    @given(box=boxes(), px=coord, py=coord)
    def test_min_dist_le_max_dist(self, box, px, py):
        assert box.min_dist((px, py)) <= box.max_dist((px, py)) + 1e-9

    @given(box=boxes(), px=coord, py=coord)
    def test_min_dist_is_lower_bound_to_corners(self, box, px, py):
        min_dist = box.min_dist((px, py))
        for corner in box.corners():
            assert min_dist <= euclidean((px, py), corner) + 1e-9

    @given(box=boxes(), px=coord, py=coord)
    def test_max_dist_is_upper_bound_to_corners(self, box, px, py):
        max_dist = box.max_dist((px, py))
        for corner in box.corners():
            assert max_dist >= euclidean((px, py), corner) - 1e-9

    @given(first=boxes(), second=boxes())
    def test_union_contains_both(self, first, second):
        union = first.union(second)
        assert union.contains_box(first)
        assert union.contains_box(second)

    @given(first=boxes(), second=boxes())
    def test_intersects_is_symmetric(self, first, second):
        assert first.intersects(second) == second.intersects(first)
