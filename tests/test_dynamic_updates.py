"""Dynamic update workflow: arriving/expiring transitions, new/removed routes.

The paper's motivation for the index design is that transitions arrive
continuously (Uber requests) and must be visible to the next query without a
rebuild; routes may also be added or retired.  These tests drive the
processor through such update sequences and re-check answers against the
brute-force oracle after every step.
"""

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import METHODS, RkNNTProcessor
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


def assert_matches_oracle(processor, routes, transitions, query, k):
    oracle = rknnt_bruteforce(routes, transitions, query, k)
    for method in METHODS:
        result = processor.query(query, k, method=method)
        assert result.transition_ids == oracle.transition_ids, method
    return oracle


class TestTransitionUpdates:
    def test_new_transition_visible_immediately(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        query = [(0.0, 2.0), (8.0, 2.0)]
        before = processor.query(query, k=2)
        new_transition = Transition(50, (2.0, 2.1), (6.0, 1.9))
        processor.add_transition(new_transition)
        after = processor.query(query, k=2)
        assert 50 not in before
        assert 50 in after
        assert_matches_oracle(processor, toy_routes, toy_transitions, query, 2)

    def test_removed_transition_disappears(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        query = [(0.0, 0.0), (8.0, 0.0)]
        assert 0 in processor.query(query, k=1)
        processor.remove_transition(0)
        assert 0 not in processor.query(query, k=1)
        assert_matches_oracle(processor, toy_routes, toy_transitions, query, 1)

    def test_stream_of_arrivals_and_expiries(self, toy_routes):
        transitions = TransitionDataset(
            [Transition(i, (1.0 + i, 0.4), (2.0 + i, 0.6), timestamp=float(i)) for i in range(5)]
        )
        processor = RkNNTProcessor(toy_routes, transitions)
        query = [(0.0, 1.0), (8.0, 1.0)]
        for step in range(5, 12):
            processor.add_transition(
                Transition(step, (1.0 + step % 6, 0.4), (2.0 + step % 6, 0.6), timestamp=float(step))
            )
            expired = [t.transition_id for t in transitions if t.timestamp is not None and t.timestamp < step - 4]
            for transition_id in expired:
                processor.remove_transition(transition_id)
            assert_matches_oracle(processor, toy_routes, transitions, query, 2)

    def test_remove_unknown_transition_raises(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        with pytest.raises(KeyError):
            processor.remove_transition(12345)


class TestRouteUpdates:
    def test_new_route_steals_passengers(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        query = [(0.0, 2.0), (8.0, 2.0)]
        before = processor.query(query, k=1)
        # A new route running right along the query captures the midline
        # riders, so the query should lose results (or stay equal).
        new_route = Route(30, [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)])
        processor.add_route(new_route)
        after = processor.query(query, k=1)
        assert after.transition_ids <= before.transition_ids
        assert_matches_oracle(processor, toy_routes, toy_transitions, query, 1)

    def test_removed_route_releases_passengers(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        query = [(0.0, 2.0), (8.0, 2.0)]
        before = processor.query(query, k=1)
        processor.remove_route(0)  # retire the y=0 route
        after = processor.query(query, k=1)
        assert before.transition_ids <= after.transition_ids
        # Transition 0 hugged route 0; with it gone the query picks it up.
        assert 0 in after
        assert_matches_oracle(processor, toy_routes, toy_transitions, query, 1)

    def test_add_then_remove_is_identity(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        query = [(0.0, 6.0), (8.0, 6.0)]
        baseline = processor.query(query, k=2).transition_ids
        route = Route(31, [(0.0, 6.0), (8.0, 6.0)])
        processor.add_route(route)
        processor.remove_route(31)
        assert processor.query(query, k=2).transition_ids == baseline

    def test_remove_unknown_route_raises(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        with pytest.raises(KeyError):
            processor.remove_route(999)


class TestMixedUpdates:
    def test_interleaved_updates_stay_consistent(self, mini_city_bundle):
        city, transitions, _, workload = mini_city_bundle
        # Use fresh datasets so the session-scoped fixtures stay untouched.
        routes = RouteDataset(list(city.routes))
        local_transitions = TransitionDataset(list(transitions)[:150])
        processor = RkNNTProcessor(routes, local_transitions)
        query = workload.random_query_route(4, 1.0)

        next_transition_id = local_transitions.next_id()
        next_route_id = routes.next_id()
        for step in range(3):
            processor.add_transition(
                Transition(next_transition_id + step, (step * 1.0, 2.0), (step * 1.0 + 1.0, 3.0))
            )
            if step == 1:
                processor.add_route(
                    Route(next_route_id, [(0.0, 0.0), (3.0, 3.0), (6.0, 6.0)])
                )
            if step == 2:
                processor.remove_route(next_route_id)
            oracle = rknnt_bruteforce(routes, local_transitions, query, 3)
            result = processor.query(query, 3)
            assert result.transition_ids == oracle.transition_ids
