"""Smoke tests: every example script runs to completion and prints results."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

EXAMPLE_SCRIPTS = [
    "quickstart.py",
    "capacity_estimation.py",
    "route_planning.py",
    "dynamic_updates.py",
    "continuous_queries.py",
    "advertising_and_frequency.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (SRC_DIR, env.get("PYTHONPATH")) if part
    )
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
        env=env,
    )


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_cleanly(script):
    completed = run_example(script)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_agreement():
    completed = run_example("quickstart.py")
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "all methods agree with the brute-force oracle" in completed.stdout


def test_route_planning_reports_verification():
    completed = run_example("route_planning.py")
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "verified against the exhaustive Pre baseline" in completed.stdout


def test_continuous_queries_reports_verification():
    completed = run_example("continuous_queries.py")
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert (
        "standing results verified against fresh queries and the "
        "brute-force oracle" in completed.stdout
    )
