"""Differential tests of the query-locality engine (``RKNNT_LOCALITY``).

The contract, per method × semantics × backend on a *clustered* workload:

    query_batch(queries) with sharing  ≡  query_batch(queries) without

where ``≡`` is element-wise identity of the confirmed endpoint maps and
transition ids; for the non-decomposed methods the verification counter
(``confirmed_points``) is identical too, because margin-pruned sharing must
not change which endpoints reach exact verification's confirm step.  On top
of the serial contract: the cluster-aware shard assignment returns the same
answers as index sharding, worker-side locality counters merge into the
parent context, the continuous layer seeds new standing queries from nearby
donors without changing their results, and the env knobs parse safely.
"""

import pytest

from repro.core.rknnt import RkNNTProcessor
from repro.data.workloads import QueryWorkload, make_city
from repro.engine.locality import (
    cluster_jobs,
    dataset_cell_size,
    execute_batch,
    locality_cell_override,
)
from repro.engine.plan import (
    LOCALITY_ENV,
    LOCALITY_OFF,
    LOCALITY_ON,
    QueryPlan,
    default_locality,
)
from repro.geometry.kernels import numpy_available

K = 2
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])
METHODS = ["filter-refine", "voronoi", "divide-conquer"]
NON_DECOMPOSED = ["filter-refine", "voronoi"]


@pytest.fixture(scope="module")
def clustered_queries(mini_city):
    workload = QueryWorkload(mini_city, seed=17)
    return workload.clustered_query_routes(
        10, length=3, interval=0.7, clusters=3
    )


#: Pinned snap-cell size for the mini city: big enough that each generated
#: cluster lands in one cell despite the per-query heading jitter.
CELL = "3.0"


def _run_batch(processor, queries, monkeypatch, locality, **kwargs):
    monkeypatch.setenv(LOCALITY_ENV, "1" if locality else "0")
    monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
    processor.engine_context.clear_caches()
    return processor.query_batch(queries, K, **kwargs)


class TestDifferentialIdentity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_equals_unshared(
        self, mini_processor, clustered_queries, monkeypatch,
        method, semantics, backend,
    ):
        unshared = _run_batch(
            mini_processor, clustered_queries, monkeypatch, False,
            method=method, semantics=semantics, backend=backend,
        )
        shared = _run_batch(
            mini_processor, clustered_queries, monkeypatch, True,
            method=method, semantics=semantics, backend=backend,
        )
        context = mini_processor.engine_context
        assert context.locality_clusters > 0
        assert context.locality_seeded > 0
        for a, b in zip(unshared, shared):
            assert a.confirmed_endpoints == b.confirmed_endpoints
            assert a.transition_ids == b.transition_ids
            assert a.exists_ids() == b.exists_ids()
            assert a.forall_ids() == b.forall_ids()
            if method in NON_DECOMPOSED:
                # Sharing may skip filter/prune work but must confirm the
                # exact same endpoints through exact verification.
                assert a.stats.confirmed_points == b.stats.confirmed_points

    def test_default_off_leaves_counters_untouched(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        monkeypatch.delenv(LOCALITY_ENV, raising=False)
        mini_processor.engine_context.clear_caches()
        mini_processor.query_batch(clustered_queries, K)
        context = mini_processor.engine_context
        assert context.locality_clusters == 0
        assert context.locality_seeded == 0
        assert context.locality_retested == 0

    def test_pilot_stats_match_unshared_run(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        """The cluster pilot runs the plain staged executor: its full
        statistics are those of the unshared run of the same query."""
        unshared = _run_batch(
            mini_processor, clustered_queries, monkeypatch, False,
            method="voronoi",
        )
        shared = _run_batch(
            mini_processor, clustered_queries, monkeypatch, True,
            method="voronoi",
        )
        jobs = [(tuple(map(tuple, q)), frozenset()) for q in clustered_queries]
        pilots = set()
        for members in cluster_jobs(jobs, float(CELL)):
            if len(members) >= 2:
                # Pilot election is deterministic; any member whose stats
                # match fully is the pilot — assert at least one does.
                matches = [
                    m for m in members
                    if shared[m].stats.route_nodes_visited
                    == unshared[m].stats.route_nodes_visited
                    and shared[m].stats.candidates == unshared[m].stats.candidates
                ]
                assert matches
                pilots.update(matches)
        assert pilots


class TestShardedClusterMode:
    def test_cluster_sharding_matches_serial(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        serial = _run_batch(
            mini_processor, clustered_queries, monkeypatch, True
        )
        from repro.engine.parallel import ShardedExecutor
        from repro.engine.plan import QueryPlan as Plan

        monkeypatch.setenv("RKNNT_SHARD_BY", "cluster")
        monkeypatch.setenv(LOCALITY_ENV, "1")
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
        mini_processor.engine_context.clear_caches()
        jobs = [(tuple(map(tuple, q)), frozenset()) for q in clustered_queries]
        executor = ShardedExecutor(
            mini_processor.engine_context, workers=2, chunk_size=5
        )
        try:
            sharded = executor.run(
                jobs, K, Plan.for_method("voronoi"), "exists"
            )
        finally:
            executor.close()
        for a, b in zip(serial, sharded):
            assert a.confirmed_endpoints == b.confirmed_endpoints
            assert a.transition_ids == b.transition_ids
        # Worker-side locality counters are shipped back and merged.
        context = mini_processor.engine_context
        assert context.locality_clusters > 0
        assert context.locality_seeded > 0

    def test_unknown_shard_by_falls_back_to_index(self, monkeypatch):
        from repro.engine.parallel import SHARD_BY_INDEX, shard_by

        monkeypatch.setenv("RKNNT_SHARD_BY", "nonsense")
        assert shard_by() == SHARD_BY_INDEX
        monkeypatch.delenv("RKNNT_SHARD_BY")
        assert shard_by() == SHARD_BY_INDEX


class TestMemoUnification:
    def test_decomposed_prepass_feeds_subquery_cache(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        """Locality is the near-hit tier below the memo cache: the pre-pass
        stores clustered sub-query answers, so the decomposed execution
        loop afterwards finds exact hits."""
        monkeypatch.setenv(LOCALITY_ENV, "1")
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
        context = mini_processor.engine_context
        context.clear_caches()
        mini_processor.query_batch(
            clustered_queries, K, method="divide-conquer"
        )
        assert context.locality_clusters > 0
        assert context.locality_seeded > 0
        # Every pre-pass answer is consumed as an exact memo hit.
        assert context.subquery_hits >= context.locality_seeded

    def test_second_batch_is_pure_cache_hits(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        monkeypatch.setenv(LOCALITY_ENV, "1")
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
        context = mini_processor.engine_context
        context.clear_caches()
        first = mini_processor.query_batch(
            clustered_queries, K, method="divide-conquer"
        )
        clusters_before = context.locality_clusters
        second = mini_processor.query_batch(
            clustered_queries, K, method="divide-conquer"
        )
        # Everything is memoised: no new clusters, identical answers.
        assert context.locality_clusters == clusters_before
        for a, b in zip(first, second):
            assert a.confirmed_endpoints == b.confirmed_endpoints


class TestContinuousSeeding:
    def test_new_subscription_seeds_from_nearby_donor(
        self, mini_city, mini_transitions, monkeypatch
    ):
        monkeypatch.setenv(LOCALITY_ENV, "1")
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        workload = QueryWorkload(mini_city, seed=31)
        donor_query = workload.random_query_route(3, 0.5)
        nearby = [(x + 0.05, y + 0.05) for x, y in donor_query]

        processor.watch(donor_query, K)
        seeded = processor.watch(nearby, K)
        assert seeded.delta_stats.seeded_filter_points > 0
        fresh = processor.query(nearby, K)
        standing = seeded.result()
        assert standing.transition_ids == fresh.transition_ids
        assert standing.confirmed_endpoints == fresh.confirmed_endpoints

    def test_no_seeding_when_locality_off(
        self, mini_city, mini_transitions, monkeypatch
    ):
        monkeypatch.delenv(LOCALITY_ENV, raising=False)
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        workload = QueryWorkload(mini_city, seed=31)
        donor_query = workload.random_query_route(3, 0.5)
        nearby = [(x + 0.05, y + 0.05) for x, y in donor_query]
        processor.watch(donor_query, K)
        second = processor.watch(nearby, K)
        assert second.delta_stats.seeded_filter_points == 0

    def test_seeded_subscription_survives_route_churn(
        self, mini_city, mini_transitions, monkeypatch
    ):
        """Seed facts are route-derived: a route-churn rebuild must drop
        them (they are only applied to the first build) and still match a
        fresh query against the mutated dataset."""
        from repro.model.route import Route

        monkeypatch.setenv(LOCALITY_ENV, "1")
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        workload = QueryWorkload(mini_city, seed=31)
        donor_query = workload.random_query_route(3, 0.5)
        nearby = [(x + 0.05, y + 0.05) for x, y in donor_query]
        processor.watch(donor_query, K)
        seeded = processor.watch(nearby, K)
        seeds_after_build = seeded.delta_stats.seeded_filter_points
        assert seeds_after_build > 0

        new_route = Route(
            mini_city.routes.next_id(),
            [(p[0] + 0.3, p[1] - 0.2) for p in nearby],
        )
        processor.add_route(new_route)
        try:
            assert seeded.delta_stats.seeded_filter_points == seeds_after_build
            fresh = processor.query(nearby, K)
            assert seeded.result().transition_ids == fresh.transition_ids
            assert (
                seeded.result().confirmed_endpoints == fresh.confirmed_endpoints
            )
        finally:
            processor.remove_route(new_route.route_id)


class TestKnobs:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("1", LOCALITY_ON),
            ("true", LOCALITY_ON),
            ("YES", LOCALITY_ON),
            ("on", LOCALITY_ON),
            ("0", LOCALITY_OFF),
            ("", LOCALITY_OFF),
            ("banana", LOCALITY_OFF),
        ],
    )
    def test_locality_env_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv(LOCALITY_ENV, raw)
        assert default_locality() == expected

    def test_plan_resolves_auto_from_env(self, monkeypatch):
        from dataclasses import replace

        plan = QueryPlan.for_method("voronoi")
        monkeypatch.setenv(LOCALITY_ENV, "1")
        assert plan.resolved().locality == LOCALITY_ON
        monkeypatch.delenv(LOCALITY_ENV)
        assert plan.resolved().locality == LOCALITY_OFF
        pinned = replace(plan, locality=LOCALITY_ON)
        assert pinned.resolved().locality == LOCALITY_ON

    def test_invalid_plan_locality_rejected(self):
        from dataclasses import replace

        plan = replace(QueryPlan.for_method("voronoi"), locality="sometimes")
        with pytest.raises(ValueError):
            plan.resolved()

    @pytest.mark.parametrize(
        "raw,expected",
        [("2.5", 2.5), ("0", None), ("-1", None), ("inf", None), ("abc", None)],
    )
    def test_cell_override_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", raw)
        assert locality_cell_override() == expected

    def test_cell_override_changes_clustering(
        self, mini_processor, clustered_queries, monkeypatch
    ):
        jobs = [(tuple(map(tuple, q)), frozenset()) for q in clustered_queries]
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", "1000")
        assert len(cluster_jobs(jobs)) == 1
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", "1e-9")
        assert len(cluster_jobs(jobs)) == len(jobs)

    def test_excluded_sets_never_share_a_cluster(self, clustered_queries):
        query = tuple(map(tuple, clustered_queries[0]))
        jobs = [(query, frozenset()), (query, frozenset({1}))]
        clusters = cluster_jobs(jobs, cell=1000.0)
        assert len(clusters) == 2


class TestWorkloadGenerator:
    def test_clustered_routes_are_deterministic(self, mini_city):
        first = QueryWorkload(mini_city, seed=5).clustered_query_routes(
            8, length=3, interval=0.6
        )
        second = QueryWorkload(mini_city, seed=5).clustered_query_routes(
            8, length=3, interval=0.6
        )
        assert first == second
        different = QueryWorkload(mini_city, seed=6).clustered_query_routes(
            8, length=3, interval=0.6
        )
        assert first != different

    def test_clustered_routes_shape_and_interval(self, mini_city):
        import math

        routes = QueryWorkload(mini_city, seed=5).clustered_query_routes(
            6, length=4, interval=0.6, clusters=2
        )
        assert len(routes) == 6
        for route in routes:
            assert len(route) == 4
            for (x0, y0), (x1, y1) in zip(route, route[1:]):
                step = math.hypot(x1 - x0, y1 - y0)
                assert step == pytest.approx(0.6)

    def test_round_robin_covers_every_cluster(self, mini_city):
        workload = QueryWorkload(mini_city, seed=5)
        routes = workload.clustered_query_routes(
            9, length=2, interval=0.5, clusters=3, spread=0.05
        )
        # Queries i, i+3, i+6 share a cluster centre; any prefix of
        # length >= clusters touches all three centres.
        for offset in range(3):
            group = [routes[offset], routes[offset + 3], routes[offset + 6]]
            xs = [r[0][0] for r in group]
            assert max(xs) - min(xs) < 1.0


class TestExecuteBatchApi:
    def test_off_path_is_plain_serial_loop(self, mini_processor, clustered_queries):
        from dataclasses import replace

        from repro.engine.executor import execute

        plan = replace(QueryPlan.for_method("voronoi"), locality=LOCALITY_OFF)
        jobs = [(tuple(map(tuple, q)), frozenset()) for q in clustered_queries]
        batch = execute_batch(
            mini_processor.engine_context, jobs, K, plan, "exists"
        )
        singles = [
            execute(
                mini_processor.engine_context, points, K, plan.resolved(),
                "exists", exclude_route_ids=excluded,
            )
            for points, excluded in jobs
        ]
        for a, b in zip(batch, singles):
            assert a.confirmed_endpoints == b.confirmed_endpoints

    def test_single_job_batch_never_clusters(self, mini_processor, clustered_queries):
        from dataclasses import replace

        context = mini_processor.engine_context
        context.clear_caches()
        plan = replace(QueryPlan.for_method("voronoi"), locality=LOCALITY_ON)
        jobs = [(tuple(map(tuple, clustered_queries[0])), frozenset())]
        execute_batch(context, jobs, K, plan, "exists")
        assert context.locality_clusters == 0


class TestInvalidationUnderChurn:
    """Warm locality caches must never outlive the data they answered.

    An interleaved churn script — transition inserts, deletes, a route
    added and removed — runs against a processor whose shared caches were
    warmed once and never cleared: after every mutation the seeded batch
    answers must match the brute-force oracle recomputed from the mutated
    datasets, serially and through fork and spawn worker pools (which see
    the churn as delta syncs and route-churn reseeds)."""

    def _queries(self, city):
        workload = QueryWorkload(city, seed=17)
        return workload.clustered_query_routes(
            6, length=3, interval=0.7, clusters=2
        )

    def _run_script(self, processor, check):
        """Mutate, then verify, six times: insert/insert/delete transitions
        interleaved with a route appearing and disappearing."""
        from repro.model.route import Route
        from repro.model.transition import Transition

        first = processor.transitions.next_id()
        processor.add_transition(Transition(first, (2.1, 2.1), (2.4, 2.6)))
        check("insert first transition")
        second = processor.transitions.next_id()
        processor.add_transition(Transition(second, (3.1, 2.2), (2.6, 2.9)))
        check("insert second transition")
        processor.remove_transition(first)
        check("delete first transition")
        route = Route(
            processor.routes.next_id(),
            [(2.2, 2.1), (2.6, 2.4), (3.0, 2.8)],
        )
        processor.add_route(route)
        check("add route")
        processor.remove_route(route.route_id)
        check("remove route")
        processor.remove_transition(second)
        check("delete second transition")

    @pytest.mark.parametrize("method", METHODS)
    def test_serial_seeded_answers_track_churn(self, method, monkeypatch):
        from repro.core.baseline import rknnt_bruteforce

        monkeypatch.setenv(LOCALITY_ENV, "1")
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
        city, transitions = make_city("mini")
        processor = RkNNTProcessor(city.routes, transitions)
        queries = self._queries(city)
        # Warm every shared cache once; from here on each mutation must
        # invalidate on its own — the caches are never cleared again.
        processor.query_batch(queries, K, method=method)

        def check(label):
            shared = processor.query_batch(queries, K, method=method)
            for index, (result, query) in enumerate(zip(shared, queries)):
                oracle = rknnt_bruteforce(
                    processor.routes, processor.transitions, query, K
                )
                assert result.confirmed_endpoints == oracle.confirmed_endpoints, (
                    f"{label}: stale answer at query {index}"
                )
                assert result.transition_ids == oracle.transition_ids, (
                    f"{label}: stale transitions at query {index}"
                )

        self._run_script(processor, check)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pooled_seeded_answers_track_churn(self, start_method, monkeypatch):
        import multiprocessing

        from repro.core.baseline import rknnt_bruteforce
        from repro.engine.parallel import ShardedExecutor

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        monkeypatch.setenv(LOCALITY_ENV, "1")
        monkeypatch.setenv("RKNNT_LOCALITY_CELL", CELL)
        monkeypatch.setenv("RKNNT_SHARD_BY", "cluster")
        city, transitions = make_city("mini")
        processor = RkNNTProcessor(city.routes, transitions)
        queries = self._queries(city)
        jobs = [(tuple(map(tuple, q)), frozenset()) for q in queries]
        plan = QueryPlan.for_method("voronoi", share_subquery_cache=True)
        with ShardedExecutor(
            processor.engine_context, workers=2, start_method=start_method
        ) as pool:
            pool.run(jobs, K, plan)  # warm the workers' caches

            def check(label):
                shared = pool.run(jobs, K, plan)
                for index, (result, query) in enumerate(zip(shared, queries)):
                    oracle = rknnt_bruteforce(
                        processor.routes, processor.transitions, query, K
                    )
                    assert (
                        result.confirmed_endpoints == oracle.confirmed_endpoints
                    ), f"{label}: stale answer at query {index}"
                    assert result.transition_ids == oracle.transition_ids, (
                        f"{label}: stale transitions at query {index}"
                    )

            self._run_script(processor, check)
