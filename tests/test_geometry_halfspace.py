"""Unit and property tests for the half-plane pruning predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import (
    bbox_inside_halfplane,
    bisector_halfplane,
    filtering_space_contains_bbox,
    filtering_space_contains_point,
    point_closer_to,
)
from repro.geometry.point import euclidean, squared_euclidean

# Coordinates are full-precision float64 draws.  The predicates compare
# *squared* distances (the engine's elementary-float expressions,
# bitwise-identical across backends), so the oracles below also compare in
# squared space and treat near-equal squared distances as ties.  Squaring a
# sub-1.5e-154 separation underflows to 0.0 — hypothesis happily generates
# such subnormal coordinates — and the tie guard classifies that as a tie
# rather than a wrong answer; see ``TestSubnormalRegressions`` for the two
# once-flaky pinned inputs that motivated this (PR 3 had narrowed these
# strategies to ``width=32`` to dodge them).
coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.tuples(coord, coord)


def squared_tie(d2_a: float, d2_b: float) -> bool:
    """True when two squared distances are too close for the squared-space
    and true-distance orderings to be guaranteed to agree."""
    return abs(d2_a - d2_b) <= 1e-9 * (1.0 + d2_a + d2_b)


class TestHalfPlane:
    def test_contains_point_closer_to_filter(self):
        # Filter point at (0, 0), query at (0, 4): bisector is y = 2.
        plane = bisector_halfplane((0, 4), (0, 0))
        assert plane.contains_point((0, 0))
        assert plane.contains_point((3, 1.9))
        assert not plane.contains_point((0, 4))
        assert not plane.contains_point((-2, 2.1))

    def test_point_on_bisector_is_outside(self):
        plane = bisector_halfplane((0, 4), (0, 0))
        assert not plane.contains_point((5, 2.0))

    def test_contains_bbox_fully_inside(self):
        plane = bisector_halfplane((0, 4), (0, 0))
        assert plane.contains_bbox(BoundingBox(-1, -1, 1, 1))

    def test_contains_bbox_straddling(self):
        plane = bisector_halfplane((0, 4), (0, 0))
        assert not plane.contains_bbox(BoundingBox(-1, 1, 1, 3))

    def test_contains_bbox_fully_outside(self):
        plane = bisector_halfplane((0, 4), (0, 0))
        assert not plane.contains_bbox(BoundingBox(-1, 3, 1, 5))


class TestPointCloserTo:
    def test_simple(self):
        assert point_closer_to((1, 0), (0, 0), (10, 0))
        assert not point_closer_to((9, 0), (0, 0), (10, 0))

    @given(p=points, r=points, q=points)
    def test_matches_distance_comparison(self, p, r, q):
        d2_r, d2_q = squared_euclidean(p, r), squared_euclidean(p, q)
        if squared_tie(d2_r, d2_q):
            # Near-tie in squared space (including subnormal separations
            # that underflow to equal squares): the squared and true
            # orderings may legitimately disagree here.
            return
        assert point_closer_to(p, r, q) == (euclidean(p, r) < euclidean(p, q))

    @given(p=points, r=points, q=points)
    def test_halfplane_agrees_with_distances(self, p, r, q):
        plane = bisector_halfplane(q, r)
        if plane.contains_point(p):
            # Tolerance absorbs rounding at ties; the half-plane is an
            # exact linear certificate of the squared-distance comparison.
            d2_r, d2_q = squared_euclidean(p, r), squared_euclidean(p, q)
            assert d2_r <= d2_q + 1e-9 * (1.0 + d2_r + d2_q)


class TestBBoxInsideHalfplane:
    @given(
        r=points,
        q=points,
        x1=coord,
        y1=coord,
        x2=coord,
        y2=coord,
    )
    def test_bbox_containment_implies_corner_containment(self, r, q, x1, y1, x2, y2):
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        if bbox_inside_halfplane(box, r, q):
            for corner in box.corners():
                # Tolerance absorbs rounding at near-ties; the half-plane
                # certificate itself is an exact linear form.
                d2_r = squared_euclidean(corner, r)
                d2_q = squared_euclidean(corner, q)
                assert d2_r <= d2_q + 1e-9 * (1.0 + d2_r + d2_q)

    def test_degenerate_box_matches_point_test(self):
        r, q = (0.0, 0.0), (4.0, 0.0)
        for x in (-1.0, 1.0, 1.9, 2.0, 2.1, 5.0):
            box = BoundingBox.from_point((x, 0.0))
            assert bbox_inside_halfplane(box, r, q) == point_closer_to((x, 0.0), r, q)


class TestFilteringSpace:
    def test_point_in_filtering_space_of_multiquery(self):
        # Query with two points to the right; filter point at the origin.
        query = [(4.0, 0.0), (4.0, 4.0)]
        assert filtering_space_contains_point((0.0, 0.0), (0.0, 0.0), query)
        assert filtering_space_contains_point((-1.0, 1.0), (0.0, 0.0), query)
        # A point close to one of the query points is not in the space.
        assert not filtering_space_contains_point((3.5, 0.0), (0.0, 0.0), query)

    def test_bbox_in_filtering_space(self):
        query = [(10.0, 0.0), (10.0, 10.0)]
        filter_point = (0.0, 0.0)
        assert filtering_space_contains_bbox(
            BoundingBox(-2, -2, 2, 2), filter_point, query
        )
        assert not filtering_space_contains_bbox(
            BoundingBox(-2, -2, 8, 2), filter_point, query
        )

    @given(
        r=points,
        q1=points,
        q2=points,
        p=points,
    )
    def test_point_membership_matches_distances(self, r, q1, q2, p):
        d2_r = squared_euclidean(p, r)
        if any(squared_tie(d2_r, squared_euclidean(p, q)) for q in (q1, q2)):
            return
        inside = filtering_space_contains_point(p, r, [q1, q2])
        expected = euclidean(p, r) < euclidean(p, q1) and euclidean(p, r) < euclidean(
            p, q2
        )
        assert inside == expected

    @given(
        r=points,
        q1=points,
        q2=points,
        x1=coord,
        y1=coord,
        x2=coord,
        y2=coord,
    )
    def test_bbox_membership_implies_corners_membership(
        self, r, q1, q2, x1, y1, x2, y2
    ):
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        if filtering_space_contains_bbox(box, r, [q1, q2]):
            for corner in box.corners():
                d2_r = squared_euclidean(corner, r)
                d2_q = min(
                    squared_euclidean(corner, q1), squared_euclidean(corner, q2)
                )
                # Corners must be (up to rounding at ties) closer to the
                # filter point than to every query point.
                assert d2_r <= d2_q + 1e-9 * (1.0 + d2_r + d2_q)

    def test_single_point_query_space_is_largest(self):
        # Definition 6: adding query points can only shrink the space.
        filter_point = (0.0, 0.0)
        box = BoundingBox(-1, -1, 0.5, 0.5)
        single = filtering_space_contains_bbox(box, filter_point, [(5.0, 0.0)])
        double = filtering_space_contains_bbox(
            box, filter_point, [(5.0, 0.0), (0.0, 0.8)]
        )
        assert single
        assert not double


class TestSubnormalRegressions:
    """Pinned inputs that flaked under full-float64 generation before the
    property oracles moved to squared space (PR 3 had narrowed the
    strategies to float32 to dodge exactly these)."""

    def test_subnormal_squared_distances_tie_to_equidistant(self):
        p, r, q = (0.0, 0.0), (1e-170, 0.0), (2e-170, 0.0)
        # Both squared distances underflow to exactly 0.0...
        assert squared_euclidean(p, r) == 0.0 == squared_euclidean(p, q)
        # ...so the strictly-closer predicate reports "not closer", even
        # though true distances still order r closer.  Every engine path
        # compares the same squared expressions, so the tie is consistent
        # across backends — a tie, not a wrong answer.
        assert euclidean(p, r) < euclidean(p, q)
        assert not point_closer_to(p, r, q)
        assert squared_tie(squared_euclidean(p, r), squared_euclidean(p, q))

    def test_linear_halfplane_orders_what_squares_cannot(self):
        p, r, q = (-1.0, 0.0), (1e-170, 0.0), (2e-170, 0.0)
        # Both squared distances round to exactly 1.0: a squared-space tie.
        assert squared_euclidean(p, r) == 1.0 == squared_euclidean(p, q)
        assert not point_closer_to(p, r, q)
        # But the linear certificate 2(r-q)·p > |r|²-|q|² keeps the
        # 1e-170 coefficient without squaring it, so it still places p
        # strictly inside H_{r:q}.  The divergence only opens at
        # squared-space ties, which is why the property above guards with
        # ``squared_tie`` instead of asserting exact agreement.
        assert bisector_halfplane(q, r).contains_point(p)
        assert squared_tie(squared_euclidean(p, r), squared_euclidean(p, q))
