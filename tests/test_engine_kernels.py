"""Differential tests: vectorized geometry kernels vs. scalar predicates.

Every batch kernel in :mod:`repro.geometry.kernels` must agree *exactly*
(not approximately) with the scalar predicate it replaces — the execution
engine relies on that for element-wise identical batch answers.  Inputs are
random via hypothesis, including degenerate boxes and coincident points.

When numpy is unavailable the kernels fall back to loops over the scalar
predicates, so these tests still pass (they then mostly assert the fallback
plumbing); the numpy-only verification kernel test is skipped.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knn import query_distance_sq
from repro.geometry import kernels
from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import (
    bisector_halfplane,
    filtering_space_contains_bbox,
    filtering_space_contains_point,
)
from repro.geometry.voronoi import voronoi_prunes_bbox

coord = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
point = st.tuples(coord, coord)
points = st.lists(point, min_size=1, max_size=6)


@st.composite
def box(draw):
    x1, y1 = draw(point)
    x2, y2 = draw(point)
    return (min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


boxes = st.lists(box(), min_size=1, max_size=5)


def as_bbox(box_tuple) -> BoundingBox:
    return BoundingBox(*box_tuple)


@settings(max_examples=60, deadline=None)
@given(bxs=boxes, query=points)
def test_boxes_min_dist_matches_bbox(bxs, query):
    batch = kernels.boxes_min_dist_sq_to_query(kernels.pack_boxes(bxs), kernels.pack_points(query))
    for box_tuple, got in zip(bxs, batch):
        assert float(got) == as_bbox(box_tuple).min_dist_sq_to_query(query)


@settings(max_examples=60, deadline=None)
@given(pts=points, query=points)
def test_points_min_dist_matches_query_distance(pts, query):
    batch = kernels.points_min_dist_sq_to_query(
        kernels.pack_points(pts), kernels.pack_points(query)
    )
    for pt, got in zip(pts, batch):
        assert float(got) == query_distance_sq(pt, query)


@settings(max_examples=60, deadline=None)
@given(box_tuple=box(), filters=points, query=points)
def test_halfplane_tensor_matches_contains_bbox(box_tuple, filters, query):
    tensor = kernels.box_halfplane_tensor(
        box_tuple, kernels.pack_points(filters), kernels.pack_points(query)
    )
    bbox = as_bbox(box_tuple)
    for i, filter_point in enumerate(filters):
        for j, query_point in enumerate(query):
            expected = bisector_halfplane(query_point, filter_point).contains_bbox(bbox)
            assert bool(tensor[i][j]) == expected


@settings(max_examples=40, deadline=None)
@given(bxs=boxes, filters=points, query=points)
def test_block_tensor_matches_single_box_tensor(bxs, filters, query):
    flt = kernels.pack_points(filters)
    qry = kernels.pack_points(query)
    block = kernels.boxes_halfplane_tensor(kernels.pack_boxes(bxs), flt, qry)
    for b, box_tuple in enumerate(bxs):
        single = kernels.box_halfplane_tensor(box_tuple, flt, qry)
        for i in range(len(filters)):
            for j in range(len(query)):
                assert bool(block[b][i][j]) == bool(single[i][j])


@settings(max_examples=60, deadline=None)
@given(box_tuple=box(), filters=points, query=points)
def test_dominators_match_filtering_space(box_tuple, filters, query):
    all_q, _ = kernels.dominators_of_box(
        box_tuple, kernels.pack_points(filters), kernels.pack_points(query)
    )
    bbox = as_bbox(box_tuple)
    for filter_point, got in zip(filters, all_q):
        assert bool(got) == filtering_space_contains_bbox(bbox, filter_point, query)


@settings(max_examples=60, deadline=None)
@given(box_tuple=box(), route=st.lists(point, min_size=2, max_size=5), query=points)
def test_route_domination_matches_voronoi_predicate(box_tuple, route, query):
    flt = kernels.pack_points(route)
    qry = kernels.pack_points(query)
    tensor = kernels.box_halfplane_tensor(box_tuple, flt, qry)
    got = kernels.route_dominates_box(tensor, list(range(len(route))))
    assert got == voronoi_prunes_bbox(as_bbox(box_tuple), route, query)


@settings(max_examples=60, deadline=None)
@given(pts=points, filter_point=point, query=points)
def test_points_in_filtering_space_matches_scalar(pts, filter_point, query):
    mask = kernels.points_in_filtering_space(
        kernels.pack_points(pts), filter_point, kernels.pack_points(query)
    )
    for pt, got in zip(pts, mask):
        assert bool(got) == filtering_space_contains_point(pt, filter_point, query)


@pytest.mark.skipif(
    not kernels.numpy_available(), reason="verification kernel is numpy-only"
)
@settings(max_examples=40, deadline=None)
@given(
    pts=points,
    routes=st.lists(st.lists(point, min_size=1, max_size=4), min_size=1, max_size=5),
    query=points,
    k_excluded=st.integers(min_value=0, max_value=2),
)
def test_count_closer_routes_matches_bruteforce(pts, routes, query, k_excluded):
    flat = [p for route in routes for p in route]
    offsets = []
    position = 0
    for route in routes:
        offsets.append(position)
        position += len(route)
    excluded_columns = list(range(min(k_excluded, len(routes))))

    thresholds = [query_distance_sq(p, query) for p in pts]
    counts = kernels.count_closer_routes(
        kernels.pack_points(pts),
        thresholds,
        kernels.pack_points(flat),
        offsets,
        excluded_columns=excluded_columns,
        chunk_size=2,  # exercise the chunked path
    )
    for p, threshold, got in zip(pts, thresholds, counts):
        expected = 0
        for column, route in enumerate(routes):
            if column in excluded_columns:
                continue
            route_d = query_distance_sq(p, route)
            if route_d < threshold:
                expected += 1
        assert int(got) == expected


def test_resolve_backend():
    assert kernels.resolve_backend("python") == "python"
    assert kernels.resolve_backend("auto") in ("numpy", "python")
    with pytest.raises(ValueError):
        kernels.resolve_backend("fortran")
    if not kernels.numpy_available():
        with pytest.raises(ValueError):
            kernels.resolve_backend("numpy")
    else:
        assert kernels.resolve_backend("numpy") == "numpy"
