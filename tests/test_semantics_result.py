"""Tests for query semantics, the result object and query statistics."""

import pytest

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, FORALL, Semantics
from repro.core.stats import QueryStatistics


class TestSemantics:
    def test_coerce_from_string(self):
        assert Semantics.coerce("exists") is EXISTS
        assert Semantics.coerce("forall") is FORALL

    def test_coerce_from_member(self):
        assert Semantics.coerce(EXISTS) is EXISTS
        assert Semantics.coerce(FORALL) is FORALL

    def test_coerce_invalid(self):
        with pytest.raises(ValueError):
            Semantics.coerce("some")

    def test_values(self):
        assert EXISTS.value == "exists"
        assert FORALL.value == "forall"


class TestRkNNTResult:
    def _confirmed(self):
        return {
            1: {"o"},
            2: {"o", "d"},
            3: {"d"},
            4: set(),
        }

    def test_exists_aggregation(self):
        result = RkNNTResult.from_confirmed(
            self._confirmed(), EXISTS, k=3, stats=QueryStatistics()
        )
        assert result.transition_ids == {1, 2, 3}
        assert result.semantics is EXISTS
        assert result.k == 3

    def test_forall_aggregation(self):
        result = RkNNTResult.from_confirmed(
            self._confirmed(), FORALL, k=3, stats=QueryStatistics()
        )
        assert result.transition_ids == {2}

    def test_both_views_available_regardless_of_semantics(self):
        result = RkNNTResult.from_confirmed(
            self._confirmed(), EXISTS, k=3, stats=QueryStatistics()
        )
        assert result.exists_ids() == {1, 2, 3}
        assert result.forall_ids() == {2}
        # Lemma 1: ∀ ⊆ ∃.
        assert result.forall_ids() <= result.exists_ids()

    def test_len_and_contains(self):
        result = RkNNTResult.from_confirmed(
            self._confirmed(), EXISTS, k=1, stats=QueryStatistics()
        )
        assert len(result) == 3
        assert 2 in result
        assert 4 not in result

    def test_confirmed_endpoints_are_frozen(self):
        result = RkNNTResult.from_confirmed(
            self._confirmed(), EXISTS, k=1, stats=QueryStatistics()
        )
        assert result.confirmed_endpoints[2] == frozenset({"o", "d"})
        assert isinstance(result.confirmed_endpoints[1], frozenset)


class TestQueryStatistics:
    def test_total_seconds(self):
        stats = QueryStatistics(filtering_seconds=1.5, verification_seconds=0.5)
        assert stats.total_seconds == pytest.approx(2.0)

    def test_merge_accumulates(self):
        first = QueryStatistics(
            filtering_seconds=1.0,
            verification_seconds=2.0,
            route_nodes_visited=5,
            transition_nodes_visited=7,
            filter_points=3,
            nodes_pruned=2,
            candidates=10,
            confirmed_points=4,
            subqueries=1,
        )
        second = QueryStatistics(
            filtering_seconds=0.5,
            verification_seconds=0.25,
            route_nodes_visited=1,
            transition_nodes_visited=2,
            filter_points=3,
            nodes_pruned=4,
            candidates=5,
            confirmed_points=6,
            subqueries=1,
        )
        first.merge(second)
        assert first.filtering_seconds == pytest.approx(1.5)
        assert first.verification_seconds == pytest.approx(2.25)
        assert first.route_nodes_visited == 6
        assert first.transition_nodes_visited == 9
        assert first.filter_points == 6
        assert first.nodes_pruned == 6
        assert first.candidates == 15
        assert first.confirmed_points == 10
        assert first.subqueries == 2

    def test_as_dict_round_trip(self):
        stats = QueryStatistics(filtering_seconds=1.0, candidates=3)
        data = stats.as_dict()
        assert data["filtering_seconds"] == 1.0
        assert data["candidates"] == 3
        assert data["total_seconds"] == stats.total_seconds

    def test_divide_conquer_reports_subqueries(self, toy_processor):
        result = toy_processor.query(
            [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)], k=2, method="divide-conquer"
        )
        assert result.stats.subqueries == 3

    def test_single_query_reports_one_subquery(self, toy_processor):
        result = toy_processor.query([(0.0, 2.0), (8.0, 2.0)], k=2)
        assert result.stats.subqueries == 1
