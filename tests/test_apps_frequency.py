"""Tests for the service frequency recommendation application."""

import pytest

from repro.apps.frequency import FrequencyPlanner, SlotDemand
from repro.model.dataset import TransitionDataset
from repro.model.transition import Transition


@pytest.fixture
def timestamped_transitions():
    """A morning-peaked demand profile hugging the y = 0 route."""
    transitions = []
    next_id = 0
    # Slot [0, 10): heavy demand near route 0.
    for i in range(12):
        transitions.append(
            Transition(next_id, (0.5 + i * 0.5, 0.2), (1.0 + i * 0.5, -0.2), timestamp=float(i % 10))
        )
        next_id += 1
    # Slot [10, 20): light demand.
    for i in range(3):
        transitions.append(
            Transition(next_id, (1.0 + i, 0.3), (2.0 + i, -0.3), timestamp=10.0 + i)
        )
        next_id += 1
    # Untimestamped rows are ignored by the planner.
    transitions.append(Transition(next_id, (1.0, 0.1), (2.0, 0.1)))
    return TransitionDataset(transitions)


@pytest.fixture
def planner(toy_routes, timestamped_transitions):
    return FrequencyPlanner(
        toy_routes,
        timestamped_transitions,
        k=1,
        vehicle_capacity=5,
        target_load_factor=1.0,
    )


class TestValidation:
    def test_invalid_parameters(self, toy_routes, timestamped_transitions):
        with pytest.raises(ValueError):
            FrequencyPlanner(toy_routes, timestamped_transitions, k=0)
        with pytest.raises(ValueError):
            FrequencyPlanner(toy_routes, timestamped_transitions, vehicle_capacity=0)
        with pytest.raises(ValueError):
            FrequencyPlanner(
                toy_routes, timestamped_transitions, target_load_factor=0.0
            )

    def test_no_timestamps_raises(self, toy_routes):
        transitions = TransitionDataset([Transition(0, (0, 0), (1, 1))])
        planner = FrequencyPlanner(toy_routes, transitions)
        with pytest.raises(ValueError):
            planner.time_range()

    def test_invalid_slot_count(self, planner, toy_routes):
        with pytest.raises(ValueError):
            planner.plan(toy_routes.get(0), slots=0)


class TestSlots:
    def test_time_range(self, planner):
        start, end = planner.time_range()
        assert start == 0.0
        assert end == 12.0

    def test_slot_transitions_window(self, planner):
        slot = planner.slot_transitions(0.0, 10.0)
        assert len(slot) == 12
        later = planner.slot_transitions(10.0, 20.0)
        assert len(later) == 3

    def test_vehicles_needed(self, planner):
        assert planner.vehicles_needed(0) == 0
        assert planner.vehicles_needed(1) == 1
        assert planner.vehicles_needed(5) == 1
        assert planner.vehicles_needed(6) == 2


class TestPlan:
    def test_plan_covers_all_timestamped_rows(self, planner, toy_routes):
        plan = planner.plan(toy_routes.get(0), slots=2)
        assert len(plan) == 2
        assert sum(slot.active_transitions for slot in plan) == 15

    def test_peak_slot_is_the_morning_peak(self, planner, toy_routes):
        plan = planner.plan(toy_routes.get(0), slots=2)
        peak = planner.peak_slot(plan)
        assert peak is plan[0]
        assert peak.riders >= plan[1].riders

    def test_vehicle_recommendation_scales_with_demand(self, planner, toy_routes):
        plan = planner.plan(toy_routes.get(0), slots=2)
        assert plan[0].vehicles >= plan[1].vehicles
        for slot in plan:
            if slot.riders:
                assert slot.load_per_vehicle <= planner.vehicle_capacity

    def test_empty_slot_needs_no_vehicles(self, planner, toy_routes):
        plan = planner.plan(toy_routes.get(0), slots=2, time_range=(100.0, 120.0))
        assert all(slot.riders == 0 and slot.vehicles == 0 for slot in plan)
        assert all(slot.load_per_vehicle == 0.0 for slot in plan)

    def test_peak_slot_requires_nonempty_plan(self, planner):
        with pytest.raises(ValueError):
            planner.peak_slot([])

    def test_plan_with_query_points(self, planner):
        plan = planner.plan([(0.0, 0.0), (8.0, 0.0)], slots=3)
        assert len(plan) == 3
        assert all(isinstance(slot, SlotDemand) for slot in plan)
