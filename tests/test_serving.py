"""Differential and lifecycle tests of the persistent serving pool.

The serving contract, per method × semantics × backend:

    persistent pool ≡ per-call pool ≡ serial ≡ brute force

element-wise, in workload order — plus the lifecycle guarantees that make
the pool safe to keep alive: transition churn is delta-synced into the
workers (no reseed), route churn reseeds transparently, a worker crash
mid-query is recovered from by bounded reseed-and-replay (the full fault
matrix lives in test_resilience.py), and no shared-memory segment
outlives its pool (exit, crash and double-close included).
"""

import os
import time

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import METHODS, RkNNTProcessor, SERVING_POOL_ENV
from repro.data.checkins import TransitionGenerator
from repro.engine import arena
from repro.engine.parallel import ShardedExecutor
from repro.engine.plan import QueryPlan
from repro.geometry.kernels import numpy_available
from repro.model.route import Route
from repro.model.transition import Transition
from repro.planning.precompute import VertexRkNNTIndex

K = 3
QUERY_COUNT = 4
WORKERS = 2

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

#: Brute-force oracle answers, cached per (query, semantics) — the oracle
#: does not depend on method/backend, so the 12-way differential sweep
#: pays for it once per query.
_ORACLE_CACHE = {}


def _oracle_ids(city, transitions, query, semantics):
    key = (tuple(map(tuple, query)), semantics)
    if key not in _ORACLE_CACHE:
        _ORACLE_CACHE[key] = rknnt_bruteforce(
            city.routes, transitions, query, K, semantics=semantics
        ).transition_ids
    return _ORACLE_CACHE[key]


@pytest.fixture(scope="module")
def serve_queries(mini_workload):
    queries = mini_workload.query_routes(QUERY_COUNT, length=4, interval=0.8)
    queries.append(queries[0][:1])  # single-point degenerate case
    return queries


@pytest.fixture(scope="module")
def serving(mini_city, mini_transitions):
    """One persistent pool shared by the whole differential sweep (reuse is
    the point); asserts its segment does not outlive the scope."""
    processor = RkNNTProcessor(mini_city.routes, mini_transitions)
    with processor.serving_pool(workers=WORKERS) as pool:
        yield processor, pool
    assert processor.active_serving_pool is None
    assert arena.active_segment_names() == []


class TestServingEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("method", METHODS)
    def test_persistent_equals_percall_equals_serial_equals_bruteforce(
        self, mini_city, mini_transitions, serving, serve_queries,
        method, semantics, backend,
    ):
        processor, pool = serving
        serial = processor.query_batch(
            serve_queries, K, method=method, semantics=semantics, backend=backend
        )
        persistent = processor.query_batch(
            serve_queries, K, method=method, semantics=semantics,
            backend=backend, workers=WORKERS,
        )
        plan = QueryPlan.for_method(
            method, backend=backend, share_subquery_cache=True
        )
        jobs = [
            ([(float(x), float(y)) for x, y in query], frozenset())
            for query in serve_queries
        ]
        with ShardedExecutor(
            processor.engine_context, workers=WORKERS
        ) as per_call:
            per_call_results = per_call.run(jobs, K, plan, semantics=semantics)
        for query, expected, warm, cold in zip(
            serve_queries, serial, persistent, per_call_results
        ):
            assert warm.confirmed_endpoints == expected.confirmed_endpoints
            assert cold.confirmed_endpoints == expected.confirmed_endpoints
            assert warm.transition_ids == _oracle_ids(
                mini_city, mini_transitions, query, semantics
            )

    def test_pool_is_reused_across_batches(self, serving, serve_queries):
        processor, pool = serving
        spawned = pool.pools_spawned
        for _ in range(3):
            processor.query_batch(serve_queries, K, workers=WORKERS)
        assert pool.pools_spawned == spawned  # all three dispatched warm


class TestDynamicUpdatesWhilePoolLive:
    @pytest.fixture()
    def churn_processor(self, mini_city):
        transitions = TransitionGenerator(mini_city.routes, seed=17).generate(120)
        return RkNNTProcessor(mini_city.routes, transitions), transitions

    def test_transition_churn_is_delta_synced(self, churn_processor):
        processor, transitions = churn_processor
        query = [(2.0, 2.0), (3.0, 2.5)]
        with processor.serving_pool(workers=WORKERS) as pool:
            before = processor.query_batch([query], K, workers=WORKERS)[0]
            assert (
                before.confirmed_endpoints
                == processor.query_batch([query], K)[0].confirmed_endpoints
            )
            added = []
            for step in range(3):
                new_id = transitions.next_id()
                processor.add_transition(
                    Transition(new_id, (2.0 + step / 10, 2.1), (2.4, 2.6))
                )
                added.append(new_id)
            processor.remove_transition(added[0])
            after = processor.query_batch([query], K, workers=WORKERS)[0]
            fresh = processor.query_batch([query], K)[0]
            assert after.confirmed_endpoints == fresh.confirmed_endpoints
            assert added[1] in after.transition_ids
            assert added[0] not in after.transition_ids
            # The whole churn burst was absorbed by delta sync: the workers
            # invalidated/patched their caches, the pool never respawned.
            assert pool.pools_spawned == 1

    def test_route_churn_reseeds_the_pool(self, mini_city, churn_processor):
        processor, _ = churn_processor
        query = [(2.0, 2.0), (3.0, 2.5)]
        with processor.serving_pool(workers=WORKERS) as pool:
            processor.query_batch([query], K, workers=WORKERS)
            assert pool.pools_spawned == 1
            route_id = mini_city.routes.next_id()
            route = Route(route_id, [(1.9, 2.0), (2.5, 2.2), (3.1, 2.4)])
            processor.add_route(route)
            try:
                after = processor.query_batch([query], K, workers=WORKERS)[0]
                fresh = processor.query_batch([query], K)[0]
                assert after.confirmed_endpoints == fresh.confirmed_endpoints
                assert pool.pools_spawned == 2  # geometry changed: reseeded
            finally:
                processor.remove_route(route_id)

    def test_worker_crash_mid_query_recovers_once(self, churn_processor):
        processor, _ = churn_processor
        query = [(2.0, 2.0), (3.0, 2.5)]
        baseline = set(arena.active_segment_names())
        with processor.serving_pool(workers=WORKERS) as pool:
            expected = processor.query_batch([query], K, workers=WORKERS)[0]
            first_arena = pool.arena
            # Kill a worker out from under the executor, then wait until
            # the pool has noticed (otherwise the surviving worker could
            # serve the next dispatch before the break is detected and no
            # recovery would be needed): the next dispatch hits a broken
            # pool, reseeds (old arena destroyed, fresh one published) and
            # replays the workload.
            pool._pool.submit(os._exit, 13)
            deadline = time.monotonic() + 30.0
            while not pool._pool._broken and time.monotonic() < deadline:
                time.sleep(0.02)
            assert pool._pool._broken, "worker kill was never detected"
            after = processor.query_batch([query], K, workers=WORKERS)[0]
            assert after.confirmed_endpoints == expected.confirmed_endpoints
            assert pool.crash_recoveries == 1
            if first_arena is not None:
                assert first_arena.closed
                assert first_arena.name not in arena.active_segment_names()
        # Nothing this pool published survives its exit (a module-scoped
        # pool from the differential sweep may still be live, hence the
        # baseline comparison rather than a plain "empty" check).
        assert set(arena.active_segment_names()) <= baseline


class TestServingPoolLifecycle:
    def test_nested_serving_pool_rejected(self, mini_processor, serve_queries):
        with mini_processor.serving_pool(workers=1):
            with pytest.raises(RuntimeError):
                with mini_processor.serving_pool(workers=1):
                    pass  # pragma: no cover
        assert mini_processor.active_serving_pool is None

    def test_double_close_is_idempotent(self, mini_city, mini_transitions):
        baseline = set(arena.active_segment_names())
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        with processor.serving_pool(workers=1) as pool:
            processor.query_batch([[(2.0, 2.0)]], K, workers=1)
        pool.close()  # second close (the context manager already closed it)
        processor.close()
        processor.close()
        assert set(arena.active_segment_names()) <= baseline

    def test_env_knob_adopts_a_persistent_pool(
        self, mini_city, mini_transitions, monkeypatch
    ):
        monkeypatch.setenv(SERVING_POOL_ENV, "1")
        baseline = set(arena.active_segment_names())
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        queries = [[(2.0, 2.0)], [(3.0, 2.5), (2.0, 2.0)]]
        serial = processor.query_batch(queries, K)
        first = processor.query_batch(queries, K, workers=WORKERS)
        pool = processor.active_serving_pool
        assert pool is not None  # adopted on first parallel call
        second = processor.query_batch(queries, K, workers=WORKERS)
        assert processor.active_serving_pool is pool
        assert pool.pools_spawned == 1
        for expected, a, b in zip(serial, first, second):
            assert a.confirmed_endpoints == expected.confirmed_endpoints
            assert b.confirmed_endpoints == expected.confirmed_endpoints
        processor.close()
        assert processor.active_serving_pool is None
        assert set(arena.active_segment_names()) <= baseline

    def test_env_adopted_pool_grows_but_never_shrinks(
        self, mini_city, mini_transitions, monkeypatch
    ):
        monkeypatch.setenv(SERVING_POOL_ENV, "1")
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        queries = [[(2.0, 2.0)]]
        serial = processor.query_batch(queries, K)
        processor.query_batch(queries, K, workers=1)
        assert processor.active_serving_pool.workers == 1
        # Asking for more workers replaces the undersized pool...
        grown = processor.query_batch(queries, K, workers=WORKERS)
        pool = processor.active_serving_pool
        assert pool.workers == WORKERS
        # ...while a smaller request keeps the larger, warm pool.
        processor.query_batch(queries, K, workers=1)
        assert processor.active_serving_pool is pool
        assert grown[0].confirmed_endpoints == serial[0].confirmed_endpoints
        processor.close()

    def test_env_knob_off_keeps_percall_pools(
        self, mini_city, mini_transitions, monkeypatch
    ):
        monkeypatch.delenv(SERVING_POOL_ENV, raising=False)
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        processor.query_batch([[(2.0, 2.0)]], K, workers=1)
        assert processor.active_serving_pool is None


class TestSpawnStartMethod:
    """Spawn-start-method serving (the macOS/Windows leg).

    The columnar context pickle is start-method-agnostic, so a spawn pool
    must answer exactly like the fork pool and the serial path — and must
    clean its shared-memory segment up just the same.
    """

    @pytest.fixture(scope="class")
    def spawn_serving(self, mini_city, mini_transitions):
        # Other (module-scoped) pools may be live with their own segments;
        # only segments this pool published must be gone after teardown.
        baseline = set(arena.active_segment_names())
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        with processor.serving_pool(workers=WORKERS, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            yield processor, pool
        assert processor.active_serving_pool is None
        assert set(arena.active_segment_names()) <= baseline

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", METHODS)
    def test_spawn_pool_equals_serial(
        self, mini_city, mini_transitions, spawn_serving, serve_queries,
        method, backend,
    ):
        processor, pool = spawn_serving
        serial = processor.query_batch(
            serve_queries, K, method=method, backend=backend
        )
        spawned = processor.query_batch(
            serve_queries, K, method=method, backend=backend, workers=WORKERS
        )
        for query, expected, actual in zip(serve_queries, serial, spawned):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints
            assert actual.transition_ids == _oracle_ids(
                mini_city, mini_transitions, query, "exists"
            )
        assert pool.pools_spawned == 1  # the whole sweep reused one pool

    def test_spawn_pool_delta_syncs_transition_churn(
        self, mini_city, spawn_serving
    ):
        processor, pool = spawn_serving
        query = [(2.0, 2.0), (3.0, 2.5)]
        new_id = processor.transitions.next_id()
        processor.add_transition(Transition(new_id, (2.0, 2.1), (2.4, 2.6)))
        try:
            after = processor.query_batch([query], K, workers=WORKERS)[0]
            fresh = processor.query_batch([query], K)[0]
            assert after.confirmed_endpoints == fresh.confirmed_endpoints
            assert pool.pools_spawned == 1  # synced, never respawned
        finally:
            processor.remove_transition(new_id)

    def test_env_knob_selects_spawn(self, mini_city, mini_transitions, monkeypatch):
        from repro.engine.parallel import START_METHOD_ENV, ShardedExecutor

        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        executor = ShardedExecutor(processor.engine_context, workers=1)
        assert executor.start_method == "spawn"
        # A mistyped knob falls back to the platform default, never raises.
        monkeypatch.setenv(START_METHOD_ENV, "warp-drive")
        fallback = ShardedExecutor(processor.engine_context, workers=1)
        assert fallback.start_method in ("fork", "spawn", "forkserver")


class TestServingIntegration:
    def test_planning_bulk_build_reuses_live_pool(self, mini_city, mini_processor):
        serial = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        serial.build(workers=0)
        pooled = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        with mini_processor.serving_pool(workers=WORKERS) as pool:
            mini_processor.query_batch([[(2.0, 2.0)]], K, workers=WORKERS)
            spawned = pool.pools_spawned
            pooled.build(workers=WORKERS)
            assert pool.pools_spawned == spawned  # reused, not respawned
        for vertex in mini_city.network.vertices():
            assert pooled.vertex_endpoints(vertex) == serial.vertex_endpoints(
                vertex
            ), vertex

    def test_refresh_subscriptions_via_pool(self, mini_city, mini_transitions):
        baseline = set(arena.active_segment_names())
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        queries = [
            [(2.0, 2.0), (3.0, 2.5)],
            [(1.0, 1.5)],
            [(3.5, 1.0), (3.0, 2.0)],
        ]
        subscriptions = [processor.watch(query, K) for query in queries]
        route_id = mini_city.routes.next_id()
        try:
            with processor.serving_pool(workers=WORKERS):
                # Route churn close to every query: the standing results
                # genuinely change, and all re-filters run in the pool.
                processor.add_route(
                    Route(route_id, [(1.5, 1.6), (2.5, 2.1), (3.2, 2.3)])
                )
                assert all(s.is_stale() for s in subscriptions)
                processor.refresh_subscriptions()
                assert not any(s.is_stale() for s in subscriptions)
                for subscription, query in zip(subscriptions, queries):
                    fresh = processor.query(query, K)
                    assert subscription.transition_ids == fresh.transition_ids
                # The re-installed filter structures must keep the O(filter)
                # insert fast-path exact: stream a transition through and
                # compare against a fresh query again.
                new_id = mini_transitions.next_id()
                processor.add_transition(
                    Transition(new_id, (2.05, 2.05), (2.9, 2.4))
                )
                for subscription, query in zip(subscriptions, queries):
                    fresh = processor.query(query, K)
                    assert subscription.transition_ids == fresh.transition_ids
                processor.remove_transition(new_id)
        finally:
            processor.remove_route(route_id)
            processor.close()
        assert set(arena.active_segment_names()) <= baseline
