"""Tests for the per-vertex RkNNT pre-computation (Algorithm 5)."""

import math

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import RkNNTProcessor
from repro.planning.graph import BusNetwork
from repro.planning.precompute import VertexRkNNTIndex


@pytest.fixture
def toy_setup(toy_routes, toy_transitions):
    network = BusNetwork.from_routes(toy_routes)
    processor = RkNNTProcessor(toy_routes, toy_transitions)
    return network, processor


class TestBuild:
    def test_report_counts_and_timings(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=2)
        report = index.build()
        assert report.vertices == network.vertex_count
        assert report.k == 2
        assert report.rknnt_seconds >= 0.0
        assert report.shortest_path_seconds >= 0.0
        assert report.total_seconds == pytest.approx(
            report.rknnt_seconds + report.shortest_path_seconds
        )
        data = report.as_dict()
        assert data["vertices"] == network.vertex_count

    def test_vertex_sets_match_single_point_bruteforce(self, toy_setup, toy_routes, toy_transitions):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=2)
        index.build()
        for vertex in network.vertices():
            position = tuple(network.position(vertex))
            oracle = rknnt_bruteforce(toy_routes, toy_transitions, [position], 2)
            tags = index.vertex_endpoints(vertex)
            exists_ids = VertexRkNNTIndex.exists_ids(tags)
            assert exists_ids == oracle.transition_ids

    def test_restricted_vertices(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=1)
        some = list(network.vertices())[:3]
        report = index.build(vertices=some)
        assert report.vertices == 3

    def test_lazy_vertex_queries_after_build(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=1)
        index.build(vertices=[])
        # Not pre-computed, still answerable (computed lazily and cached).
        vertex = next(iter(network.vertices()))
        first = index.vertex_endpoints(vertex)
        second = index.vertex_endpoints(vertex)
        assert first == second


class TestShortestMatrix:
    def test_shortest_distance_lookup(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=1)
        index.build()
        u = network.vertex_at((0.0, 0.0))
        v = network.vertex_at((8.0, 0.0))
        assert index.shortest_distance(u, v) == pytest.approx(8.0)
        assert index.shortest_distance(u, u) == 0.0

    def test_unreachable_is_infinite(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=1)
        index.build()
        u = network.vertex_at((0.0, 0.0))
        w = network.vertex_at((0.0, 8.0))  # route 2 is disconnected from route 0
        assert math.isinf(index.shortest_distance(u, w))

    def test_unknown_source_is_infinite(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=1)
        # build() not called: everything unknown.
        assert math.isinf(index.shortest_distance(0, 1))


class TestAggregation:
    def test_route_endpoints_union(self, toy_setup):
        network, processor = toy_setup
        index = VertexRkNNTIndex(network, processor, k=2)
        index.build()
        vertices = list(network.vertices())[:4]
        union = index.route_endpoints(vertices)
        manual = set()
        for vertex in vertices:
            manual.update(index.vertex_endpoints(vertex))
        assert union == frozenset(manual)

    def test_exists_and_forall_counts(self):
        tags = [(1, "o"), (1, "d"), (2, "o"), (3, "d")]
        assert VertexRkNNTIndex.exists_count(tags) == 3
        assert VertexRkNNTIndex.forall_count(tags) == 1
        assert VertexRkNNTIndex.exists_ids(tags) == {1, 2, 3}

    def test_counts_of_empty(self):
        assert VertexRkNNTIndex.exists_count([]) == 0
        assert VertexRkNNTIndex.forall_count([]) == 0
        assert VertexRkNNTIndex.exists_ids([]) == frozenset()
