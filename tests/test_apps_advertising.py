"""Tests for the bus advertisement recommendation application."""

import pytest

from repro.apps.advertising import Advertisement, AdvertisingRecommender
from repro.core.rknnt import RkNNTProcessor


@pytest.fixture
def recommender(toy_routes, toy_transitions):
    processor = RkNNTProcessor(toy_routes, toy_transitions)
    profiles = {
        0: {"sports", "music"},
        1: {"music"},
        2: {"food"},
        3: {"sports"},
        4: {"tech", "music"},
        5: {"food"},
    }
    return AdvertisingRecommender(processor, profiles, k=2)


@pytest.fixture
def ads():
    return [
        Advertisement("sports-shoes", frozenset({"sports"})),
        Advertisement("concert", frozenset({"music"})),
        Advertisement("restaurant", frozenset({"food"})),
        Advertisement("gadget", frozenset({"tech"}), value_per_passenger=2.0),
    ]


class TestAdvertisement:
    def test_appeals_to(self):
        ad = Advertisement("a", frozenset({"music", "tech"}))
        assert ad.appeals_to({"music"})
        assert not ad.appeals_to({"food"})
        assert not ad.appeals_to(set())


class TestAudience:
    def test_audience_matches_rknnt(self, recommender, toy_routes, toy_transitions):
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        audience = recommender.audience(query)
        direct = recommender.processor.query(query, 2)
        assert audience == direct.transition_ids

    def test_audience_interest_histogram(self, recommender):
        histogram = recommender.audience_interests({0, 1, 4})
        assert histogram["music"] == 3
        assert histogram["sports"] == 1
        assert histogram["tech"] == 1

    def test_unknown_passengers_have_no_interests(self, recommender):
        assert recommender.audience_interests({999}) == {}

    def test_invalid_k(self, toy_routes, toy_transitions):
        processor = RkNNTProcessor(toy_routes, toy_transitions)
        with pytest.raises(ValueError):
            AdvertisingRecommender(processor, {}, k=0)


class TestRecommendation:
    def test_greedy_selection_maximises_coverage(self, recommender, ads):
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        placements = recommender.recommend(query, ads, max_ads=2)
        assert 1 <= len(placements) <= 2
        audience = recommender.audience(query)
        covered = recommender.coverage(placements)
        assert covered <= audience
        # Greedy picks at least as much as the best single ad.
        best_single = max(
            len(
                {
                    tid
                    for tid in audience
                    if ad.appeals_to(recommender.profiles.get(tid, frozenset()))
                }
            )
            for ad in ads
        )
        assert len(covered) >= best_single

    def test_selection_stops_when_nothing_new(self, recommender, ads):
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        placements = recommender.recommend(query, ads, max_ads=10)
        # No two placements are needed for the same passengers only.
        seen = set()
        for placement in placements:
            new = placement.reached_transition_ids - seen
            assert new, "a selected ad reaches no new passenger"
            seen |= placement.reached_transition_ids

    def test_placement_value_uses_ad_value(self, recommender, ads):
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        placements = recommender.recommend(query, ads, max_ads=4)
        for placement in placements:
            assert placement.value == pytest.approx(
                placement.reach * placement.advertisement.value_per_passenger
            )

    def test_invalid_max_ads(self, recommender, ads):
        with pytest.raises(ValueError):
            recommender.recommend([(0.0, 2.0)], ads, max_ads=0)

    def test_no_ads_returns_empty(self, recommender):
        assert recommender.recommend([(0.0, 2.0)], [], max_ads=3) == []

    def test_route_object_query(self, recommender, toy_routes):
        placements = recommender.recommend(toy_routes.get(1), [
            Advertisement("concert", frozenset({"music"}))
        ])
        assert isinstance(placements, list)
