"""Tests for the benchmark support package (parameters, harness, reporting)."""

import os

import pytest

from repro.bench.harness import (
    METHOD_LABELS,
    MethodTiming,
    SweepResult,
    build_benchmark_city,
    sweep_parameter,
    time_rknnt_methods,
)
from repro.bench.heatmap import DENSITY_RAMP, density_grid, format_density_grid
from repro.bench.parameters import (
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    K_VALUES,
    QUERY_LENGTH_VALUES,
    BenchmarkScale,
    get_scale,
)
from repro.bench.reporting import (
    format_histogram,
    format_series,
    format_table,
    summarize_distribution,
)
from repro.core.rknnt import FILTER_REFINE, METHODS, VORONOI


class TestParameters:
    def test_defaults_are_in_grids(self):
        assert DEFAULT_K in K_VALUES
        assert DEFAULT_QUERY_LENGTH in QUERY_LENGTH_VALUES

    def test_get_scale_known_names(self):
        for name in ("smoke", "small", "full"):
            scale = get_scale(name)
            assert isinstance(scale, BenchmarkScale)
            assert scale.name == name

    def test_get_scale_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert get_scale().name == "small"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert get_scale().name == "smoke"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_scales_are_ordered(self):
        assert (
            get_scale("smoke").queries_per_point
            <= get_scale("small").queries_per_point
            <= get_scale("full").queries_per_point
        )


class TestHarness:
    @pytest.fixture(scope="class")
    def bench_bundle(self):
        return build_benchmark_city("mini", get_scale("smoke"))

    def test_build_benchmark_city(self, bench_bundle):
        city, transitions, processor, workload = bench_bundle
        assert len(city.routes) > 0
        assert len(transitions) > 0
        assert processor.routes is city.routes

    def test_time_rknnt_methods(self, bench_bundle):
        _, _, processor, workload = bench_bundle
        queries = workload.query_routes(2, 3, 1.0)
        timings = time_rknnt_methods(processor, queries, k=2)
        assert [t.method for t in timings] == list(METHODS)
        for timing in timings:
            assert timing.total_seconds >= 0.0
            assert timing.label in METHOD_LABELS.values()
            row = timing.as_row()
            assert set(row) == {
                "method",
                "total_s",
                "filter_s",
                "verify_s",
                "candidates",
                "avg_results",
            }

    def test_methods_return_same_result_sizes(self, bench_bundle):
        _, _, processor, workload = bench_bundle
        queries = workload.query_routes(2, 3, 1.0)
        timings = time_rknnt_methods(processor, queries, k=2)
        sizes = {round(t.result_size, 6) for t in timings}
        assert len(sizes) == 1

    def test_sweep_parameter_k(self, bench_bundle):
        _, _, processor, workload = bench_bundle
        sweep = sweep_parameter(
            processor,
            workload,
            parameter="k",
            values=[1, 4],
            queries_per_value=1,
            k=2,
            query_length=3,
            interval=1.0,
            methods=(FILTER_REFINE, VORONOI),
        )
        assert sweep.values == [1, 4]
        rows = sweep.rows()
        assert len(rows) == 4  # two values × two methods
        series = sweep.series(FILTER_REFINE)
        assert [value for value, _ in series] == [1, 4]

    def test_sweep_parameter_validation(self, bench_bundle):
        _, _, processor, workload = bench_bundle
        with pytest.raises(ValueError):
            sweep_parameter(
                processor,
                workload,
                parameter="walk_radius",
                values=[1],
                queries_per_value=1,
                k=1,
                query_length=3,
                interval=1.0,
            )


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"k": 1, "time": 0.5},
            {"k": 10, "time": 12.25},
        ]
        text = format_table(rows, title="Figure 9")
        lines = text.splitlines()
        assert lines[0] == "Figure 9"
        assert "k" in lines[1] and "time" in lines[1]
        assert len(lines) == 2 + 2 + 1  # title + header + separator + rows

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        series = {"FR": [(1, 0.1), (5, 0.5)], "VO": [(1, 0.05), (5, 0.2)]}
        text = format_series(series, x_label="k", y_label="s")
        assert "FR s" in text and "VO s" in text
        assert text.count("\n") >= 3

    def test_format_histogram_bins(self):
        text = format_histogram([1, 1, 2, 3, 10], bins=3, title="dist")
        assert text.startswith("dist")
        assert text.count("\n") == 3
        assert "#" in text

    def test_format_histogram_empty_and_constant(self):
        assert "(no values)" in format_histogram([])
        assert "≈" in format_histogram([2.0, 2.0, 2.0])

    def test_summarize_distribution(self):
        summary = summarize_distribution([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["median"] == pytest.approx(2.5)
        assert summarize_distribution([]) == {"count": 0}


class TestHeatmap:
    def test_density_grid_counts_all_points(self):
        points = [(0.1, 0.1), (0.9, 0.9), (0.5, 0.5), (2.0, 2.0)]  # last is clamped
        grid = density_grid(points, bounds=(0, 0, 1, 1), rows=2, columns=2)
        assert sum(sum(row) for row in grid) == 4

    def test_density_grid_validation(self):
        with pytest.raises(ValueError):
            density_grid([], bounds=(0, 0, 1, 1), rows=0, columns=5)
        with pytest.raises(ValueError):
            density_grid([], bounds=(1, 1, 0, 0))

    def test_format_density_grid(self):
        grid = [[0, 1], [5, 0]]
        text = format_density_grid(grid, title="routes")
        lines = text.splitlines()
        assert lines[0] == "routes"
        assert len(lines) == 3
        assert any(ch in DENSITY_RAMP[1:] for ch in "".join(lines[1:]))

    def test_format_empty_grid(self):
        assert "(no points)" in format_density_grid([[0, 0], [0, 0]])
