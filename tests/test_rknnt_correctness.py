"""End-to-end correctness of the RkNNT framework against the brute force oracle.

These are the most important tests in the suite: every optimised evaluation
strategy (filter-refine, Voronoi, divide & conquer) must return exactly the
same transitions as the exhaustive per-endpoint kNN check, for both the ∃ and
∀ semantics, across hand-built and generated datasets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import (
    DIVIDE_CONQUER,
    FILTER_REFINE,
    METHODS,
    RkNNTProcessor,
    VORONOI,
    rknnt_query,
)
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

coord = st.floats(min_value=-2, max_value=12, allow_nan=False, allow_infinity=False)
query_strategy = st.lists(st.tuples(coord, coord), min_size=1, max_size=6)


class TestToyScenario:
    """Hand-checkable answers on the toy city (three parallel routes)."""

    def test_query_along_route0_attracts_its_riders(self, toy_processor):
        # A query overlapping route 0 exactly: transitions hugging route 0
        # tie with it and (ties favour the query) are returned for k=1.
        query = [(0.0, 0.0), (4.0, 0.0), (8.0, 0.0)]
        result = toy_processor.query(query, k=1)
        assert 0 in result
        assert 2 not in result
        assert 5 not in result

    def test_query_midway_between_routes(self, toy_processor):
        # Halfway between routes 0 and 1: closer to every endpoint of
        # transitions 0, 1 and 4 than any existing route for k=1? The
        # endpoints of transition 0 hug route 0 (distance < 1), while the
        # query is ~1.7+ away, so transition 0 must NOT be returned with k=1.
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        result_k1 = toy_processor.query(query, k=1)
        assert 0 not in result_k1
        # With k=2 the query only needs to beat all but one route.
        result_k2 = toy_processor.query(query, k=2)
        assert 0 in result_k2
        # Transition 4 sits on the crossover stop (4, 4) shared by routes 1
        # and 3, so two routes always beat the query; it appears at k=3.
        assert 4 not in result_k2
        assert 4 in toy_processor.query(query, k=3)

    def test_far_away_transition_never_matches_small_k(self, toy_processor):
        query = [(0.0, 2.0), (8.0, 2.0)]
        result = toy_processor.query(query, k=1)
        assert 5 not in result

    def test_far_away_transition_matches_when_k_covers_all_routes(
        self, toy_processor, toy_routes
    ):
        query = [(0.0, 2.0), (8.0, 2.0)]
        result = toy_processor.query(query, k=len(toy_routes))
        # With k = |DR| every transition takes every route (and the query).
        assert 5 in result

    def test_all_methods_agree_on_toy(self, toy_processor, toy_routes, toy_transitions):
        for k in (1, 2, 3, 4):
            for query in (
                [(0.0, 0.0), (8.0, 0.0)],
                [(4.0, -1.0)],
                [(0.0, 6.0), (8.0, 6.0)],
            ):
                oracle = rknnt_bruteforce(toy_routes, toy_transitions, query, k)
                for method in METHODS:
                    result = toy_processor.query(query, k, method=method)
                    assert result.transition_ids == oracle.transition_ids, (
                        method,
                        k,
                        query,
                    )


class TestSemanticsAgreement:
    def test_forall_subset_of_exists(self, toy_processor):
        query = [(0.0, 2.0), (8.0, 2.0)]
        exists = toy_processor.query(query, k=2, semantics="exists")
        forall = toy_processor.query(query, k=2, semantics="forall")
        assert forall.transition_ids <= exists.transition_ids

    def test_forall_matches_bruteforce(self, toy_processor, toy_routes, toy_transitions):
        query = [(0.0, 2.0), (4.0, 2.0), (8.0, 2.0)]
        for k in (1, 2, 3):
            oracle = rknnt_bruteforce(
                toy_routes, toy_transitions, query, k, semantics="forall"
            )
            for method in METHODS:
                result = toy_processor.query(query, k, method=method, semantics="forall")
                assert result.transition_ids == oracle.transition_ids

    def test_result_exposes_both_semantics(self, toy_processor):
        query = [(0.0, 2.0), (8.0, 2.0)]
        result = toy_processor.query(query, k=2, semantics="exists")
        assert result.forall_ids() <= result.exists_ids()
        assert result.exists_ids() == result.transition_ids


class TestMiniCityAgreement:
    """Cross-check the three methods on generated data."""

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_methods_match_bruteforce(self, mini_city_bundle, k):
        city, transitions, processor, workload = mini_city_bundle
        for query in workload.query_routes(3, 4, 1.5):
            oracle = rknnt_bruteforce(city.routes, transitions, query, k)
            for method in METHODS:
                result = processor.query(query, k, method=method)
                assert result.transition_ids == oracle.transition_ids, (method, k)

    def test_single_point_queries(self, mini_city_bundle):
        city, transitions, processor, workload = mini_city_bundle
        for query in workload.query_routes(3, 1, 1.0):
            oracle = rknnt_bruteforce(city.routes, transitions, query, 2)
            for method in METHODS:
                result = processor.query(query, 2, method=method)
                assert result.transition_ids == oracle.transition_ids

    @settings(max_examples=15, deadline=None)
    @given(query=query_strategy, k=st.integers(min_value=1, max_value=6))
    def test_property_random_queries(self, mini_city_bundle, query, k):
        city, transitions, processor, _ = mini_city_bundle
        oracle = rknnt_bruteforce(city.routes, transitions, query, k)
        for method in (FILTER_REFINE, VORONOI, DIVIDE_CONQUER):
            result = processor.query(query, k, method=method)
            assert result.transition_ids == oracle.transition_ids


class TestExistingRouteQueries:
    """The "real route query" workflow: the query is a route of the dataset."""

    def test_query_route_is_excluded_from_competition(self, toy_processor, toy_routes):
        route = toy_routes.get(0)
        result = toy_processor.query(route, k=1)
        # Route 0's own riders take it as their nearest route, so when it is
        # excluded from the index the query (same geometry) wins them.
        assert 0 in result

    def test_exclusion_matches_bruteforce(self, mini_city_bundle):
        city, transitions, processor, _ = mini_city_bundle
        route = next(iter(city.routes))
        oracle = rknnt_bruteforce(
            city.routes, transitions, route, 3, exclude_route_ids={route.route_id}
        )
        for method in METHODS:
            result = processor.query(route, 3, method=method)
            assert result.transition_ids == oracle.transition_ids


class TestEdgeCases:
    def test_empty_transition_set(self, toy_routes):
        processor = RkNNTProcessor(toy_routes, TransitionDataset())
        result = processor.query([(1.0, 1.0)], k=1)
        assert len(result) == 0

    def test_empty_route_set(self, toy_transitions):
        processor = RkNNTProcessor(RouteDataset(), toy_transitions)
        result = processor.query([(1.0, 1.0)], k=1)
        # With no competing routes, every transition takes the query.
        assert result.transition_ids == frozenset(toy_transitions.transition_ids)

    def test_unknown_method_rejected(self, toy_processor):
        with pytest.raises(ValueError):
            toy_processor.query([(0.0, 0.0)], k=1, method="magic")

    def test_unknown_semantics_rejected(self, toy_processor):
        with pytest.raises(ValueError):
            toy_processor.query([(0.0, 0.0)], k=1, semantics="most")

    def test_one_shot_helper(self, toy_routes, toy_transitions):
        result = rknnt_query(toy_routes, toy_transitions, [(4.0, 2.0)], k=2)
        oracle = rknnt_bruteforce(toy_routes, toy_transitions, [(4.0, 2.0)], 2)
        assert result.transition_ids == oracle.transition_ids

    def test_duplicate_query_points(self, toy_processor, toy_routes, toy_transitions):
        query = [(4.0, 2.0), (4.0, 2.0), (4.0, 2.0)]
        oracle = rknnt_bruteforce(toy_routes, toy_transitions, query, 2)
        for method in METHODS:
            assert (
                toy_processor.query(query, 2, method=method).transition_ids
                == oracle.transition_ids
            )

    def test_k_larger_than_route_count(self, toy_processor, toy_routes, toy_transitions):
        query = [(100.0, 100.0)]
        k = len(toy_routes) + 5
        oracle = rknnt_bruteforce(toy_routes, toy_transitions, query, k)
        result = toy_processor.query(query, k)
        assert result.transition_ids == oracle.transition_ids
        assert result.transition_ids == frozenset(toy_transitions.transition_ids)
