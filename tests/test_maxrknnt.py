"""Tests for MaxRkNNT / MinRkNNT planning (Algorithm 6 and the baselines)."""

import math

import pytest

from repro.core.rknnt import RkNNTProcessor
from repro.planning.bruteforce import maxrknnt_bruteforce, maxrknnt_pre
from repro.planning.graph import BusNetwork
from repro.planning.maxrknnt import (
    DOMINANCE_LEMMA4,
    DOMINANCE_SUBSET,
    MAXIMIZE,
    MINIMIZE,
    MaxRkNNTPlanner,
    PlannedRoute,
)
from repro.planning.precompute import VertexRkNNTIndex
from repro.planning.shortest_path import enumerate_paths_within_distance


@pytest.fixture(scope="module")
def planning_setup(request):
    """Mini-city planning fixture: network, processor, vertex index, planner."""
    from repro.data.workloads import make_city

    city, transitions = make_city("mini")
    processor = RkNNTProcessor(city.routes, transitions)
    network = city.network
    vertex_index = VertexRkNNTIndex(network, processor, k=3)
    vertex_index.build()
    planner = MaxRkNNTPlanner(network, vertex_index)
    return city, transitions, processor, network, vertex_index, planner


def pick_query(network, vertex_index, min_distance=3.0, max_distance=8.0):
    """A (start, end, tau) triple with a reachable pair of vertices."""
    vertices = sorted(network.vertices())
    for start in vertices:
        for end in reversed(vertices):
            if start == end:
                continue
            distance = vertex_index.shortest_distance(start, end)
            if min_distance <= distance <= max_distance:
                return start, end, distance * 1.3
    raise RuntimeError("no suitable planning query found in the fixture network")


class TestPlannerBasics:
    def test_returns_feasible_route(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        route = planner.plan(start, end, tau)
        assert route is not None
        assert route.vertices[0] == start
        assert route.vertices[-1] == end
        assert route.travel_distance <= tau + 1e-9
        assert len(route.vertices) == len(set(route.vertices))
        assert route.travel_distance == pytest.approx(
            network.path_distance(route.vertices)
        )

    def test_unreachable_within_budget_returns_none(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, _ = pick_query(network, vertex_index)
        shortest = vertex_index.shortest_distance(start, end)
        assert planner.plan(start, end, shortest * 0.5) is None

    def test_start_equals_destination(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        vertex = next(iter(network.vertices()))
        route = planner.plan(vertex, vertex, 1.0)
        assert route is not None
        assert route.vertices == (vertex,)
        assert route.travel_distance == 0.0

    def test_invalid_objective(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        with pytest.raises(ValueError):
            planner.plan(start, end, tau, objective="median")

    def test_unknown_vertex(self, planning_setup):
        _, _, _, _, _, planner = planning_setup
        with pytest.raises(KeyError):
            planner.plan(10**9, 0, 5.0)

    def test_planned_route_properties(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        route = planner.plan(start, end, tau)
        assert route.passengers == len(route.transition_ids)
        assert route.stop_count == len(route.vertices)
        assert "PlannedRoute" in repr(route)
        assert route.stats.expansions > 0
        assert route.stats.seconds >= 0.0
        assert isinstance(route.stats.as_dict(), dict)


class TestOptimality:
    def test_max_matches_exhaustive_without_dominance(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        best = None
        for distance, path in enumerate_paths_within_distance(network, start, end, tau):
            count = len(
                VertexRkNNTIndex.exists_ids(vertex_index.route_endpoints(path))
            )
            if best is None or count > best:
                best = count
        planned = planner.plan(start, end, tau, use_dominance=False)
        assert planned is not None
        assert planned.passengers == best

    def test_min_matches_exhaustive_without_dominance(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        best = None
        for distance, path in enumerate_paths_within_distance(network, start, end, tau):
            count = len(
                VertexRkNNTIndex.exists_ids(vertex_index.route_endpoints(path))
            )
            if best is None or count < best:
                best = count
        planned = planner.plan(start, end, tau, objective=MINIMIZE, use_dominance=False)
        assert planned is not None
        assert planned.passengers == best

    def test_dominance_result_is_feasible_and_not_better_than_optimum(
        self, planning_setup
    ):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        optimum = planner.plan(start, end, tau, use_dominance=False)
        for mode in (DOMINANCE_SUBSET, DOMINANCE_LEMMA4):
            pruned = planner.plan(start, end, tau, dominance_mode=mode)
            assert pruned is not None
            assert pruned.travel_distance <= tau + 1e-9
            assert pruned.passengers <= optimum.passengers

    def test_subset_dominance_matches_optimum_on_fixture(self, planning_setup):
        # On this fixture the sound subset rule should not lose the optimum.
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        optimum = planner.plan(start, end, tau, use_dominance=False)
        pruned = planner.plan(start, end, tau, dominance_mode=DOMINANCE_SUBSET)
        assert pruned.passengers == optimum.passengers

    def test_min_le_max(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        maximum = planner.plan(start, end, tau, objective=MAXIMIZE)
        minimum = planner.plan(start, end, tau, objective=MINIMIZE)
        assert minimum.passengers <= maximum.passengers

    def test_larger_budget_never_hurts_max(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        small = planner.plan(start, end, tau, use_dominance=False)
        large = planner.plan(start, end, tau * 1.2, use_dominance=False)
        assert large.passengers >= small.passengers


class TestBaselinesAgree:
    def test_bf_pre_and_planner_agree_on_max(self, planning_setup):
        city, transitions, processor, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        bf = maxrknnt_bruteforce(network, processor, start, end, tau, k=3)
        pre = maxrknnt_pre(network, vertex_index, start, end, tau)
        planned = planner.plan(start, end, tau, use_dominance=False)
        assert bf is not None and pre is not None and planned is not None
        assert bf.passengers == pre.passengers == planned.passengers

    def test_bf_pre_agree_on_min(self, planning_setup):
        city, transitions, processor, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        bf = maxrknnt_bruteforce(
            network, processor, start, end, tau, k=3, objective=MINIMIZE
        )
        pre = maxrknnt_pre(network, vertex_index, start, end, tau, objective=MINIMIZE)
        planned = planner.plan(start, end, tau, objective=MINIMIZE, use_dominance=False)
        assert bf.passengers == pre.passengers == planned.passengers

    def test_infeasible_budget_returns_none_everywhere(self, planning_setup):
        city, transitions, processor, network, vertex_index, planner = planning_setup
        start, end, _ = pick_query(network, vertex_index)
        tiny = vertex_index.shortest_distance(start, end) * 0.1
        assert maxrknnt_bruteforce(network, processor, start, end, tiny, k=3) is None
        assert maxrknnt_pre(network, vertex_index, start, end, tiny) is None
        assert planner.plan(start, end, tiny) is None

    def test_invalid_objective_rejected(self, planning_setup):
        city, transitions, processor, network, vertex_index, _ = planning_setup
        with pytest.raises(ValueError):
            maxrknnt_bruteforce(network, processor, 0, 1, 5.0, k=3, objective="avg")
        with pytest.raises(ValueError):
            maxrknnt_pre(network, vertex_index, 0, 1, 5.0, objective="avg")


class TestPruningStatistics:
    def test_reachability_pruning_reduces_expansions(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        with_pruning = planner.plan(start, end, tau, use_dominance=False)
        without_pruning = planner.plan(
            start, end, tau, use_dominance=False, use_reachability=False
        )
        assert with_pruning.passengers == without_pruning.passengers
        assert with_pruning.stats.expansions <= without_pruning.stats.expansions

    def test_dominance_counter_incremented_when_used(self, planning_setup):
        _, _, _, network, vertex_index, planner = planning_setup
        start, end, tau = pick_query(network, vertex_index)
        planned = planner.plan(start, end, tau)
        # The counter may legitimately be zero on tiny instances, but the
        # field must exist and be non-negative.
        assert planned.stats.pruned_by_dominance >= 0
        assert planned.stats.pruned_by_reachability >= 0
