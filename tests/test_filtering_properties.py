"""Property-based tests of the filter-refine engine's safety invariants.

The framework is only exact because its pruning rules are *safe*: a pruned
R-tree node or transition endpoint must never belong to the final answer.
These tests generate random datasets and queries with hypothesis and check
that safety directly against exhaustive distance computations, independently
of the end-to-end equivalence tests in test_rknnt_correctness.py.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import FilterRefineEngine
from repro.core.knn import count_routes_within_sq, query_distance_sq
from repro.geometry.bbox import BoundingBox
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

# Coordinates are full-precision float64 draws.  The framework's predicates
# mix the linear half-plane corner test (filtering) with squared-distance
# comparisons (verification, oracle); the two are algebraically equivalent
# but can round to different sides of a *tie*, and subnormal coordinates
# (hypothesis happily draws 5e-324) make the squared/product terms
# underflow to 0.0, turning true orderings into exact squared-space ties.
# The oracles below therefore compare in the same squared space as the
# engine and skip squared-space near-ties (``squared_near_tie``), instead
# of dodging the issue by narrowing the strategies to float32 as PR 3 did.
coord = st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


def squared_near_tie(d2_a, d2_b):
    """True when two squared distances are close enough that differently
    rounded expressions of the same comparison may disagree."""
    return abs(d2_a - d2_b) <= 1e-9 * (1.0 + d2_a + d2_b)


@st.composite
def random_scenario(draw):
    """A small random (routes, transitions, query, k) scenario."""
    route_count = draw(st.integers(min_value=2, max_value=6))
    routes = RouteDataset()
    for route_id in range(route_count):
        points = draw(st.lists(point, min_size=2, max_size=6))
        routes.add(Route(route_id, points))
    transition_count = draw(st.integers(min_value=1, max_value=12))
    transitions = TransitionDataset()
    for transition_id in range(transition_count):
        origin = draw(point)
        destination = draw(point)
        transitions.add(Transition(transition_id, origin, destination))
    query = draw(st.lists(point, min_size=1, max_size=4))
    k = draw(st.integers(min_value=1, max_value=route_count))
    return routes, transitions, query, k


@settings(max_examples=40, deadline=None)
@given(scenario=random_scenario())
def test_is_filtered_never_prunes_a_result_endpoint(scenario):
    """Safety: a pruned (degenerate) node contains no answer endpoint."""
    routes, transitions, query, k = scenario
    route_index = RouteIndex(routes, max_entries=4)
    transition_index = TransitionIndex(transitions, max_entries=4)
    engine = FilterRefineEngine(route_index, transition_index, k)
    engine.filter_routes([tuple(q) for q in query])

    for transition in transitions:
        for endpoint in transition.points:
            box = BoundingBox.from_point(endpoint)
            if engine.is_filtered(box, query):
                # The endpoint must have at least k routes strictly closer
                # than the query, i.e. it cannot be part of the answer.
                threshold_sq = query_distance_sq(endpoint, query)
                distances_sq = [
                    route.squared_distance_to_point(endpoint) for route in routes
                ]
                if any(squared_near_tie(d2, threshold_sq) for d2 in distances_sq):
                    # Geometric tie: different floating-point expressions
                    # of the same comparison may disagree.
                    continue
                closer = count_routes_within_sq(route_index, endpoint, threshold_sq)
                assert closer >= k


@settings(max_examples=30, deadline=None)
@given(scenario=random_scenario())
def test_candidates_plus_pruned_cover_all_endpoints_in_answers(scenario):
    """Completeness: every answer endpoint survives pruning as a candidate."""
    routes, transitions, query, k = scenario
    route_index = RouteIndex(routes, max_entries=4)
    transition_index = TransitionIndex(transitions, max_entries=4)
    engine = FilterRefineEngine(route_index, transition_index, k, use_voronoi=True)
    normalised_query = [tuple(q) for q in query]
    engine.filter_routes(normalised_query)
    candidates = engine.prune_transitions(normalised_query)
    candidate_keys = {(tag.transition_id, tag.endpoint) for _, tag in candidates}

    for transition in transitions:
        for label, endpoint in (("o", transition.origin), ("d", transition.destination)):
            threshold_sq = query_distance_sq(endpoint, normalised_query)
            distances_sq = [
                route.squared_distance_to_point(endpoint) for route in routes
            ]
            if any(squared_near_tie(d2, threshold_sq) for d2 in distances_sq):
                # Geometric tie — see the note in the test above.
                continue
            closer = count_routes_within_sq(route_index, endpoint, threshold_sq)
            if closer < k:
                assert (transition.transition_id, label) in candidate_keys


@settings(max_examples=30, deadline=None)
@given(scenario=random_scenario())
def test_verification_confirms_exactly_the_true_endpoints(scenario):
    """The verify step equals the per-endpoint brute-force predicate."""
    routes, transitions, query, k = scenario
    route_index = RouteIndex(routes, max_entries=4)
    transition_index = TransitionIndex(transitions, max_entries=4)
    engine = FilterRefineEngine(route_index, transition_index, k)
    normalised_query = [tuple(q) for q in query]
    confirmed = engine.run(normalised_query)

    for transition in transitions:
        for label, endpoint in (("o", transition.origin), ("d", transition.destination)):
            threshold_sq = query_distance_sq(endpoint, normalised_query)
            distances_sq = [
                route.squared_distance_to_point(endpoint) for route in routes
            ]
            if any(squared_near_tie(d2, threshold_sq) for d2 in distances_sq):
                # Geometric tie between a route and the query: the engine
                # and this re-computation use different (equally valid)
                # floating-point expressions, so skip the comparison.
                continue
            closer = sum(1 for d2 in distances_sq if d2 < threshold_sq)
            engine_says_yes = label in confirmed.get(transition.transition_id, set())
            assert engine_says_yes == (closer < k)


@settings(max_examples=25, deadline=None)
@given(scenario=random_scenario(), seed=st.integers(min_value=0, max_value=10_000))
def test_dynamic_insertions_preserve_exactness(scenario, seed):
    """After random insert/remove churn the engine still matches brute force."""
    from repro.core.baseline import rknnt_bruteforce
    from repro.core.rknnt import RkNNTProcessor

    routes, transitions, query, k = scenario
    processor = RkNNTProcessor(routes, transitions)
    rng = random.Random(seed)

    # Random churn: add a few transitions, remove a few existing ones.
    next_id = transitions.next_id()
    for offset in range(rng.randint(1, 4)):
        processor.add_transition(
            Transition(
                next_id + offset,
                (rng.uniform(0, 20), rng.uniform(0, 20)),
                (rng.uniform(0, 20), rng.uniform(0, 20)),
            )
        )
    existing = list(transitions.transition_ids)
    for transition_id in rng.sample(existing, min(2, len(existing))):
        processor.remove_transition(transition_id)

    oracle = rknnt_bruteforce(routes, transitions, query, k)
    result = processor.query(query, k, method="voronoi")
    assert result.transition_ids == oracle.transition_ids


# ----------------------------------------------------------------------
# The locality engine's δ-margin translation bound
# ----------------------------------------------------------------------
@st.composite
def margin_scenario(draw):
    """A pilot query, an arbitrary neighbour query, a filter point, a probe.

    The neighbour is *not* constrained to be near the pilot: the margin
    bound must hold for any Q′ once δ is the directed Hausdorff distance
    from Q′ to the pilot, so drawing Q′ freely tests the bound over the
    whole δ range instead of just small perturbations.
    """
    pilot = draw(st.lists(point, min_size=1, max_size=4))
    neighbour = draw(st.lists(point, min_size=1, max_size=4))
    filter_point = draw(point)
    probe = draw(point)
    return pilot, neighbour, filter_point, probe


@settings(max_examples=200, deadline=None)
@given(scenario=margin_scenario())
def test_margin_domination_is_safe_for_translated_queries(scenario):
    """Safety of filter-set reuse: a probe dominated under the pilot's
    δ-margin test lies inside the *exact* filtering space of every query
    within directed Hausdorff distance δ of the pilot — the margin never
    prunes a point the neighbour's own filter would keep."""
    from repro.engine.locality import _directed_hausdorff, _inflate_delta
    from repro.geometry.halfspace import (
        filtering_space_contains_point,
        margin_dominates_point,
    )

    pilot, neighbour, filter_point, probe = scenario
    delta = _inflate_delta(_directed_hausdorff(neighbour, pilot))
    if margin_dominates_point(probe, filter_point, pilot, delta):
        assert filtering_space_contains_point(probe, filter_point, neighbour)


@settings(max_examples=200, deadline=None)
@given(scenario=margin_scenario(), corner=point)
def test_margin_domination_is_safe_for_whole_boxes(scenario, corner):
    """Box version of the translation bound, as used on TR-tree nodes."""
    from repro.engine.locality import _directed_hausdorff, _inflate_delta
    from repro.geometry.halfspace import (
        filtering_space_contains_bbox,
        margin_dominates_bbox,
    )

    pilot, neighbour, filter_point, probe = scenario
    box = BoundingBox(
        min(probe[0], corner[0]),
        min(probe[1], corner[1]),
        max(probe[0], corner[0]),
        max(probe[1], corner[1]),
    )
    delta = _inflate_delta(_directed_hausdorff(neighbour, pilot))
    if margin_dominates_bbox(box, filter_point, pilot, delta):
        assert filtering_space_contains_bbox(box, filter_point, neighbour)
