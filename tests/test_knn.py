"""Tests for the point → k-nearest-routes primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import knn_of_point_bruteforce
from repro.core.knn import (
    count_routes_within,
    k_nearest_routes,
    point_takes_query_as_knn,
    query_distance,
)
from repro.index.route_index import RouteIndex
from repro.model.dataset import RouteDataset
from repro.model.route import Route

coord = st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)


class TestQueryDistance:
    def test_minimum_over_query_points(self):
        assert query_distance((0, 0), [(3, 4), (1, 0)]) == pytest.approx(1.0)

    def test_single_point(self):
        assert query_distance((0, 0), [(0, 2)]) == pytest.approx(2.0)


class TestKNearestRoutes:
    def test_toy_ranking(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        ranked = k_nearest_routes(index, (1.0, 0.5), 4)
        ids = [route_id for _, route_id in ranked]
        # Route 0 (y=0) is nearest, then route 3 and 1, route 2 is farthest.
        assert ids[0] == 0
        assert ids[-1] == 2
        distances = [d for d, _ in ranked]
        assert distances == sorted(distances)

    def test_matches_bruteforce(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        for point in [(1, 1), (4, 3), (7, 7), (-2, 5), (4.0, 2.0)]:
            for k in (1, 2, 3, 4):
                fast = k_nearest_routes(index, point, k)
                slow = knn_of_point_bruteforce(toy_routes, point, k)
                assert [r for _, r in fast] == [r for _, r in slow]
                for (fd, _), (sd, _) in zip(fast, slow):
                    assert fd == pytest.approx(sd)

    def test_k_larger_than_route_count(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        assert len(k_nearest_routes(index, (0, 0), 10)) == len(toy_routes)

    def test_invalid_k(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        with pytest.raises(ValueError):
            k_nearest_routes(index, (0, 0), 0)
        with pytest.raises(ValueError):
            knn_of_point_bruteforce(toy_routes, (0, 0), 0)

    @settings(max_examples=30, deadline=None)
    @given(px=coord, py=coord, k=st.integers(min_value=1, max_value=4))
    def test_property_matches_bruteforce_on_mini_city(
        self, mini_city, px, py, k
    ):
        index = RouteIndex(mini_city.routes, max_entries=8)
        fast = k_nearest_routes(index, (px, py), k)
        slow = knn_of_point_bruteforce(mini_city.routes, (px, py), k)
        assert [d for d, _ in fast] == pytest.approx([d for d, _ in slow])


class TestCountRoutesWithin:
    def test_counts_strictly_closer_routes(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        point = (1.0, 0.5)
        # Point-route distances (minimum over route *points*):
        # route 0 ≈ 1.118, route 3 ≈ 3.04, route 1 ≈ 3.64, route 2 ≈ 7.57.
        assert count_routes_within(index, point, 1.0) == 0
        assert count_routes_within(index, point, 1.2) == 1
        assert count_routes_within(index, point, 3.5) == 2
        assert count_routes_within(index, point, 4.0) == 3
        assert count_routes_within(index, point, 100.0) == 4

    def test_threshold_is_exclusive(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        # Point exactly 2.0 away from route 0.
        assert count_routes_within(index, (0.0, 2.0), 2.0) in (0, 1)
        # The point is also exactly on route 3's point (4,2)?  No: x=0.
        # Distance to route 3 is 4.0, so only routes strictly closer than 2.0
        # count; route 0 is at exactly 2.0 -> excluded.
        assert count_routes_within(index, (0.0, 2.0), 2.0) == 0

    def test_stop_at_early_exit(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        count = count_routes_within(index, (4.0, 2.0), 100.0, stop_at=2)
        assert count >= 2

    def test_exclude_route_ids(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        point = (1.0, 0.5)
        assert count_routes_within(index, point, 1.2, exclude_route_ids={0}) == 0

    def test_empty_index(self):
        index = RouteIndex(RouteDataset())
        assert count_routes_within(index, (0, 0), 10.0) == 0

    @settings(max_examples=30, deadline=None)
    @given(px=coord, py=coord, threshold=st.floats(min_value=0.1, max_value=15))
    def test_property_matches_bruteforce(self, px, py, threshold):
        # The dataset is rebuilt per example (cheap) rather than taken from a
        # function-scoped fixture, which hypothesis would not reset.
        routes = RouteDataset(
            [
                Route(0, [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (6.0, 0.0), (8.0, 0.0)]),
                Route(1, [(0.0, 4.0), (2.0, 4.0), (4.0, 4.0), (6.0, 4.0), (8.0, 4.0)]),
                Route(2, [(0.0, 8.0), (2.0, 8.0), (4.0, 8.0), (6.0, 8.0), (8.0, 8.0)]),
                Route(3, [(4.0, 0.0), (4.0, 2.0), (4.0, 4.0)]),
            ]
        )
        index = RouteIndex(routes, max_entries=4)
        expected = sum(
            1 for route in routes if route.distance_to_point((px, py)) < threshold
        )
        assert count_routes_within(index, (px, py), threshold) == expected


class TestPointTakesQueryAsKnn:
    def test_near_query_wins(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        query = [(2.0, 2.0), (6.0, 2.0)]  # between routes 0 and 1, away from 3
        # A point right next to a query point takes the query as nearest.
        assert point_takes_query_as_knn(index, (2.0, 1.9), query, 1)

    def test_far_point_loses_for_small_k(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        query = [(0.0, 20.0), (8.0, 20.0)]  # far above every transition
        assert not point_takes_query_as_knn(index, (4.0, 0.0), query, 1)
        # All four routes are strictly closer, so the query only qualifies
        # once k exceeds the route count.
        assert not point_takes_query_as_knn(index, (4.0, 0.0), query, 4)
        assert point_takes_query_as_knn(index, (4.0, 0.0), query, 5)
