"""Block-expansion traversal and chunked route-matrix equivalence tests.

The block-expansion filter traversal must make *identical* decisions to the
node-at-a-time loop: same confirmed endpoints, same node visit counts, same
pruning counts, same filter set — per method and per backend.  Likewise the
chunked verification matrix must confirm exactly the same endpoints for any
block-row bound, and the block-expanding kNN traversals must agree with the
brute-force count.
"""

from dataclasses import replace

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.knn import count_routes_within, count_routes_within_sq
from repro.core.rknnt import METHODS, RkNNTProcessor
from repro.engine.context import (
    DEFAULT_MATRIX_BLOCK_ROWS,
    MATRIX_BLOCK_ROWS_ENV,
    matrix_block_rows,
)
from repro.engine.executor import run_stages
from repro.engine.plan import (
    TRAVERSAL_BLOCK,
    TRAVERSAL_ENV,
    TRAVERSAL_NODE,
    QueryPlan,
    default_filter_traversal,
)
from repro.geometry import kernels
from repro.geometry.bbox import BoundingBox
from repro.geometry.kernels import numpy_available
from repro.index.route_index import RouteIndex

K = 3
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

#: Traversal counters that must match exactly between the two styles.
TRAVERSAL_COUNTERS = (
    "route_nodes_visited",
    "transition_nodes_visited",
    "filter_points",
    "nodes_pruned",
    "candidates",
    "confirmed_points",
    "subqueries",
)


@pytest.fixture(scope="module")
def block_queries(mini_workload):
    queries = mini_workload.query_routes(5, length=4, interval=0.8)
    queries.append(queries[0][:1])
    return queries


class TestBlockTraversalEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_and_visit_counts_identical(
        self, mini_processor, block_queries, method, backend
    ):
        context = mini_processor.engine_context
        for query in block_queries:
            plan = QueryPlan.for_method(method, backend=backend).resolved()
            block_plan = replace(plan, filter_traversal=TRAVERSAL_BLOCK)
            node_plan = replace(plan, filter_traversal=TRAVERSAL_NODE)
            confirmed_block, stats_block = run_stages(
                context, query, K, block_plan
            )
            confirmed_node, stats_node = run_stages(context, query, K, node_plan)
            assert confirmed_block == confirmed_node
            for counter in TRAVERSAL_COUNTERS:
                assert getattr(stats_block, counter) == getattr(
                    stats_node, counter
                ), counter

    def test_traversal_env_override(self, monkeypatch):
        monkeypatch.setenv(TRAVERSAL_ENV, "node")
        assert default_filter_traversal() == TRAVERSAL_NODE
        assert (
            QueryPlan.for_method("voronoi").resolved().filter_traversal
            == TRAVERSAL_NODE
        )
        monkeypatch.setenv(TRAVERSAL_ENV, "block")
        assert default_filter_traversal() == TRAVERSAL_BLOCK
        monkeypatch.setenv(TRAVERSAL_ENV, "typo")
        assert default_filter_traversal() == TRAVERSAL_BLOCK
        monkeypatch.delenv(TRAVERSAL_ENV)
        assert default_filter_traversal() == TRAVERSAL_BLOCK

    def test_invalid_traversal_rejected(self):
        with pytest.raises(ValueError):
            replace(
                QueryPlan.for_method("voronoi"), filter_traversal="bogus"
            ).resolved()


class TestBlockKernels:
    def test_boxes_min_max_match_scalar_bbox(self, rng):
        boxes = []
        for _ in range(40):
            x0, y0 = rng.uniform(-10, 10), rng.uniform(-10, 10)
            boxes.append(
                (x0, y0, x0 + rng.uniform(0, 5), y0 + rng.uniform(0, 5))
            )
        boxes.append((1.0, 1.0, 1.0, 1.0))  # degenerate
        for _ in range(10):
            point = (rng.uniform(-12, 12), rng.uniform(-12, 12))
            mins, maxs = kernels.boxes_min_max_dist_sq_to_point(boxes, point)
            for box, got_min, got_max in zip(boxes, mins, maxs):
                bbox = BoundingBox(*box)
                assert got_min == bbox.min_dist_sq(point)
                assert got_max == bbox.max_dist_sq(point)

    def test_points_dist_sq_matches_scalar(self, rng):
        points = [(rng.uniform(-5, 5), rng.uniform(-5, 5)) for _ in range(25)]
        target = (0.5, -1.25)
        distances = kernels.points_dist_sq_to_point(points, target)
        for (x, y), got in zip(points, distances):
            dx, dy = x - target[0], y - target[1]
            assert got == dx * dx + dy * dy

    def test_empty_blocks(self):
        mins, maxs = kernels.boxes_min_max_dist_sq_to_point([], (0.0, 0.0))
        assert len(mins) == 0 and len(maxs) == 0
        assert len(kernels.points_dist_sq_to_point([], (0.0, 0.0))) == 0


class TestBlockKnnTraversal:
    def test_count_matches_bruteforce(self, mini_city, rng):
        index = RouteIndex(mini_city.routes, max_entries=8)
        for _ in range(25):
            point = (rng.uniform(-2, 12), rng.uniform(-2, 12))
            threshold = rng.uniform(0.2, 8.0)
            expected = sum(
                1
                for route in mini_city.routes
                if route.distance_to_point(point) < threshold
            )
            assert count_routes_within(index, point, threshold) == expected
            assert (
                count_routes_within_sq(index, point, threshold * threshold)
                == expected
            )

    def test_python_backend_never_touches_kernels(self, mini_city, monkeypatch):
        # The scalar verification path promises to stay off the numpy
        # machinery; make any kernel call explode to prove it does.
        def boom(*args, **kwargs):
            raise AssertionError("kernel touched on the python backend")

        monkeypatch.setattr(kernels, "points_dist_sq_to_point", boom)
        monkeypatch.setattr(kernels, "boxes_min_max_dist_sq_to_point", boom)
        index = RouteIndex(mini_city.routes, max_entries=8)
        point, threshold = (3.0, 3.0), 4.0
        expected = sum(
            1
            for route in mini_city.routes
            if route.distance_to_point(point) < threshold
        )
        assert (
            count_routes_within_sq(
                index, point, threshold * threshold, backend="python"
            )
            == expected
        )

    def test_stop_at_and_exclusions(self, mini_city):
        index = RouteIndex(mini_city.routes, max_entries=8)
        point = (5.0, 5.0)
        full = count_routes_within_sq(index, point, 100.0)
        assert full == len(mini_city.routes)
        capped = count_routes_within_sq(index, point, 100.0, stop_at=2)
        assert capped >= 2
        one_excluded = count_routes_within_sq(
            index,
            point,
            100.0,
            exclude_route_ids={next(iter(mini_city.routes)).route_id},
        )
        assert one_excluded == full - 1


class TestChunkedRouteMatrix:
    def test_block_rows_knob(self, monkeypatch):
        monkeypatch.delenv(MATRIX_BLOCK_ROWS_ENV, raising=False)
        assert matrix_block_rows() == DEFAULT_MATRIX_BLOCK_ROWS
        monkeypatch.setenv(MATRIX_BLOCK_ROWS_ENV, "64")
        assert matrix_block_rows() == 64
        monkeypatch.setenv(MATRIX_BLOCK_ROWS_ENV, "not-a-number")
        assert matrix_block_rows() == DEFAULT_MATRIX_BLOCK_ROWS
        monkeypatch.setenv(MATRIX_BLOCK_ROWS_ENV, "-5")
        assert matrix_block_rows() == DEFAULT_MATRIX_BLOCK_ROWS

    def test_blocks_cover_every_route_once(self, mini_city, mini_transitions, monkeypatch):
        monkeypatch.setenv(MATRIX_BLOCK_ROWS_ENV, "16")
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        matrix = processor.engine_context.route_matrix()
        assert len(matrix.blocks) > 1
        seen = [
            route_id
            for block in matrix.blocks
            for route_id in block.column_route_ids
        ]
        assert len(seen) == len(set(seen)) == matrix.route_count
        # No block exceeds the bound unless a single route alone does.
        for block in matrix.blocks:
            if block.route_count > 1:
                assert len(block.points) <= 16

    @pytest.mark.skipif(not numpy_available(), reason="numpy verification path")
    def test_chunked_answers_identical(
        self, mini_city, mini_transitions, block_queries, monkeypatch
    ):
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        baseline = processor.query_batch(block_queries, K, backend="numpy")
        monkeypatch.setenv(MATRIX_BLOCK_ROWS_ENV, "8")
        processor.engine_context.clear_caches()
        chunked = processor.query_batch(block_queries, K, backend="numpy")
        assert len(processor.engine_context.route_matrix().blocks) > 1
        for query, expected, actual in zip(block_queries, baseline, chunked):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints
            oracle = rknnt_bruteforce(
                mini_city.routes, mini_transitions, query, K
            )
            assert actual.transition_ids == oracle.transition_ids
