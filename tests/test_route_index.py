"""Tests for the RR-tree wrapper (RouteIndex)."""

import pytest

from repro.index.route_index import RouteIndex
from repro.model.dataset import RouteDataset
from repro.model.route import Route


class TestConstruction:
    def test_basic_properties(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        assert index.routes is toy_routes
        assert len(index.tree) == index.distinct_point_count()
        assert index.root is index.tree.root

    def test_empty_dataset(self):
        index = RouteIndex(RouteDataset())
        assert index.distinct_point_count() == 0
        assert index.root.bbox is None

    def test_exclude_route_ids(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4, exclude_route_ids={3})
        # Route 3's unique middle point (4, 2) is not indexed.
        assert index.crossover_routes((4.0, 2.0)) == frozenset()
        # Shared stops no longer mention route 3.
        assert index.crossover_routes((4.0, 0.0)) == {0}
        assert 3 not in index.routes_in_node(index.root)

    def test_route_points_lookup(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        assert index.route_points(3) == ((4.0, 0.0), (4.0, 2.0), (4.0, 4.0))


class TestDynamicUpdates:
    def test_add_route_new_points(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        before = index.distinct_point_count()
        new_route = Route(10, [(10.0, 10.0), (12.0, 10.0)])
        toy_routes.add(new_route)
        index.add_route(new_route)
        assert index.distinct_point_count() == before + 2
        assert index.crossover_routes((10.0, 10.0)) == {10}
        assert 10 in index.routes_in_node(index.root)

    def test_add_route_sharing_existing_stop(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        before = index.distinct_point_count()
        new_route = Route(11, [(4.0, 0.0), (9.0, -1.0)])
        toy_routes.add(new_route)
        index.add_route(new_route)
        # Only one brand-new location was added.
        assert index.distinct_point_count() == before + 1
        assert index.crossover_routes((4.0, 0.0)) == {0, 3, 11}

    def test_remove_route(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        route = toy_routes.get(3)
        index.remove_route(route)
        # Its exclusive point disappears; shared stops lose the id.
        assert index.crossover_routes((4.0, 2.0)) == frozenset()
        assert index.crossover_routes((4.0, 0.0)) == {0}
        assert 3 not in index.routes_in_node(index.root)

    def test_remove_then_add_round_trip(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        before = index.distinct_point_count()
        route = toy_routes.get(2)
        index.remove_route(route)
        assert index.distinct_point_count() == before - len(route)
        index.add_route(route)
        assert index.distinct_point_count() == before
        assert index.crossover_routes((0.0, 8.0)) == {2}

    def test_add_excluded_route_is_ignored(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4, exclude_route_ids={99})
        before = index.distinct_point_count()
        new_route = Route(99, [(50.0, 50.0), (51.0, 50.0)])
        index.add_route(new_route)
        assert index.distinct_point_count() == before


class TestQueriesAfterUpdates:
    def test_knn_reflects_added_route(self, toy_routes, toy_transitions):
        from repro.core.knn import k_nearest_routes

        index = RouteIndex(toy_routes, max_entries=4)
        far_point = (20.0, 20.0)
        before = k_nearest_routes(index, far_point, 1)
        new_route = Route(20, [(19.0, 20.0), (21.0, 20.0)])
        toy_routes.add(new_route)
        index.add_route(new_route)
        after = k_nearest_routes(index, far_point, 1)
        assert after[0][1] == 20
        assert after[0][0] < before[0][0]
