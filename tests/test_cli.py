"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.data.gtfs import save_routes_csv, save_transitions_csv


@pytest.fixture
def data_dir(tmp_path, toy_routes, toy_transitions):
    save_routes_csv(toy_routes, os.path.join(tmp_path, "routes.csv"))
    save_transitions_csv(toy_transitions, os.path.join(tmp_path, "transitions.csv"))
    return str(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--preset", "mini", "--output-dir", "/tmp/x", "--scale", "0.5"]
        )
        assert args.command == "generate"
        assert args.preset == "mini"
        assert args.scale == 0.5

    def test_query_points_accumulate(self):
        args = build_parser().parse_args(
            [
                "query",
                "--data-dir",
                "/tmp/x",
                "--point",
                "1",
                "2",
                "--point",
                "3",
                "4",
            ]
        )
        assert args.points == [[1.0, 2.0], [3.0, 4.0]]

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data-dir", "/tmp/x", "--point", "1", "2", "--method", "x"]
            )


class TestGenerate:
    def test_generate_writes_csv(self, tmp_path, capsys):
        output = os.path.join(tmp_path, "city")
        assert main(["generate", "--preset", "mini", "--output-dir", output]) == 0
        assert os.path.exists(os.path.join(output, "routes.csv"))
        assert os.path.exists(os.path.join(output, "transitions.csv"))
        out = capsys.readouterr().out
        assert "routes" in out and "transitions" in out


class TestQuery:
    def test_query_prints_results(self, data_dir, capsys):
        code = main(
            [
                "query",
                "--data-dir",
                data_dir,
                "--k",
                "2",
                "--point",
                "0",
                "2",
                "--point",
                "8",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RkNNT(" in out
        assert "transitions" in out

    def test_query_forall_semantics(self, data_dir, capsys):
        assert (
            main(
                [
                    "query",
                    "--data-dir",
                    data_dir,
                    "--k",
                    "4",
                    "--semantics",
                    "forall",
                    "--point",
                    "4",
                    "2",
                ]
            )
            == 0
        )
        assert "forall" in capsys.readouterr().out

    def test_batch_file_with_workers(self, data_dir, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("0 2 8 2\n4 2\n# comment\n\n1 0.5 7 0.5\n")
        assert (
            main(
                [
                    "query",
                    "--data-dir",
                    data_dir,
                    "--k",
                    "2",
                    "--batch-file",
                    str(batch),
                ]
            )
            == 0
        )
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    "--data-dir",
                    data_dir,
                    "--k",
                    "2",
                    "--batch-file",
                    str(batch),
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        sharded_out = capsys.readouterr().out
        assert "workers=2" in sharded_out
        # Same workload, same matched-transition total on both paths.
        matched = [
            line.split("total", 1)[1]
            for line in serial_out.splitlines()
            if "transitions matched" in line
        ]
        sharded_matched = [
            line.split("total", 1)[1]
            for line in sharded_out.splitlines()
            if "transitions matched" in line
        ]
        assert matched[0].split(",")[-1] == sharded_matched[0].split(",")[-1]

    def test_workers_require_batch_file(self, data_dir):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--data-dir",
                    data_dir,
                    "--point",
                    "0",
                    "2",
                    "--workers",
                    "2",
                ]
            )

    def test_missing_data_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--data-dir",
                    str(tmp_path),
                    "--point",
                    "0",
                    "0",
                ]
            )


class TestCapacity:
    def test_capacity_table(self, data_dir, capsys):
        assert main(["capacity", "--data-dir", data_dir, "--k", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "estimated demand" in out
        assert "riders_exists" in out


class TestPlan:
    def test_plan_between_connected_stops(self, data_dir, capsys):
        # Vertices 0 and 4 are the endpoints of route 0 in the toy network
        # (from_routes numbers stops in insertion order).
        code = main(
            [
                "plan",
                "--data-dir",
                data_dir,
                "--k",
                "2",
                "--start",
                "0",
                "--end",
                "4",
                "--ratio",
                "1.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "passengers" in out
        assert "stops:" in out

    def test_plan_unreachable_errors(self, data_dir):
        # Route 2 (y = 8) is disconnected from route 0 in the toy network.
        with pytest.raises(SystemExit):
            main(
                [
                    "plan",
                    "--data-dir",
                    data_dir,
                    "--start",
                    "0",
                    "--end",
                    "10",
                ]
            )

    def test_plan_unknown_vertex_errors(self, data_dir):
        with pytest.raises(SystemExit):
            main(
                ["plan", "--data-dir", data_dir, "--start", "0", "--end", "9999"]
            )


class TestServe:
    def _run(self, data_dir, stream_path, *extra):
        return main(
            ["serve", "--data-dir", data_dir, "--input", str(stream_path)]
            + list(extra)
        )

    def test_serve_answers_a_clean_stream(self, data_dir, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        stream.write_text("1.0 0.3 7.0 0.2\n1.0 4.2\n")
        assert self._run(data_dir, stream) == 0
        out = capsys.readouterr().out
        assert "served 2 queries" in out
        assert "rejected" not in out

    def test_malformed_lines_rejected_serving_continues(
        self, data_dir, tmp_path, capsys
    ):
        """Satellite 2: every malformed stream line — odd coordinates,
        non-numeric fields, duplicate insert, unknown delete — is rejected
        with a typed warning while the well-formed rest still serves."""
        stream = tmp_path / "stream.txt"
        stream.write_text(
            "1.0 0.3 7.0 0.2\n"      # good query
            "1.0 2.0 3.0\n"          # odd coordinate count
            "1.0 fast\n"             # non-numeric coordinate
            "+ 0 1.0 1.0 2.0 2.0\n"  # duplicate insert (id 0 exists)
            "- 424242\n"             # unknown delete
            "+ 9000 one 1.0 2.0 2.0\n"  # non-numeric update field
            "+ 9001 1.0 0.4 6.5 0.1\n"  # good insert
            "1.0 4.2\n"              # good query, post-update
        )
        assert self._run(data_dir, stream) == 0
        captured = capsys.readouterr()
        assert "served 2 queries" in captured.out
        assert "1 updates applied" in captured.out
        assert "rejected 5 malformed lines" in captured.out
        assert captured.err.count("rejected line") == 5
        assert "already present" in captured.err
        assert "not in dataset" in captured.err
        assert "non-numeric field" in captured.err
        assert "non-numeric coordinate" in captured.err
        assert "even number of coordinates" in captured.err

    def test_stream_of_only_garbage_is_an_error(self, data_dir, tmp_path):
        stream = tmp_path / "stream.txt"
        stream.write_text("nope\n@ bad op\n")
        with pytest.raises(SystemExit):
            self._run(data_dir, stream)

    def test_generous_deadline_serves_normally(self, data_dir, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        stream.write_text("1.0 0.3 7.0 0.2\n")
        assert self._run(data_dir, stream, "--deadline-ms", "60000") == 0
        out = capsys.readouterr().out
        assert "served 1 queries" in out
        assert "dropped" not in out

    def test_missed_deadline_drops_the_batch(self, data_dir, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        stream.write_text("1.0 0.3 7.0 0.2\n1.0 4.2\n")
        assert self._run(data_dir, stream, "--deadline-ms", "0.000001") == 0
        captured = capsys.readouterr()
        assert "served 0 queries" in captured.out
        assert "dropped 2 queries in 1 batches" in captured.out
        assert "queries dropped" in captured.err


class TestWatch:
    @pytest.fixture
    def update_log(self, tmp_path):
        path = tmp_path / "updates.log"
        path.write_text(
            "# replayed stream\n"
            "+ 9000 1.0 0.2 7.0 0.1   # hugs route 0\n"
            "+ 9001 50.0 50.0 60.0 60.0\n"
            "- 9000\n"
            "- 5\n"
        )
        return str(path)

    def test_watch_replays_and_verifies(self, data_dir, update_log, capsys):
        code = main(
            [
                "watch",
                "--data-dir",
                data_dir,
                "--k",
                "2",
                "--point",
                "1.0",
                "0.0",
                "--point",
                "7.0",
                "0.0",
                "--updates",
                update_log,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "watching RkNNT" in out
        assert "replayed 4 updates" in out
        assert "verified against a fresh query" in out
        # The transition hugging route 0 entered and left the result.
        assert "+9000" in out and "-9000" in out

    def test_watch_requires_updates_and_point(self, data_dir):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch", "--data-dir", data_dir])

    def test_watch_rejects_malformed_log(self, data_dir, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_text("+ 1 2 3\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "watch",
                    "--data-dir",
                    data_dir,
                    "--point",
                    "1.0",
                    "0.0",
                    "--updates",
                    str(bad),
                ]
            )

    def test_watch_rejects_unknown_delete(self, data_dir, tmp_path, capsys):
        # An unknown delete is rejected with a warning; the watch completes.
        bad = tmp_path / "bad.log"
        bad.write_text("- 424242\n")
        code = main(
            [
                "watch",
                "--data-dir",
                data_dir,
                "--point",
                "1.0",
                "0.0",
                "--updates",
                str(bad),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "rejected" in captured.err
        assert "424242" in captured.err
        assert "verified against a fresh query" in captured.out

    def test_watch_rejects_duplicate_insert(self, data_dir, tmp_path, capsys):
        bad = tmp_path / "bad.log"
        bad.write_text("+ 0 1.0 1.0 2.0 2.0\n")
        code = main(
            [
                "watch",
                "--data-dir",
                data_dir,
                "--point",
                "1.0",
                "0.0",
                "--updates",
                str(bad),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "rejected" in captured.err
        assert "already present" in captured.err
        assert "verified against a fresh query" in captured.out
