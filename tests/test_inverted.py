"""Tests for the PList / NList inverted indexes."""

import pytest

from repro.index.inverted import NodeList, PointList, point_key
from repro.index.rtree import RTree, RTreeEntry
from repro.index.route_index import RouteIndex
from repro.model.dataset import RouteDataset
from repro.model.route import Route


class TestPointKey:
    def test_normalises_to_floats(self):
        assert point_key((1, 2)) == (1.0, 2.0)
        assert point_key((1.5, -2.5)) == (1.5, -2.5)


class TestPointList:
    def test_add_and_lookup(self):
        plist = PointList()
        plist.add((1, 2), 10)
        plist.add((1, 2), 11)
        plist.add((3, 4), 10)
        assert plist.crossover_routes((1, 2)) == {10, 11}
        assert plist.crossover_degree((1, 2)) == 2
        assert plist.crossover_routes((3, 4)) == {10}
        assert len(plist) == 2

    def test_lookup_missing_point(self):
        plist = PointList()
        assert plist.crossover_routes((9, 9)) == frozenset()
        assert plist.crossover_degree((9, 9)) == 0
        assert (9, 9) not in plist

    def test_discard(self):
        plist = PointList()
        plist.add((0, 0), 1)
        plist.add((0, 0), 2)
        plist.discard((0, 0), 1)
        assert plist.crossover_routes((0, 0)) == {2}
        plist.discard((0, 0), 2)
        assert (0, 0) not in plist
        assert len(plist) == 0

    def test_discard_missing_is_noop(self):
        plist = PointList()
        plist.discard((0, 0), 1)
        assert len(plist) == 0

    def test_contains_and_iteration(self):
        plist = PointList()
        plist.add((0, 0), 1)
        plist.add((1, 1), 2)
        assert (0, 0) in plist
        assert set(plist.points()) == {(0.0, 0.0), (1.0, 1.0)}

    def test_crossover_set_is_immutable_snapshot(self):
        plist = PointList()
        plist.add((0, 0), 1)
        snapshot = plist.crossover_routes((0, 0))
        plist.add((0, 0), 2)
        assert snapshot == {1}


class TestNodeList:
    def _tree(self):
        entries = [
            RTreeEntry((float(i), float(i % 3)), frozenset({i % 4}))
            for i in range(40)
        ]
        return RTree.bulk_load(entries, max_entries=4, track_payload_union=True)

    def test_build_matches_payload_union(self):
        tree = self._tree()
        nlist = NodeList.build(tree.root)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert nlist.routes_in_node(node) == node.payload_union
            if not node.is_leaf:
                stack.extend(node.children)

    def test_root_contains_all_routes(self):
        tree = self._tree()
        nlist = NodeList.build(tree.root)
        assert nlist.routes_in_node(tree.root) == {0, 1, 2, 3}

    def test_unknown_node_falls_back_to_live_union(self):
        tree = self._tree()
        nlist = NodeList.build(tree.root)
        # Insert new entries: new/changed nodes are not in the prebuilt NList
        # but the fallback keeps answers consistent.
        tree.insert(RTreeEntry((100.0, 100.0), frozenset({9})))
        assert 9 in nlist.routes_in_node(tree.root) or 9 in tree.root.payload_union

    def test_len_counts_nodes(self):
        tree = self._tree()
        nlist = NodeList.build(tree.root)
        assert len(nlist) >= 1


class TestRouteIndexInvertedIntegration:
    def test_crossover_from_shared_stops(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        # (4, 0) and (4, 4) are shared between route 3 and routes 0 / 1.
        assert index.crossover_routes((4.0, 0.0)) == {0, 3}
        assert index.crossover_routes((4.0, 4.0)) == {1, 3}
        assert index.crossover_routes((0.0, 8.0)) == {2}

    def test_nlist_root_has_every_route(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        assert index.routes_in_node(index.root) == {0, 1, 2, 3}

    def test_distinct_point_count_excludes_duplicates(self, toy_routes):
        index = RouteIndex(toy_routes, max_entries=4)
        total_points = sum(len(r) for r in toy_routes)
        # Two stops are shared, so the RR-tree holds two fewer entries.
        assert index.distinct_point_count() == total_points - 2
