"""Shared fixtures for the test suite.

Two families of fixtures exist:

* tiny hand-built datasets (``toy_routes`` / ``toy_transitions``) whose
  correct answers can be worked out on paper and are asserted explicitly;
* a small generated city (``mini_city`` and friends, session-scoped because
  index construction is the expensive part) used for cross-checking the
  optimised algorithms against the brute-force oracle on less trivial data.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rknnt import RkNNTProcessor
from repro.data.workloads import QueryWorkload, make_city
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


# ----------------------------------------------------------------------
# Hand-built toy datasets
# ----------------------------------------------------------------------
@pytest.fixture
def toy_routes() -> RouteDataset:
    """Three horizontal bus routes at y = 0, 4 and 8 plus one vertical route.

    The vertical route (id 3) crosses route 0 at (4, 0) and route 1 at
    (4, 4), giving those stops crossover degree 2.
    """
    return RouteDataset(
        [
            Route(0, [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (6.0, 0.0), (8.0, 0.0)]),
            Route(1, [(0.0, 4.0), (2.0, 4.0), (4.0, 4.0), (6.0, 4.0), (8.0, 4.0)]),
            Route(2, [(0.0, 8.0), (2.0, 8.0), (4.0, 8.0), (6.0, 8.0), (8.0, 8.0)]),
            Route(3, [(4.0, 0.0), (4.0, 2.0), (4.0, 4.0)]),
        ]
    )


@pytest.fixture
def toy_transitions() -> TransitionDataset:
    """Six transitions spread over the toy city.

    * 0 — both endpoints hug route 0,
    * 1 — both endpoints hug route 1,
    * 2 — both endpoints hug route 2,
    * 3 — origin near route 0, destination near route 2,
    * 4 — both endpoints near the crossover stop (4, 4),
    * 5 — far away from every route (background noise).
    """
    return TransitionDataset(
        [
            Transition(0, (1.0, 0.3), (7.0, -0.2)),
            Transition(1, (1.0, 4.2), (7.0, 3.8)),
            Transition(2, (1.0, 8.3), (7.0, 7.8)),
            Transition(3, (2.0, 0.5), (6.0, 7.5)),
            Transition(4, (3.8, 4.3), (4.3, 3.7)),
            Transition(5, (20.0, 20.0), (22.0, 21.0)),
        ]
    )


@pytest.fixture
def toy_processor(toy_routes, toy_transitions) -> RkNNTProcessor:
    return RkNNTProcessor(toy_routes, toy_transitions)


@pytest.fixture
def toy_route_index(toy_routes) -> RouteIndex:
    return RouteIndex(toy_routes, max_entries=4)


@pytest.fixture
def toy_transition_index(toy_transitions) -> TransitionIndex:
    return TransitionIndex(toy_transitions, max_entries=4)


# ----------------------------------------------------------------------
# Generated mini city (session scoped — index construction dominates)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def mini_city_bundle():
    city, transitions = make_city("mini")
    processor = RkNNTProcessor(city.routes, transitions)
    workload = QueryWorkload(city, seed=99)
    return city, transitions, processor, workload


@pytest.fixture(scope="session")
def mini_city(mini_city_bundle):
    return mini_city_bundle[0]


@pytest.fixture(scope="session")
def mini_transitions(mini_city_bundle):
    return mini_city_bundle[1]


@pytest.fixture(scope="session")
def mini_processor(mini_city_bundle):
    return mini_city_bundle[2]


@pytest.fixture(scope="session")
def mini_workload(mini_city_bundle):
    return mini_city_bundle[3]


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------
@pytest.fixture
def rng() -> random.Random:
    return random.Random(20240614)
