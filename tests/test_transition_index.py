"""Tests for the TR-tree wrapper (TransitionIndex)."""

import pytest

import pickle

from repro.geometry.bbox import BoundingBox
from repro.index.transition_index import (
    DELTA_DELETE,
    DELTA_INSERT,
    DESTINATION,
    ORIGIN,
    TransitionDelta,
    TransitionEntry,
    TransitionIndex,
)
from repro.model.dataset import TransitionDataset
from repro.model.transition import Transition


class TestTransitionEntry:
    def test_valid_endpoints(self):
        TransitionEntry(1, ORIGIN)
        TransitionEntry(1, DESTINATION)

    def test_invalid_endpoint_raises(self):
        with pytest.raises(ValueError):
            TransitionEntry(1, "x")

    def test_hashable_and_frozen(self):
        tag = TransitionEntry(3, ORIGIN)
        assert tag in {TransitionEntry(3, ORIGIN)}
        with pytest.raises(AttributeError):
            tag.endpoint = DESTINATION


class TestConstruction:
    def test_two_entries_per_transition(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        assert index.endpoint_count() == 2 * len(toy_transitions)

    def test_empty_dataset(self):
        index = TransitionIndex(TransitionDataset())
        assert index.endpoint_count() == 0
        assert index.root.bbox is None

    def test_transition_lookup(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        assert index.transition(3).transition_id == 3

    def test_endpoints_in_box(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        box = BoundingBox(0.0, 0.0, 8.0, 1.0)
        tags = {(tag.transition_id, tag.endpoint) for _, tag in index.endpoints_in_box(box)}
        # Transitions 0 (both endpoints) and 3 (origin) lie in that strip.
        assert (0, ORIGIN) in tags
        assert (3, ORIGIN) in tags
        assert all(tid != 5 for tid, _ in tags)


class TestDynamicUpdates:
    def test_add_transition(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        before = index.endpoint_count()
        new_transition = Transition(100, (1.0, 1.0), (2.0, 2.0))
        toy_transitions.add(new_transition)
        index.add_transition(new_transition)
        assert index.endpoint_count() == before + 2
        tags = {
            tag.transition_id
            for _, tag in index.endpoints_in_box(BoundingBox(0.5, 0.5, 2.5, 2.5))
        }
        assert 100 in tags

    def test_remove_transition(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        before = index.endpoint_count()
        transition = toy_transitions.get(5)
        removed = index.remove_transition(transition)
        assert removed == 2
        assert index.endpoint_count() == before - 2

    def test_remove_missing_transition_returns_zero(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        ghost = Transition(999, (100.0, 100.0), (101.0, 101.0))
        assert index.remove_transition(ghost) == 0

    def test_remove_only_targets_matching_transition(self, toy_transitions):
        # Two transitions sharing an endpoint location: removing one must not
        # disturb the other.
        index = TransitionIndex(toy_transitions, max_entries=4)
        shared = Transition(200, (1.0, 0.3), (5.0, 5.0))
        toy_transitions.add(shared)
        index.add_transition(shared)
        index.remove_transition(shared)
        remaining = {
            (tag.transition_id, tag.endpoint)
            for _, tag in index.endpoints_in_box(BoundingBox(0.9, 0.2, 1.1, 0.4))
        }
        assert (0, ORIGIN) in remaining
        assert (200, ORIGIN) not in remaining


class TestDeltaStream:
    def test_listener_sees_typed_contiguous_deltas(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        seen = []
        index.add_listener(seen.append)

        fresh = Transition(300, (1.0, 1.0), (2.0, 2.0))
        index.add_transition(fresh)
        index.remove_transition(fresh)

        assert [delta.kind for delta in seen] == [DELTA_INSERT, DELTA_DELETE]
        assert all(isinstance(delta, TransitionDelta) for delta in seen)
        assert all(delta.transition is fresh for delta in seen)
        # Versions stamp the post-mutation state and are contiguous.
        assert [delta.version for delta in seen] == [1, 2]
        assert index.version == 2

    def test_remove_listener_stops_delivery(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        seen = []
        index.add_listener(seen.append)
        index.remove_listener(seen.append)
        index.add_transition(Transition(301, (1.0, 1.0), (2.0, 2.0)))
        assert seen == []
        # Removing an unknown listener is a no-op, not an error.
        index.remove_listener(seen.append)

    def test_invalid_delta_kind_rejected(self, toy_transitions):
        with pytest.raises(ValueError):
            TransitionDelta("mutate", Transition(1, (0, 0), (1, 1)), 1)

    def test_pickle_strips_listeners(self, toy_transitions):
        index = TransitionIndex(toy_transitions, max_entries=4)
        index.add_listener(lambda delta: None)
        clone = pickle.loads(pickle.dumps(index))
        assert clone._listeners == []
        assert clone.endpoint_count() == index.endpoint_count()
