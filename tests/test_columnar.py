"""Columnar dataset core: round-trips, differential equality, determinism.

The contract of :mod:`repro.engine.columnar`:

* a decoded index is **structure-exact** — same preorder node walk, same
  bounding boxes, same entries, same payload sets;
* the columnar pickle path is differentially equal to the legacy object
  path — same results *and* same traversal counters, per method ×
  semantics × backend;
* columnar pickles are byte-deterministic (sorted id columns everywhere,
  no hash-ordered set iteration survives serialisation) and at least as
  small as the object pickles by a wide margin;
* PList/NList reads in columnar mode (binary search, packed unions) agree
  with the dict/frozenset reads bitwise, and the first mutation
  materialises a private copy without changing answers.
"""

import pickle

import pytest

from repro.core.rknnt import METHODS, RkNNTProcessor
from repro.engine import columnar
from repro.engine.executor import execute, run_stages
from repro.engine.plan import QueryPlan
from repro.geometry.kernels import numpy_available
from repro.index.route_index import RouteIndex
from repro.model.route import Route
from repro.model.transition import Transition

K = 3
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])
QUERIES = [
    [(2.0, 2.0), (3.0, 2.5)],
    [(1.0, 4.0)],
    [(3.5, 1.0), (3.0, 2.0)],
]


@pytest.fixture()
def fresh_processor(mini_city, mini_transitions):
    return RkNNTProcessor(mini_city.routes, mini_transitions)


def _walk_signature(tree):
    """Structure + payload signature of a tree, preorder."""
    signature = []
    for node in columnar.walk_nodes(tree):
        box = node.bbox.as_tuple() if node.bbox is not None else None
        entries = None
        if node.is_leaf:
            entries = [
                (entry.point, tuple(sorted(entry.payload, key=repr)))
                for entry in node.children
            ]
        signature.append((node.is_leaf, len(node.children), box, entries))
    return signature


class TestTreeRoundTrip:
    def test_route_tree_structure_is_exact(self, fresh_processor):
        tree = fresh_processor.route_index.tree
        decoded = columnar.decode_tree(
            columnar.encode_tree(tree, columnar.PAYLOAD_ROUTE)
        )
        assert _walk_signature(decoded) == _walk_signature(tree)
        assert len(decoded) == len(tree)
        assert decoded.max_entries == tree.max_entries
        assert decoded.min_entries == tree.min_entries
        assert decoded.track_payload_union == tree.track_payload_union

    def test_transition_tree_structure_is_exact(self, fresh_processor):
        tree = fresh_processor.transition_index.tree
        decoded = columnar.decode_tree(
            columnar.encode_tree(tree, columnar.PAYLOAD_TAG)
        )
        assert _walk_signature(decoded) == _walk_signature(tree)

    def test_payload_unions_materialise_lazily_and_equal(self, fresh_processor):
        tree = fresh_processor.route_index.tree
        decoded = columnar.decode_tree(
            columnar.encode_tree(tree, columnar.PAYLOAD_ROUTE)
        )
        for ours, theirs in zip(
            columnar.walk_nodes(tree), columnar.walk_nodes(decoded)
        ):
            assert theirs.payload_union == ours.payload_union

    def test_empty_tree_round_trips(self):
        from repro.index.rtree import RTree

        tree = RTree(max_entries=8, track_payload_union=True)
        decoded = columnar.decode_tree(
            columnar.encode_tree(tree, columnar.PAYLOAD_ROUTE)
        )
        assert len(decoded) == 0
        assert decoded.root.is_leaf
        assert decoded.root.bbox is None


class TestNListColumns:
    def test_union_ids_are_sorted_and_equal_the_frozenset(self, fresh_processor):
        tree = fresh_processor.route_index.tree
        nlist = columnar.encode_nlist(tree)
        decoded = columnar.decode_tree(
            columnar.encode_tree(tree, columnar.PAYLOAD_ROUTE)
        )
        columnar.install_nlist(decoded, nlist)
        for ours, theirs in zip(
            columnar.walk_nodes(tree), columnar.walk_nodes(decoded)
        ):
            expected = sorted(ours.payload_union)
            assert list(theirs.packed_union) == expected
            assert list(theirs.union_ids()) == expected
            # The lazily materialised frozenset comes from the packed ids.
            assert theirs.payload_union == ours.payload_union

    def test_shape_mismatch_raises(self, fresh_processor):
        tree = fresh_processor.route_index.tree
        nlist = columnar.encode_nlist(tree)
        from repro.index.rtree import RTree

        other = RTree(max_entries=8, track_payload_union=True)
        with pytest.raises(ValueError):
            columnar.install_nlist(other, nlist)

    def test_dynamic_update_drops_packed_unions(self, mini_city, mini_transitions):
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        root = processor.route_index.tree.root
        before = list(root.union_ids())
        assert root.packed_union is not None
        route_id = mini_city.routes.next_id()
        try:
            processor.add_route(
                Route(route_id, [(1.9, 2.0), (2.5, 2.2), (3.1, 2.4)])
            )
            assert processor.route_index.tree.root.packed_union is None
            after = list(processor.route_index.tree.root.union_ids())
            assert route_id in after
            assert set(before) <= set(after)
        finally:
            processor.remove_route(route_id)


class TestPListColumns:
    def test_columnar_reads_equal_dict_reads(self, fresh_processor):
        plist = fresh_processor.route_index.plist
        clone = type(plist).from_columns(plist.to_columns())
        assert len(clone) == len(plist)
        for key, ids in plist.sorted_items():
            assert clone.crossover_routes(key) == frozenset(ids)
            assert clone.crossover_degree(key) == len(ids)
            assert key in clone
        assert (1e9, 1e9) not in clone
        assert clone.crossover_routes((1e9, 1e9)) == frozenset()
        assert list(clone.points()) == list(plist.points())
        assert clone.sorted_items() == plist.sorted_items()

    def test_sorted_iteration(self, fresh_processor):
        plist = fresh_processor.route_index.plist
        points = list(plist.points())
        assert points == sorted(points)
        items = plist.sorted_items()
        assert [key for key, _ in items] == points
        for _, ids in items:
            assert list(ids) == sorted(ids)

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy columns")
    def test_numpy_columns_answer_under_forced_pure_python(
        self, fresh_processor, monkeypatch
    ):
        """A columnar pickle built with numpy arrays must still answer in a
        process forcing the pure-Python kernels: lookup dispatch follows
        the column's type, not the kernel preference."""
        from repro.geometry import kernels

        plist = fresh_processor.route_index.plist
        clone = type(plist).from_columns(plist.to_columns())
        monkeypatch.setattr(kernels, "_FORCED_PURE", True)
        assert not kernels.numpy_available()
        for key, ids in plist.sorted_items()[:10]:
            assert clone.crossover_routes(key) == frozenset(ids)
        assert clone.crossover_routes((1e9, 1e9)) == frozenset()

    def test_mutation_materialises_a_private_dict(self, fresh_processor):
        plist = fresh_processor.route_index.plist
        clone = type(plist).from_columns(plist.to_columns())
        key, ids = plist.sorted_items()[0]
        clone.add(key, 987654)
        assert clone._routes_by_point is not None  # columnar mode left
        assert clone.crossover_routes(key) == frozenset(ids) | {987654}
        clone.discard(key, 987654)
        assert clone.crossover_routes(key) == frozenset(ids)
        # The original is untouched (the columns were copied out, the
        # original PList never shared its dict).
        assert plist.crossover_routes(key) == frozenset(ids)


class TestIndexPickling:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("method", METHODS)
    def test_columnar_equals_object_path(
        self, fresh_processor, monkeypatch, method, semantics, backend
    ):
        """Columnar clone ≡ legacy clone ≡ original: results, confirmed
        endpoints and traversal counters, per method × semantics × backend."""
        context = fresh_processor.engine_context
        columnar_clone = pickle.loads(pickle.dumps(context))
        monkeypatch.setenv(columnar.COLUMNAR_ENV, "0")
        object_clone = pickle.loads(pickle.dumps(context))
        monkeypatch.delenv(columnar.COLUMNAR_ENV)
        plan = QueryPlan.for_method(method, backend=backend)
        for query in QUERIES:
            expected = execute(context, query, K, plan, semantics)
            via_columns = execute(columnar_clone, query, K, plan, semantics)
            via_objects = execute(object_clone, query, K, plan, semantics)
            assert via_columns.confirmed_endpoints == expected.confirmed_endpoints
            assert via_columns.transition_ids == expected.transition_ids
            assert via_objects.transition_ids == expected.transition_ids
            for probe in (via_columns, via_objects):
                assert (
                    probe.stats.route_nodes_visited
                    == expected.stats.route_nodes_visited
                )
                assert (
                    probe.stats.transition_nodes_visited
                    == expected.stats.transition_nodes_visited
                )
                assert (
                    probe.stats.nodes_pruned
                    == expected.stats.nodes_pruned
                )
                assert (
                    probe.stats.candidates == expected.stats.candidates
                )

    def test_pickles_are_byte_deterministic(self, fresh_processor):
        context = fresh_processor.engine_context
        first = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        second = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        assert first == second
        # ...and stable across a decode/re-encode round trip: the clone
        # re-pickles to the exact same bytes.
        clone = pickle.loads(first)
        assert pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL) == first

    def test_pickles_shrink(self, fresh_processor, monkeypatch):
        context = fresh_processor.engine_context
        columnar_bytes = context.reseed_payload_nbytes()
        monkeypatch.setenv(columnar.COLUMNAR_ENV, "0")
        object_bytes = context.reseed_payload_nbytes()
        assert columnar_bytes * 3 <= object_bytes * 2, (
            f"columnar pickle {columnar_bytes} B is not >= 1.5x smaller "
            f"than the object pickle {object_bytes} B"
        )

    def test_env_knob_restores_object_pickles(self, fresh_processor, monkeypatch):
        monkeypatch.setenv(columnar.COLUMNAR_ENV, "0")
        assert not columnar.columnar_enabled()
        state = fresh_processor.route_index.__getstate__()
        assert "__columnar__" not in state
        clone = pickle.loads(pickle.dumps(fresh_processor.engine_context))
        for query in QUERIES:
            expected, _ = run_stages(
                fresh_processor.engine_context,
                query,
                K,
                QueryPlan.for_method("voronoi"),
            )
            actual, _ = run_stages(
                clone, query, K, QueryPlan.for_method("voronoi")
            )
            assert actual == expected

    def test_versions_survive_the_round_trip(self, mini_city, mini_transitions):
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        new_id = mini_transitions.next_id()
        processor.add_transition(Transition(new_id, (2.0, 2.1), (2.4, 2.6)))
        try:
            clone = pickle.loads(pickle.dumps(processor.engine_context))
            assert (
                clone.transition_index.version
                == processor.transition_index.version
            )
            assert clone.route_index.version == processor.route_index.version
        finally:
            processor.remove_transition(new_id)


class TestDynamicUpdatesAfterDecode:
    def test_decoded_index_stays_dynamic(self, mini_city, mini_transitions):
        """A decoded context accepts the same mutations as the original and
        keeps answering identically (the columnar form is a serialisation,
        not a freeze)."""
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        clone = pickle.loads(pickle.dumps(processor.engine_context))
        new_id = mini_transitions.next_id()
        transition = Transition(new_id, (2.05, 2.05), (2.9, 2.4))
        processor.add_transition(transition)
        clone.transition_index.transitions.add(transition)
        clone.transition_index.add_transition(transition)
        try:
            plan = QueryPlan.for_method("voronoi")
            for query in QUERIES:
                expected, _ = run_stages(
                    processor.engine_context, query, K, plan
                )
                actual, _ = run_stages(clone, query, K, plan)
                assert actual == expected
        finally:
            processor.remove_transition(new_id)

    def test_decoded_route_index_accepts_route_churn(self, mini_city, mini_transitions):
        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        columns = processor.route_index.to_columns()
        decoded = RouteIndex.from_columns(columns)
        route_id = decoded.routes.next_id()
        route = Route(route_id, [(1.9, 2.0), (2.5, 2.2), (3.1, 2.4)])
        decoded.routes.add(route)
        decoded.add_route(route)
        assert decoded.version == processor.route_index.version + 1
        for point in route.points:
            assert route_id in decoded.crossover_routes(point)
        removed = decoded.routes.remove(route_id)
        decoded.remove_route(removed)
        for key, ids in processor.route_index.plist.sorted_items():
            assert decoded.crossover_routes(key) == frozenset(ids)


# ----------------------------------------------------------------------
# Spawn-leg coverage: the columnar decode path workers actually exercise
# ----------------------------------------------------------------------
import multiprocessing

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


class TestStartMethodLegs:
    """Workers decode the context from its columnar pickle; ``spawn``
    workers additionally re-import the package from scratch.  Both legs
    must answer identically to the in-process serial path, including after
    mutations that force the packed columns to materialise private copies."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_sharded_answers_match_serial_after_mutation(
        self, mini_city, mini_transitions, start_method
    ):
        from repro.engine.parallel import ShardedExecutor

        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        new_id = mini_transitions.next_id()
        processor.add_transition(Transition(new_id, (2.05, 2.05), (2.9, 2.4)))
        try:
            plan = QueryPlan.for_method("voronoi")
            jobs = [(query, None) for query in QUERIES]
            serial = [
                execute(processor.engine_context, query, K, plan, "exists")
                for query in QUERIES
            ]
            with ShardedExecutor(
                processor.engine_context, workers=2, start_method=start_method
            ) as executor:
                sharded = executor.run(jobs, K, plan, "exists")
            assert not executor.degraded
            for expected, actual in zip(serial, sharded):
                assert actual.confirmed_endpoints == expected.confirmed_endpoints
                assert new_id in actual.transition_ids or (
                    new_id not in expected.transition_ids
                )
        finally:
            processor.remove_transition(new_id)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_decoded_clone_survives_the_pool(self, mini_city, mini_transitions, start_method):
        """Mutation-after-decode, then shipped through a pool: the decoded
        clone's columnar re-pickle is what the workers see."""
        from repro.engine.parallel import ShardedExecutor

        processor = RkNNTProcessor(mini_city.routes, mini_transitions)
        clone = pickle.loads(pickle.dumps(processor.engine_context))
        new_id = mini_transitions.next_id()
        transition = Transition(new_id, (2.05, 2.05), (2.9, 2.4))
        processor.add_transition(transition)
        clone.transition_index.transitions.add(transition)
        clone.transition_index.add_transition(transition)
        try:
            plan = QueryPlan.for_method("voronoi")
            jobs = [(query, None) for query in QUERIES]
            with ShardedExecutor(
                clone, workers=2, start_method=start_method
            ) as executor:
                sharded = executor.run(jobs, K, plan, "exists")
            assert not executor.degraded
            for query, actual in zip(QUERIES, sharded):
                expected = execute(processor.engine_context, query, K, plan, "exists")
                assert actual.confirmed_endpoints == expected.confirmed_endpoints
        finally:
            processor.remove_transition(new_id)
