"""Tests for the Route model."""

import math

import pytest

from repro.geometry.bbox import BoundingBox
from repro.model.route import Route


class TestConstruction:
    def test_minimum_two_points(self):
        with pytest.raises(ValueError):
            Route(0, [(0, 0)])

    def test_points_are_point_tuples(self):
        route = Route(1, [(0, 0), (1, 2)])
        assert route.points[0] == (0.0, 0.0)
        assert route.points[1].x == 1.0
        assert route.points[1].y == 2.0

    def test_name_defaults_to_none(self):
        assert Route(1, [(0, 0), (1, 1)]).name is None
        assert Route(1, [(0, 0), (1, 1)], name="M15").name == "M15"

    def test_from_vertices(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 1.0)}
        route = Route.from_vertices(7, [0, 1, 2], positions, name="loop")
        assert route.route_id == 7
        assert [tuple(p) for p in route.points] == [(0, 0), (1, 0), (2, 1)]
        assert route.name == "loop"


class TestGeometry:
    def test_bbox(self):
        route = Route(0, [(0, 0), (4, 2), (2, -1)])
        assert route.bbox == BoundingBox(0, -1, 4, 2)

    def test_travel_distance(self):
        route = Route(0, [(0, 0), (3, 4), (3, 10)])
        assert route.travel_distance == pytest.approx(11.0)

    def test_straight_line_distance(self):
        route = Route(0, [(0, 0), (3, 4), (3, 10)])
        assert route.straight_line_distance == pytest.approx(math.hypot(3, 10))

    def test_detour_ratio(self):
        route = Route(0, [(0, 0), (3, 4), (3, 10)])
        assert route.detour_ratio == pytest.approx(11.0 / math.hypot(3, 10))

    def test_detour_ratio_of_loop_is_infinite(self):
        route = Route(0, [(0, 0), (2, 0), (0, 0)])
        assert math.isinf(route.detour_ratio)

    def test_interval(self):
        route = Route(0, [(0, 0), (2, 0), (4, 0), (6, 0)])
        assert route.interval == pytest.approx(6.0 / 4.0)

    def test_distance_to_point_is_min_over_points(self):
        route = Route(0, [(0, 0), (10, 0), (20, 0)])
        assert route.distance_to_point((11, 1)) == pytest.approx(math.hypot(1, 1))

    def test_travel_distance_is_cached(self):
        route = Route(0, [(0, 0), (1, 0)])
        assert route.travel_distance == route.travel_distance == 1.0


class TestProtocols:
    def test_len_iter_getitem(self):
        route = Route(0, [(0, 0), (1, 1), (2, 2)])
        assert len(route) == 3
        assert list(route)[2] == (2.0, 2.0)
        assert route[1] == (1.0, 1.0)

    def test_equality_and_hash(self):
        a = Route(0, [(0, 0), (1, 1)])
        b = Route(0, [(0, 0), (1, 1)])
        c = Route(1, [(0, 0), (1, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a route"

    def test_repr_mentions_id_and_size(self):
        text = repr(Route(5, [(0, 0), (1, 1)], name="X1"))
        assert "5" in text and "2" in text and "X1" in text
