"""Tests for the Voronoi (per-route) filtering predicate (Section 5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import filtering_space_contains_bbox
from repro.geometry.point import euclidean, point_to_points_distance
from repro.geometry.voronoi import voronoi_prunes_bbox, voronoi_prunes_point

coord = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points = st.tuples(coord, coord)
point_lists = st.lists(points, min_size=1, max_size=6)


class TestVoronoiPointPredicate:
    def test_point_closer_to_route(self):
        route = [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0)]
        query = [(0.0, 5.0), (4.0, 5.0)]
        assert voronoi_prunes_point((2.0, 1.0), route, query)
        assert not voronoi_prunes_point((2.0, 4.5), route, query)

    def test_empty_route_never_prunes(self):
        assert not voronoi_prunes_point((0, 0), [], [(1, 1)])

    @given(p=points, route=point_lists, query=point_lists)
    def test_matches_set_distance_comparison(self, p, route, query):
        pruned = voronoi_prunes_point(p, route, query)
        if pruned:
            d_route = point_to_points_distance(p, route)
            d_query = point_to_points_distance(p, query)
            assert d_route < d_query


class TestVoronoiBoxPredicate:
    def test_paper_scenario_route_prunes_what_single_point_cannot(self):
        """The Figure 5 effect: a whole route prunes a node no single point can."""
        route = [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (6.0, 0.0)]
        query = [(0.0, 3.0), (3.0, 3.0), (6.0, 3.0)]
        # Node sitting under the middle of the route, well below the query.
        node = BoundingBox(1.0, -1.0, 5.0, 0.4)
        assert voronoi_prunes_bbox(node, route, query)
        # No single filter point dominates the node against every query point.
        assert not any(
            filtering_space_contains_bbox(node, r, query) for r in route
        )

    def test_node_near_query_not_pruned(self):
        route = [(0.0, 0.0), (4.0, 0.0)]
        query = [(2.0, 2.0)]
        node = BoundingBox(1.5, 1.5, 2.5, 2.5)
        assert not voronoi_prunes_bbox(node, route, query)

    def test_empty_route_never_prunes(self):
        assert not voronoi_prunes_bbox(BoundingBox(0, 0, 1, 1), [], [(5, 5)])

    @given(
        route=point_lists,
        query=point_lists,
        x1=coord,
        y1=coord,
        x2=coord,
        y2=coord,
    )
    def test_pruned_box_corners_closer_to_route(self, route, query, x1, y1, x2, y2):
        """Safety: every corner of a pruned node is closer to the route."""
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        if voronoi_prunes_bbox(box, route, query):
            for corner in box.corners():
                # Tolerance absorbs floating-point rounding of the distance
                # computation; the half-plane certificate itself is exact.
                assert point_to_points_distance(
                    corner, route
                ) <= point_to_points_distance(corner, query) + 1e-9

    @given(
        route=point_lists,
        query=point_lists,
        x1=coord,
        y1=coord,
        x2=coord,
        y2=coord,
    )
    def test_strictly_more_powerful_than_single_point_filter(
        self, route, query, x1, y1, x2, y2
    ):
        """If any single filter point prunes the box, the route also prunes it."""
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        single = any(filtering_space_contains_bbox(box, r, query) for r in route)
        if single:
            assert voronoi_prunes_bbox(box, route, query)

    @given(
        route=point_lists,
        query=point_lists,
        px=coord,
        py=coord,
    )
    def test_interior_points_of_pruned_box_are_safe(self, route, query, px, py):
        """Points sampled inside a pruned degenerate box behave like the box."""
        box = BoundingBox.from_point((px, py))
        if voronoi_prunes_bbox(box, route, query):
            d_route = point_to_points_distance((px, py), route)
            d_query = point_to_points_distance((px, py), query)
            if abs(d_route - d_query) < 1e-9:
                # Near-tie: the two predicates evaluate different (equally
                # valid) floating-point expressions of the same comparison.
                return
            assert voronoi_prunes_point((px, py), route, query)
