"""Differential tests of the unified execution engine and the batch API.

The contract under test, per method × semantics:

    query_batch(queries)  ≡  [query(q) for q in queries]  ≡  rknnt_bruteforce

where ``≡`` is *element-wise identity* of the confirmed endpoint maps (and
therefore of both the ∃ and ∀ answers).  Additionally: the scalar and numpy
backends agree, caches survive dynamic updates, the planning bulk-expansion
path matches per-vertex scalar queries, and divide & conquer statistics sum
over sub-queries (the aggregation fix).
"""

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.filtering import FilterRefineEngine
from repro.core.rknnt import DIVIDE_CONQUER, METHODS, RkNNTProcessor
from repro.geometry.kernels import numpy_available
from repro.model.transition import Transition
from repro.planning.precompute import VertexRkNNTIndex

K = 3
QUERY_COUNT = 6

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def batch_queries(mini_workload):
    # Short routes with a tight interval so answers are non-trivial, plus a
    # single-point query (divide & conquer degenerate case).
    queries = mini_workload.query_routes(QUERY_COUNT, length=4, interval=0.8)
    queries.append(queries[0][:1])
    return queries


class TestBatchEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_equals_single_equals_bruteforce(
        self, mini_city, mini_transitions, mini_processor, batch_queries,
        method, semantics, backend,
    ):
        # Cold caches per parameterization: otherwise a later backend's
        # divide & conquer run would be served from sub-queries memoised by
        # an earlier one and the backend under test would never execute.
        mini_processor.engine_context.clear_caches()
        singles = [
            mini_processor.query(q, K, method=method, semantics=semantics)
            for q in batch_queries
        ]
        batch = mini_processor.query_batch(
            batch_queries, K, method=method, semantics=semantics, backend=backend
        )
        assert len(batch) == len(singles)
        for query, single, batched in zip(batch_queries, singles, batch):
            assert batched.confirmed_endpoints == single.confirmed_endpoints
            assert batched.transition_ids == single.transition_ids
            oracle = rknnt_bruteforce(
                mini_city.routes, mini_transitions, query, K, semantics=semantics
            )
            assert batched.transition_ids == oracle.transition_ids
            assert batched.exists_ids() == oracle.exists_ids()
            assert batched.forall_ids() == oracle.forall_ids()

    @pytest.mark.parametrize("method", METHODS)
    def test_existing_route_queries_batch(self, mini_city, mini_processor, method):
        # Route objects as queries: the query route must exclude itself in
        # the batch path exactly as in the single path.
        routes = list(mini_city.routes)[:4]
        singles = [mini_processor.query(route, K, method=method) for route in routes]
        batch = mini_processor.query_batch(routes, K, method=method)
        for single, batched in zip(singles, batch):
            assert batched.confirmed_endpoints == single.confirmed_endpoints

    def test_repeated_batches_hit_subquery_cache(self, mini_processor, batch_queries):
        first = mini_processor.query_batch(batch_queries, K, method=DIVIDE_CONQUER)
        hits_before = mini_processor.engine_context.subquery_hits
        second = mini_processor.query_batch(batch_queries, K, method=DIVIDE_CONQUER)
        assert mini_processor.engine_context.subquery_hits > hits_before
        for a, b in zip(first, second):
            assert a.confirmed_endpoints == b.confirmed_endpoints


class TestDynamicUpdates:
    def test_caches_invalidate_on_transition_updates(self, mini_city):
        city_routes = mini_city.routes
        from repro.data.checkins import TransitionGenerator

        transitions = TransitionGenerator(city_routes, seed=123).generate(150)
        processor = RkNNTProcessor(city_routes, transitions)
        query = [(2.0, 2.0), (3.0, 2.5), (4.0, 3.0)]

        before = processor.query_batch([query], K, method=DIVIDE_CONQUER)[0]
        oracle_before = rknnt_bruteforce(city_routes, transitions, query, K)
        assert before.transition_ids == oracle_before.transition_ids

        # Mutate the transition set; the engine context must notice.
        new_id = transitions.next_id()
        processor.add_transition(Transition(new_id, (2.1, 2.1), (3.9, 3.1)))
        removed_id = next(iter(sorted(transitions.transition_ids)))
        processor.remove_transition(removed_id)

        after = processor.query_batch([query], K, method=DIVIDE_CONQUER)[0]
        oracle_after = rknnt_bruteforce(city_routes, transitions, query, K)
        assert after.transition_ids == oracle_after.transition_ids
        assert after.transition_ids != before.transition_ids or (
            new_id not in oracle_after.transition_ids
            and removed_id not in oracle_before.transition_ids
        )

    def test_route_matrix_invalidates_on_route_updates(self, mini_city):
        from repro.data.checkins import TransitionGenerator
        from repro.model.route import Route

        transitions = TransitionGenerator(mini_city.routes, seed=5).generate(100)
        processor = RkNNTProcessor(mini_city.routes, transitions)
        query = [(1.0, 1.0), (2.0, 1.5)]
        processor.query_batch([query], K)  # builds the route matrix

        new_route = Route(
            mini_city.routes.next_id(), [(0.5, 0.5), (1.5, 1.2), (2.5, 1.8)]
        )
        processor.add_route(new_route)
        result = processor.query_batch([query], K)[0]
        oracle = rknnt_bruteforce(mini_city.routes, transitions, query, K)
        assert result.transition_ids == oracle.transition_ids
        processor.remove_route(new_route.route_id)


class TestPlanningBulkPath:
    def test_bulk_build_matches_scalar_per_vertex(self, mini_city, mini_processor):
        bulk = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        bulk.build(backend="auto")

        scalar = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        for vertex in mini_city.network.vertices():
            # Independent scalar engine, bypassing every shared cache.
            engine = FilterRefineEngine(
                mini_processor.route_index,
                mini_processor.transition_index,
                K,
                use_voronoi=True,
            )
            confirmed = engine.run([tuple(mini_city.network.position(vertex))])
            expected = frozenset(
                (transition_id, endpoint)
                for transition_id, endpoints in confirmed.items()
                for endpoint in endpoints
            )
            assert bulk.vertex_endpoints(vertex) == expected


class TestDivideConquerStats:
    def test_subquery_stats_sum_into_parent(self, mini_processor, mini_workload):
        """Satellite fix: DC stats must be the sum over all sub-queries,
        not the counters of the last one."""
        query = mini_workload.random_query_route(length=5, interval=0.8)
        result = mini_processor.query(query, K, method=DIVIDE_CONQUER)

        totals = {
            "route_nodes_visited": 0,
            "transition_nodes_visited": 0,
            "filter_points": 0,
            "nodes_pruned": 0,
            "candidates": 0,
            "confirmed_points": 0,
        }
        for point in query:
            engine = FilterRefineEngine(
                mini_processor.route_index,
                mini_processor.transition_index,
                K,
                use_voronoi=True,
            )
            engine.run([point])
            for field in totals:
                totals[field] += getattr(engine.stats, field)

        stats = result.stats
        assert stats.subqueries == len(query)
        for field, expected in totals.items():
            assert getattr(stats, field) == expected, field
        # Aggregated timings cover every sub-query, so they cannot be
        # smaller than any single phase observation would allow.
        assert stats.filtering_seconds > 0.0
        assert stats.verification_seconds >= 0.0
