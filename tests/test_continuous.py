"""Differential and edge-case tests for continuous (delta-maintained) RkNNT.

The contract under test, per method × semantics × backend:

    after ANY interleaving of transition inserts/deletes (and route
    mutations), a subscription's materialized standing result is
    element-wise identical to a fresh ``query()`` with the same arguments,
    and to the brute-force oracle.

Plus the delta stream invariant: replaying the emitted ``added``/``removed``
sets over the initial membership reproduces the final membership exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import METHODS, RkNNTProcessor, VORONOI
from repro.engine.continuous import CAUSE_REBUILD, ResultDelta
from repro.geometry.kernels import numpy_available
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

K = 3
STREAM_OPS = 200
CHECK_EVERY = 25

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


# ----------------------------------------------------------------------
# A small private world per test (the streams mutate it)
# ----------------------------------------------------------------------
def make_world(seed: int, route_count: int = 10, transition_count: int = 50):
    rng = random.Random(seed)
    routes = []
    for route_id in range(route_count):
        x, y = rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)
        points = [(x, y)]
        for _ in range(rng.randint(3, 5)):
            x = min(10.0, max(0.0, x + rng.uniform(-2.0, 2.0)))
            y = min(10.0, max(0.0, y + rng.uniform(-2.0, 2.0)))
            points.append((x, y))
        routes.append(Route(route_id, points))
    transitions = [
        Transition(
            tid,
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
        )
        for tid in range(transition_count)
    ]
    return RouteDataset(routes), TransitionDataset(transitions)


def random_op(rng, processor, live_ids, next_id):
    """Apply one random insert (60%) or delete (40%); returns next_id."""
    if live_ids and rng.random() < 0.4:
        victim = live_ids.pop(rng.randrange(len(live_ids)))
        processor.remove_transition(victim)
        return next_id
    processor.add_transition(
        Transition(
            next_id,
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
        )
    )
    live_ids.append(next_id)
    return next_id + 1


def assert_matches_fresh(processor, subscription, query, method, semantics):
    fresh = processor.query(
        query, K, method=method, semantics=semantics
    )
    standing = subscription.result()
    assert standing.transition_ids == fresh.transition_ids
    assert standing.confirmed_endpoints == fresh.confirmed_endpoints


QUERY = [(2.0, 2.0), (5.0, 5.0), (8.0, 3.0)]


class TestDifferentialStream:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stream_matches_fresh_query_and_bruteforce(
        self, method, semantics, backend
    ):
        routes, transitions = make_world(seed=7)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(
            QUERY, K, method=method, semantics=semantics, backend=backend
        )
        initial_ids = set(subscription.transition_ids)

        # String seeds are hashed with sha512 by random.seed, so every
        # parametrization replays the exact same stream on every run.
        rng = random.Random(f"{method}|{semantics}|{backend}")
        live_ids = list(transitions.transition_ids)
        next_id = transitions.next_id()
        for step in range(STREAM_OPS):
            next_id = random_op(rng, processor, live_ids, next_id)
            if (step + 1) % CHECK_EVERY == 0:
                assert_matches_fresh(
                    processor, subscription, QUERY, method, semantics
                )
        assert_matches_fresh(processor, subscription, QUERY, method, semantics)

        oracle = rknnt_bruteforce(
            routes, transitions, QUERY, K, semantics=semantics
        )
        assert subscription.result().transition_ids == oracle.transition_ids

        # The delta stream replays the membership exactly.
        ids = set(initial_ids)
        for delta in subscription.poll():
            assert not (delta.added & delta.removed)
            ids -= set(delta.removed)
            ids |= set(delta.added)
        assert ids == set(subscription.transition_ids)

        # Delta maintenance actually short-circuited work: most endpoints
        # were either rejected by the O(filter) test or verified, never both.
        stats = subscription.delta_stats
        assert stats.inserts_seen + stats.deletes_seen == STREAM_OPS
        assert (
            stats.endpoints_filtered + stats.endpoints_verified
            == 2 * stats.inserts_seen
        )

    def test_route_mutations_trigger_scoped_refilter(self):
        routes, transitions = make_world(seed=11)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K, method=VORONOI)

        new_route = Route(routes.next_id(), [(2.0, 2.5), (5.0, 4.5), (7.5, 3.0)])
        processor.add_route(new_route)
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")
        assert subscription.delta_stats.rebuilds == 1

        processor.remove_route(new_route.route_id)
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")
        assert subscription.delta_stats.rebuilds == 2

    def test_update_storm_crossing_generation_boundary(self):
        """Route churn mid-stream: the subscriptions' retained filter sets
        (and their ``FilterSet.generation`` counters) are invalidated and
        rebuilt while transition updates keep streaming."""
        routes, transitions = make_world(seed=13)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K, method=VORONOI)
        generation_before = [
            executor.filter_set.generation
            for _, executor in subscription._executors
        ]

        rng = random.Random(99)
        live_ids = list(transitions.transition_ids)
        next_id = transitions.next_id()
        extra_route_id = None
        for step in range(60):
            next_id = random_op(rng, processor, live_ids, next_id)
            if step == 19:
                extra_route_id = routes.next_id()
                processor.add_route(
                    Route(extra_route_id, [(1.0, 1.0), (4.0, 4.0), (8.0, 4.0)])
                )
            if step == 39:
                processor.remove_route(extra_route_id)
            if step % 10 == 9:
                assert_matches_fresh(
                    processor, subscription, QUERY, VORONOI, "exists"
                )
        assert subscription.delta_stats.rebuilds >= 2
        # The rebuilt filter sets are fresh objects with new generations.
        generation_after = [
            executor.filter_set.generation
            for _, executor in subscription._executors
        ]
        assert len(generation_after) == len(generation_before)
        oracle = rknnt_bruteforce(routes, transitions, QUERY, K)
        assert subscription.result().transition_ids == oracle.transition_ids


class TestEdgeCases:
    def test_mutations_with_empty_subscription_set(self):
        routes, transitions = make_world(seed=17)
        processor = RkNNTProcessor(routes, transitions)
        manager = processor.continuous
        assert len(manager) == 0
        # No subscriptions: mutations must not blow up and later watches
        # must see the post-mutation state.
        processor.add_transition(Transition(9999, (1.0, 1.0), (2.0, 2.0)))
        processor.remove_transition(9999)
        subscription = processor.watch(QUERY, K)
        processor.unwatch(subscription)
        assert len(manager) == 0
        processor.add_transition(Transition(9999, (1.0, 1.0), (2.0, 2.0)))
        # The cancelled subscription is frozen: no deltas, no rebuilds.
        assert subscription.poll() == []
        assert not subscription.active

    def test_duplicate_transition_id_rejected_without_corruption(self):
        routes, transitions = make_world(seed=19)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        existing = next(iter(transitions)).transition_id
        with pytest.raises(ValueError):
            processor.add_transition(
                Transition(existing, (1.0, 1.0), (2.0, 2.0))
            )
        # The failed insert never reached the index, so the subscription
        # saw nothing and stays exactly in sync.
        assert subscription.delta_stats.inserts_seen == 0
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")
        # And the stream keeps working afterwards.
        processor.add_transition(
            Transition(transitions.next_id(), (2.0, 2.1), (4.9, 5.0))
        )
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")

    def test_delete_then_reinsert_same_coordinates(self):
        routes, transitions = make_world(seed=23)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        # Pick a transition currently in the result.
        member = sorted(subscription.transition_ids)[0]
        coords = transitions.get(member).coordinates()

        removed = processor.remove_transition(member)
        assert member not in subscription.transition_ids

        # Same id, same coordinates: membership must come back identically.
        processor.add_transition(Transition(member, *coords))
        assert member in subscription.transition_ids
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")

        # Different id, same coordinates: membership transfers to the new id.
        processor.remove_transition(member)
        fresh_id = transitions.next_id()
        processor.add_transition(Transition(fresh_id, *removed.coordinates()))
        assert member not in subscription.transition_ids
        assert fresh_id in subscription.transition_ids
        assert_matches_fresh(processor, subscription, QUERY, VORONOI, "exists")

    def test_callback_and_poll_see_the_same_deltas(self):
        routes, transitions = make_world(seed=29)
        processor = RkNNTProcessor(routes, transitions)
        seen = []
        subscription = processor.watch(QUERY, K, callback=seen.append)
        rng = random.Random(3)
        live_ids = list(transitions.transition_ids)
        next_id = transitions.next_id()
        for _ in range(40):
            next_id = random_op(rng, processor, live_ids, next_id)
        polled = subscription.poll()
        assert polled == seen
        assert all(isinstance(delta, ResultDelta) for delta in polled)
        assert all(delta.added or delta.removed for delta in polled)
        # poll drains.
        assert subscription.poll() == []

    def test_margin_reports_membership_safety(self):
        routes, transitions = make_world(seed=31)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        result = subscription.result()
        for transition_id, endpoints in result.confirmed_endpoints.items():
            for endpoint in endpoints:
                margin = subscription.margin(transition_id, endpoint)
                assert 1 <= margin <= K
        # A non-member (or non-confirmed endpoint) has margin 0.
        non_members = set(transitions.transition_ids) - set(
            result.confirmed_endpoints
        )
        if non_members:
            assert subscription.margin(next(iter(non_members))) == 0

    def test_watch_existing_route_excludes_itself(self):
        routes, transitions = make_world(seed=37)
        processor = RkNNTProcessor(routes, transitions)
        route = next(iter(routes))
        subscription = processor.watch(route, K)
        fresh = processor.query(route, K)
        assert subscription.result().transition_ids == fresh.transition_ids
        processor.add_transition(
            Transition(transitions.next_id(), (2.0, 2.0), (5.0, 5.0))
        )
        fresh = processor.query(route, K)
        assert subscription.result().transition_ids == fresh.transition_ids

    def test_result_deltas_stamp_the_index_version(self):
        routes, transitions = make_world(seed=43)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        rng = random.Random(8)
        live_ids = list(transitions.transition_ids)
        next_id = transitions.next_id()
        for _ in range(30):
            next_id = random_op(rng, processor, live_ids, next_id)
        index = processor.transition_index
        deltas = subscription.poll()
        assert deltas, "expected at least one result delta in 30 ops"
        # Each delta carries the index version it brought the subscription
        # up to date with; versions are strictly increasing and end at (or
        # before) the index's current version.
        versions = [delta.version for delta in deltas]
        assert versions == sorted(versions)
        assert all(1 <= version <= index.version for version in versions)
        # And the subscription is fully caught up.
        assert subscription._transition_version == index.version

    def test_index_level_reused_id_revokes_membership(self):
        # TransitionIndex.add_transition accepts duplicate ids (only the
        # datasets reject them); an insert delta re-using a member's id at
        # far-away coordinates must revoke the membership and emit it.
        routes, transitions = make_world(seed=47)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        subscription.poll()
        member = sorted(subscription.transition_ids)[0]
        processor.transition_index.add_transition(
            Transition(member, (900.0, 900.0), (901.0, 901.0))
        )
        assert member not in subscription.transition_ids
        deltas = subscription.poll()
        assert any(member in delta.removed for delta in deltas)
        # transition_ids and the materialized confirmed map stay in sync.
        assert member not in subscription.result().confirmed_endpoints

    def test_rebuild_delta_reports_the_diff(self):
        routes, transitions = make_world(seed=41)
        processor = RkNNTProcessor(routes, transitions)
        subscription = processor.watch(QUERY, K)
        subscription.poll()
        before = set(subscription.transition_ids)
        # A route hugging the query steals rank-k slots: some transitions
        # must leave the standing result.
        processor.add_route(
            Route(routes.next_id(), [(q[0], q[1]) for q in QUERY])
        )
        after = set(subscription.transition_ids)
        deltas = subscription.poll()
        if before != after:
            assert len(deltas) == 1
            assert deltas[0].cause == CAUSE_REBUILD
            assert set(deltas[0].removed) == before - after
            assert set(deltas[0].added) == after - before


# ----------------------------------------------------------------------
# Spawn-leg coverage: subscription rebuilds dispatched through the pool
# ----------------------------------------------------------------------
import multiprocessing

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


class TestStartMethodLegs:
    """`refresh_subscriptions()` shards the post-route-churn re-filters
    across a live serving pool.  Both start methods must rebuild every
    standing query to exactly the fresh-query answer — ``spawn`` workers
    re-import the package and decode the context from its columnar pickle,
    which is the leg production serving actually runs on."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_pooled_subscription_rebuild_matches_fresh(self, start_method):
        routes, transitions = make_world(seed=77)
        processor = RkNNTProcessor(routes, transitions)
        try:
            subscriptions = [
                processor.watch(query, K, method=VORONOI, semantics=semantics)
                for query in ([(2.0, 2.0)], QUERY)
                for semantics in ("exists", "forall")
            ]
            with processor.serving_pool(workers=2, start_method=start_method) as pool:
                processor.add_route(
                    Route(routes.next_id(), [(1.5, 1.5), (2.5, 2.5), (4.0, 3.0)])
                )
                deltas = processor.refresh_subscriptions()
                assert not pool.degraded
            # Only the non-empty rebuild deltas are returned.
            assert all(delta.cause == CAUSE_REBUILD for delta in deltas)
            for subscription in subscriptions:
                assert_matches_fresh(
                    processor,
                    subscription,
                    subscription.query_points,
                    VORONOI,
                    subscription.semantics,
                )
        finally:
            processor.close()
