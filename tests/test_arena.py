"""Shared-memory dataset arena: layout, attach, lifecycle, fallbacks.

The arena is pure mechanism — publishing and attaching must never change
an answer (the serving differential tests cover that end to end); these
tests pin the mechanism itself: view contents equal the source arrays,
views are read-only, segments never leak (close, double-close, garbage
collection), thresholds and kill-switches fall back to the pickle path,
and a stale handle degrades gracefully instead of corrupting a worker.
"""

import dataclasses
import gc
import pickle

import pytest

from repro.core.rknnt import RkNNTProcessor
from repro.engine import arena, faults, parallel
from repro.engine.executor import run_stages
from repro.engine.plan import QueryPlan
from repro.engine.resilience import ArenaAttachError
from repro.geometry.kernels import numpy_available
from repro.index.rtree import RTree, RTreeEntry

K = 3

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="arenas require the numpy backend"
)


@pytest.fixture()
def fresh_processor(mini_city, mini_transitions):
    return RkNNTProcessor(mini_city.routes, mini_transitions)


class TestPublishAttach:
    @needs_numpy
    def test_attach_reproduces_the_route_matrix_and_tree_blocks(
        self, fresh_processor
    ):
        import numpy

        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        assert published is not None
        try:
            clone = pickle.loads(pickle.dumps(context))
            attached = arena.attach_arena(published.handle, clone)
            source = context.route_matrix()
            mirrored = clone.route_matrix()  # must be the installed one
            assert len(mirrored.blocks) == len(source.blocks)
            for ours, theirs in zip(source.blocks, mirrored.blocks):
                assert numpy.array_equal(ours.points, theirs.points)
                assert ours.offsets == theirs.offsets
                assert ours.column_route_ids == theirs.column_route_ids
                assert not theirs.points.flags.writeable
            # Tree blocks: every node's packed boxes were pre-attached and
            # equal a private repack.
            for tree in (clone.route_index.tree, clone.transition_index.tree):
                for node in arena._walk_nodes(tree):
                    if not node.children:
                        continue
                    view = node.packed_boxes
                    assert view is not None
                    assert not view.flags.writeable
                    assert numpy.array_equal(
                        view, numpy.asarray(node.child_box_tuples())
                    )
            attached.close()
        finally:
            published.close()

    @needs_numpy
    def test_attach_installs_columnar_sidecars(self, fresh_processor):
        """PList/NList columns come back as read-only views of the segment:
        crossover lookups answer by binary search over the shared point
        column and every RR-tree node's packed union is a slice of the
        shared NList block."""
        from repro.engine import columnar

        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        assert published is not None
        keys = {spec.key for spec in published.handle.columns}
        assert keys == {
            "plist_points",
            "plist_offsets",
            "plist_ids",
            "nlist_offsets",
            "nlist_ids",
        }
        try:
            clone = pickle.loads(pickle.dumps(context))
            arena.attach_arena(published.handle, clone)
            plist = clone.route_index.plist
            assert plist._routes_by_point is None  # columnar mode
            assert not plist._columns.points.flags.writeable
            for key, ids in context.route_index.plist.sorted_items():
                assert plist.crossover_routes(key) == frozenset(ids)
            for ours, theirs in zip(
                columnar.walk_nodes(context.route_index.tree),
                columnar.walk_nodes(clone.route_index.tree),
            ):
                assert theirs.packed_union is not None
                assert list(theirs.packed_union) == sorted(ours.payload_union)
        finally:
            published.close()

    @needs_numpy
    def test_columnar_kill_switch_drops_the_sidecars(
        self, fresh_processor, monkeypatch
    ):
        from repro.engine.columnar import COLUMNAR_ENV

        monkeypatch.setenv(COLUMNAR_ENV, "0")
        published = arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0
        )
        assert published is not None
        try:
            assert published.handle.columns == ()  # PR-4 layout
            clone = pickle.loads(pickle.dumps(fresh_processor.engine_context))
            attached = arena.attach_arena(published.handle, clone)
            assert attached is not None  # matrix + boxes still install
        finally:
            published.close()

    @needs_numpy
    def test_spawn_workers_attach_and_answer_identically(self, fresh_processor):
        """Arena attach under the spawn start method: the segment is opened
        by name in a fresh interpreter, so nothing is inherited — the
        pickled handle alone must be enough."""
        from repro.engine.parallel import ShardedExecutor
        from repro.engine.plan import QueryPlan as Plan

        queries = [[(2.0, 2.0), (3.0, 2.5)], [(1.0, 4.0)]]
        jobs = [
            ([(float(x), float(y)) for x, y in query], frozenset())
            for query in queries
        ]
        plan = Plan.for_method("voronoi", backend="numpy")
        serial = [
            run_stages(fresh_processor.engine_context, query, K, plan)[0]
            for query in queries
        ]
        with ShardedExecutor(
            fresh_processor.engine_context,
            workers=2,
            start_method="spawn",
            use_arena=True,
        ) as executor:
            results = executor.run(jobs, K, plan)
            assert executor.arena is not None
        for expected, actual in zip(serial, results):
            assert actual.confirmed_endpoints == expected
        assert arena.active_segment_names() == []

    @needs_numpy
    def test_attached_context_answers_identically(self, fresh_processor):
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        plan = QueryPlan.for_method("voronoi", backend="numpy")
        try:
            clone = pickle.loads(pickle.dumps(context))
            arena.attach_arena(published.handle, clone)
            for query in ([(2.0, 2.0), (3.0, 2.5)], [(1.0, 4.0)]):
                expected, _ = run_stages(context, query, K, plan)
                actual, _ = run_stages(clone, query, K, plan)
                assert actual == expected
        finally:
            published.close()

    @needs_numpy
    def test_worker_initializer_survives_a_stale_handle(self, fresh_processor):
        """A segment unlinked between seed and attach degrades to the
        private-rebuild path — never to a dead worker or wrong answers."""
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        payload = pickle.dumps(context)
        published.close()  # handle now points at nothing
        parallel._initialize_worker(payload, published.handle)
        try:
            assert parallel._WORKER_ARENA is None
            worker_context = parallel._WORKER_CONTEXT
            plan = QueryPlan.for_method("voronoi", backend="numpy")
            query = [(2.0, 2.0), (3.0, 2.5)]
            expected, _ = run_stages(context, query, K, plan)
            actual, _ = run_stages(worker_context, query, K, plan)
            assert actual == expected
        finally:
            parallel._WORKER_CONTEXT = None
            parallel._WORKER_ARENA = None


class TestAttachFailures:
    """Every way an attach can fail must surface as a typed
    :class:`ArenaAttachError` (or degrade a worker to the private-rebuild
    path) — never a dead worker, never a wrong answer."""

    @needs_numpy
    def test_unlinked_segment_raises_typed_error(self, fresh_processor):
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        handle = published.handle
        published.close()  # unlinked before any attach
        clone = pickle.loads(pickle.dumps(context))
        with pytest.raises(ArenaAttachError) as excinfo:
            arena.attach_arena(handle, clone)
        assert excinfo.value.context["segment"] == handle.name

    @needs_numpy
    def test_tree_layout_mismatch_raises_typed_error(self, fresh_processor):
        """A handle whose tree region disagrees with the attacher's walk
        (publisher and attacher out of sync) aborts with walked/published
        byte counts in the error context."""
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        try:
            bad_trees = tuple(
                dataclasses.replace(spec, rows=spec.rows + 1)
                for spec in published.handle.trees
            )
            bad_handle = dataclasses.replace(published.handle, trees=bad_trees)
            clone = pickle.loads(pickle.dumps(context))
            with pytest.raises(ArenaAttachError) as excinfo:
                arena.attach_arena(bad_handle, clone)
            assert excinfo.value.context["walked"] != (
                excinfo.value.context["published"]
            )
        finally:
            published.close()

    @needs_numpy
    def test_worker_survives_sidecar_shape_mismatch(self, fresh_processor):
        """A columnar sidecar whose shape disagrees with the tree (e.g. a
        truncated NList offsets column) degrades the worker to the private
        rebuild — answers stay identical."""
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        try:
            bad_columns = tuple(
                dataclasses.replace(spec, rows=max(0, spec.rows - 1))
                if spec.key == "nlist_offsets"
                else spec
                for spec in published.handle.columns
            )
            assert bad_columns != published.handle.columns
            bad_handle = dataclasses.replace(
                published.handle, columns=bad_columns
            )
            payload = pickle.dumps(context)
            parallel._initialize_worker(payload, bad_handle)
            try:
                assert parallel._WORKER_ARENA is None
                worker_context = parallel._WORKER_CONTEXT
                plan = QueryPlan.for_method("voronoi", backend="numpy")
                query = [(2.0, 2.0), (3.0, 2.5)]
                expected, _ = run_stages(context, query, K, plan)
                actual, _ = run_stages(worker_context, query, K, plan)
                assert actual == expected
            finally:
                parallel._WORKER_CONTEXT = None
                parallel._WORKER_ARENA = None
        finally:
            published.close()

    @needs_numpy
    def test_worker_survives_injected_attach_fault(self, fresh_processor):
        """The arena_attach injection point, through the real worker
        initializer: the fault fires, the worker falls back, answers match."""
        context = fresh_processor.engine_context
        published = arena.publish_arena(context, min_bytes=0)
        try:
            payload = pickle.dumps(context)
            with faults.injected("arena_attach:count=1") as runtime:
                parallel._initialize_worker(payload, published.handle, runtime)
            try:
                assert runtime.fire_count(faults.ARENA_ATTACH) == 1
                assert parallel._WORKER_ARENA is None
                worker_context = parallel._WORKER_CONTEXT
                plan = QueryPlan.for_method("voronoi", backend="numpy")
                query = [(2.0, 2.0), (3.0, 2.5)]
                expected, _ = run_stages(context, query, K, plan)
                actual, _ = run_stages(worker_context, query, K, plan)
                assert actual == expected
            finally:
                parallel._WORKER_CONTEXT = None
                parallel._WORKER_ARENA = None
                faults.uninstall()
        finally:
            published.close()


class TestThresholdsAndFallbacks:
    @needs_numpy
    def test_small_datasets_stay_on_the_pickle_path(self, fresh_processor):
        huge = 1 << 40
        assert arena.publish_arena(
            fresh_processor.engine_context, min_bytes=huge
        ) is None

    @needs_numpy
    def test_env_kill_switch(self, fresh_processor, monkeypatch):
        monkeypatch.setenv(arena.ARENA_ENV, "0")
        assert arena.arena_enabled() is False
        assert arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0
        ) is None

    @needs_numpy
    def test_explicit_force_beats_the_env_kill_switch(
        self, fresh_processor, monkeypatch
    ):
        """An explicit use_arena=True wins over ambient RKNNT_ARENA=0."""
        monkeypatch.setenv(arena.ARENA_ENV, "0")
        forced = arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0, force=True
        )
        assert forced is not None
        forced.close()
        with fresh_processor.serving_pool(workers=1, use_arena=True) as pool:
            fresh_processor.query_batch([[(2.0, 2.0)]], K, workers=1)
            assert pool.arena is not None

    def test_env_knob_parsing(self, monkeypatch):
        monkeypatch.setenv(arena.ARENA_ENV, "on")
        assert arena.arena_enabled() is True
        monkeypatch.setenv(arena.ARENA_ENV, "off")
        assert arena.arena_enabled() is False
        monkeypatch.delenv(arena.ARENA_ENV)
        assert arena.arena_enabled() is None
        monkeypatch.setenv(arena.ARENA_MIN_BYTES_ENV, "12345")
        assert arena.arena_min_bytes() == 12345
        monkeypatch.setenv(arena.ARENA_MIN_BYTES_ENV, "not-a-number")
        assert arena.arena_min_bytes() == arena.DEFAULT_ARENA_MIN_BYTES

    @pytest.mark.skipif(
        numpy_available(), reason="covers the forced pure-python leg"
    )
    def test_pure_python_backend_publishes_nothing(self, fresh_processor):
        assert arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0
        ) is None


class TestSegmentLifecycle:
    @needs_numpy
    def test_close_is_idempotent_and_tracked(self, fresh_processor):
        published = arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0
        )
        name = published.name
        assert name in arena.active_segment_names()
        published.close()
        assert published.closed
        assert name not in arena.active_segment_names()
        published.close()  # double close: no-op, no exception

    @needs_numpy
    def test_garbage_collection_destroys_the_segment(self, fresh_processor):
        published = arena.publish_arena(
            fresh_processor.engine_context, min_bytes=0
        )
        name = published.name
        del published
        gc.collect()
        assert name not in arena.active_segment_names()
        # And the segment itself is gone from the OS, not just the registry.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestPackedBoxCache:
    def test_mutation_invalidates_the_cache(self):
        tree = RTree(max_entries=4)
        for index in range(6):
            tree.insert(RTreeEntry((float(index), 0.0), frozenset({index})))
        root = tree.root
        packed = root.packed_child_boxes()
        assert root.packed_boxes is packed  # cached
        tree.insert(RTreeEntry((9.0, 9.0), frozenset({99})))
        assert tree.root.packed_boxes is None  # dropped by the mutation
        rebuilt = tree.root.packed_child_boxes()
        assert len(rebuilt) == len(tree.root.children)

    def test_cache_is_never_pickled(self):
        tree = RTree(max_entries=4)
        for index in range(10):
            tree.insert(RTreeEntry((float(index), 1.0), frozenset({index})))
        for node in arena._walk_nodes(tree):
            node.packed_child_boxes()
        clone = pickle.loads(pickle.dumps(tree))
        for node in arena._walk_nodes(clone):
            assert node.packed_boxes is None
        assert [e.point for e in clone.entries()] == [
            e.point for e in tree.entries()
        ]
