"""Tests for RouteDataset / TransitionDataset and trajectory splitting."""

import pytest

from repro.model.dataset import (
    RouteDataset,
    TransitionDataset,
    split_trajectory_into_transitions,
)
from repro.model.route import Route
from repro.model.transition import Transition


class TestRouteDataset:
    def test_add_get_remove(self):
        dataset = RouteDataset()
        route = Route(0, [(0, 0), (1, 1)])
        dataset.add(route)
        assert len(dataset) == 1
        assert dataset.get(0) is route
        assert 0 in dataset
        removed = dataset.remove(0)
        assert removed is route
        assert len(dataset) == 0

    def test_duplicate_id_raises(self):
        dataset = RouteDataset([Route(0, [(0, 0), (1, 1)])])
        with pytest.raises(ValueError):
            dataset.add(Route(0, [(2, 2), (3, 3)]))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            RouteDataset().remove(7)

    def test_version_increments(self):
        dataset = RouteDataset()
        v0 = dataset.version
        dataset.add(Route(0, [(0, 0), (1, 1)]))
        v1 = dataset.version
        dataset.remove(0)
        assert v0 < v1 < dataset.version

    def test_next_id(self):
        dataset = RouteDataset()
        assert dataset.next_id() == 0
        dataset.add(Route(4, [(0, 0), (1, 1)]))
        assert dataset.next_id() == 5

    def test_statistics(self, toy_routes):
        assert toy_routes.total_points() == sum(len(r) for r in toy_routes)
        assert len(toy_routes.travel_distances()) == len(toy_routes)
        assert len(toy_routes.detour_ratios()) == len(toy_routes)
        assert len(toy_routes.intervals()) == len(toy_routes)
        assert toy_routes.stop_counts() == [5, 5, 5, 3]
        box = toy_routes.bbox
        assert box.min_x == 0.0 and box.max_y == 8.0

    def test_iteration_order_is_insertion_order(self):
        dataset = RouteDataset(
            [Route(3, [(0, 0), (1, 1)]), Route(1, [(2, 2), (3, 3)])]
        )
        assert [r.route_id for r in dataset] == [3, 1]
        assert dataset.route_ids == [3, 1]


class TestTransitionDataset:
    def test_add_get_remove(self):
        dataset = TransitionDataset()
        t = Transition(0, (0, 0), (1, 1))
        dataset.add(t)
        assert dataset.get(0) is t
        assert 0 in dataset
        assert dataset.remove(0) is t
        assert len(dataset) == 0

    def test_duplicate_id_raises(self):
        dataset = TransitionDataset([Transition(0, (0, 0), (1, 1))])
        with pytest.raises(ValueError):
            dataset.add(Transition(0, (2, 2), (3, 3)))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            TransitionDataset().remove(1)

    def test_expire_before(self):
        dataset = TransitionDataset(
            [
                Transition(0, (0, 0), (1, 1), timestamp=1.0),
                Transition(1, (0, 0), (1, 1), timestamp=5.0),
                Transition(2, (0, 0), (1, 1)),  # no timestamp: never expires
            ]
        )
        expired = dataset.expire_before(3.0)
        assert [t.transition_id for t in expired] == [0]
        assert sorted(dataset.transition_ids) == [1, 2]

    def test_expire_before_nothing(self):
        dataset = TransitionDataset([Transition(0, (0, 0), (1, 1), timestamp=9.0)])
        version = dataset.version
        assert dataset.expire_before(1.0) == []
        assert dataset.version == version

    def test_statistics(self, toy_transitions):
        assert toy_transitions.total_points() == 2 * len(toy_transitions)
        box = toy_transitions.bbox
        assert box.max_x == pytest.approx(22.0)

    def test_next_id(self):
        dataset = TransitionDataset([Transition(10, (0, 0), (1, 1))])
        assert dataset.next_id() == 11


class TestTrajectorySplitting:
    def test_n_points_yield_n_minus_one_transitions(self):
        trajectory = [(0, 0), (1, 0), (2, 0), (3, 0)]
        transitions = split_trajectory_into_transitions(trajectory, start_id=5)
        assert len(transitions) == 3
        assert [t.transition_id for t in transitions] == [5, 6, 7]
        assert transitions[0].origin == (0.0, 0.0)
        assert transitions[0].destination == (1.0, 0.0)
        assert transitions[2].destination == (3.0, 0.0)

    def test_short_trajectories_yield_nothing(self):
        assert split_trajectory_into_transitions([]) == []
        assert split_trajectory_into_transitions([(0, 0)]) == []

    def test_timestamp_propagates(self):
        transitions = split_trajectory_into_transitions(
            [(0, 0), (1, 1)], timestamp=4.2
        )
        assert transitions[0].timestamp == 4.2
