"""Tests for the asyncio network serving front-end.

Three layers, bottom up:

* protocol unit tests — :mod:`repro.engine.protocol` request validation
  and canonical reply/event encoding, no socket involved;
* server behaviour over real TCP connections (``ServerThread`` +
  ``LineClient``): micro-batch coalescing, typed error replies
  (``bad_request`` / ``bad_update`` / ``pool_saturated`` /
  ``deadline_exceeded``) that never drop the connection, standing-query
  delta pushes, cross-connection watch isolation, degraded serial mode
  under injected worker crashes;
* the **differential protocol sweep**: N concurrent clients interleave
  queries, updates and watches against the server; the server's oplog is
  then replayed *serially* through a fresh :class:`RkNNTProcessor` and
  every reply each client received must be byte-identical to the serial
  answer — per client, in per-client order, per method × semantics ×
  backend.  Any cross-client result leakage, reordering or
  inconsistent-index-version read would break the equality.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import LineClient
from repro.core.rknnt import METHODS, RkNNTProcessor, VORONOI
from repro.engine import faults, protocol
from repro.engine.protocol import ProtocolError
from repro.engine.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_MS,
    RkNNTServer,
    ServerThread,
    server_max_batch,
    server_window_ms,
)
from repro.geometry.kernels import numpy_available
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

K = 3
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Every test starts and ends with no installed fault schedule.

    The chaos leg below installs a schedule lazily from ``RKNNT_FAULTS``;
    without this teardown the cached runtime would outlive the env var
    and leak into later tests (and their pools)."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# A small private world per test (the server mutates its transitions)
# ----------------------------------------------------------------------
def make_world(seed: int, route_count: int = 10, transition_count: int = 50):
    rng = random.Random(seed)
    routes = []
    for route_id in range(route_count):
        x, y = rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)
        points = [(x, y)]
        for _ in range(rng.randint(3, 5)):
            x = min(10.0, max(0.0, x + rng.uniform(-2.0, 2.0)))
            y = min(10.0, max(0.0, y + rng.uniform(-2.0, 2.0)))
            points.append((x, y))
        routes.append(Route(route_id, points))
    transitions = [
        Transition(
            tid,
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
            (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
        )
        for tid in range(transition_count)
    ]
    return RouteDataset(routes), TransitionDataset(transitions)


def fresh_processor(seed: int = 11):
    routes, transitions = make_world(seed)
    return RkNNTProcessor(routes, transitions)


def replay_oplog(oplog, seed: int = 11):
    """Serial oracle: replay a server oplog on a fresh processor.

    Returns (replies by seq, watches) where each reply is the canonical
    :func:`protocol.result_payload` the server should have produced for
    that query, and each watch maps its id to the serially-maintained
    subscription (left registered so callers can read its final state).
    """
    processor = fresh_processor(seed)
    replies = {}
    watches = {}
    for kind, entry in oplog:
        if kind == "query":
            result = processor.query_batch(
                [entry["points"]],
                entry["k"],
                method=entry["method"],
                semantics=entry["semantics"],
                backend=entry["backend"],
                exclude_route_ids=entry["exclude"] or None,
            )[0]
            replies[entry["seq"]] = protocol.result_payload(result)
        elif kind == "insert":
            processor.add_transition(
                Transition(
                    entry["transition_id"],
                    tuple(entry["origin"]),
                    tuple(entry["destination"]),
                )
            )
        elif kind == "delete":
            processor.remove_transition(entry["transition_id"])
        elif kind == "watch":
            watches[entry["watch"]] = processor.watch(
                entry["points"],
                entry["k"],
                method=entry["method"],
                semantics=entry["semantics"],
            )
        elif kind == "unwatch":
            pass  # subscriptions stay live so final membership is readable
    return processor, replies, watches


# ----------------------------------------------------------------------
# Protocol unit tests (no socket)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_valid_query_roundtrip(self):
        request = protocol.decode_request(
            json.dumps(
                {
                    "id": 7,
                    "op": "query",
                    "points": [[1.0, 2.0], [3, 4]],
                    "k": 5,
                    "method": "voronoi",
                    "semantics": "forall",
                    "exclude": [1, 2],
                }
            )
        )
        assert request.id == 7
        assert request.op == "query"
        assert request.points == [(1.0, 2.0), (3.0, 4.0)]
        assert request.k == 5
        assert request.method == "voronoi"
        assert request.semantics == "forall"
        assert request.exclude == (1, 2)

    def test_optional_fields_default_to_none(self):
        request = protocol.decode_request(
            '{"id": 0, "op": "query", "points": [[0, 0]]}'
        )
        assert request.k is None
        assert request.method is None
        assert request.semantics is None
        assert request.backend is None
        assert request.exclude == ()

    def test_insert_and_delete_shapes(self):
        insert = protocol.decode_request(
            json.dumps(
                {
                    "id": 1,
                    "op": "insert",
                    "transition": {
                        "id": 42,
                        "origin": [1, 2],
                        "destination": [3, 4],
                    },
                }
            )
        )
        assert insert.transition == (42, (1.0, 2.0), (3.0, 4.0))
        delete = protocol.decode_request(
            '{"id": 2, "op": "delete", "transition_id": 42}'
        )
        assert delete.transition_id == 42

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",  # not an object
            '{"op": "query", "points": [[0, 0]]}',  # missing id
            '{"id": true, "op": "ping"}',  # bool is not an int id
            '{"id": 1, "op": "frobnicate"}',  # unknown op
            '{"id": 1, "op": "query"}',  # missing points
            '{"id": 1, "op": "query", "points": []}',  # empty points
            '{"id": 1, "op": "query", "points": [[1]]}',  # not a pair
            '{"id": 1, "op": "query", "points": [["a", "b"]]}',  # non-numeric
            '{"id": 1, "op": "query", "points": [[0, 0]], "k": 0}',  # k < 1
            '{"id": 1, "op": "query", "points": [[0, 0]], "method": "magic"}',
            '{"id": 1, "op": "query", "points": [[0, 0]], "semantics": "most"}',
            '{"id": 1, "op": "query", "points": [[0, 0]], "exclude": ["r1"]}',
            '{"id": 1, "op": "insert", "transition": [42, 0, 0]}',
            '{"id": 1, "op": "insert", "transition": {"id": 42, "origin": [0, 0]}}',
            '{"id": 1, "op": "delete"}',
            '{"id": 1, "op": "unwatch"}',
        ],
    )
    def test_malformed_requests_raise_typed_error(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_request(line)
        assert excinfo.value.wire_code == "bad_request"

    def test_request_id_salvage(self):
        assert protocol.request_id_of('{"id": 9, "op": "nope"}') == 9
        assert protocol.request_id_of("garbage") is None
        assert protocol.request_id_of('{"id": "x"}') is None

    def test_encoding_is_canonical(self):
        processor = fresh_processor()
        result = processor.query([(2.0, 2.0)], K)
        payload_a = protocol.encode_line(
            protocol.ok_reply(1, result=protocol.result_payload(result))
        )
        payload_b = protocol.encode_line(
            protocol.ok_reply(1, result=protocol.result_payload(result))
        )
        assert payload_a == payload_b
        assert payload_a.endswith(b"\n")
        decoded = json.loads(payload_a)
        assert decoded["result"]["transitions"] == sorted(
            decoded["result"]["transitions"]
        )
        processor.close()

    def test_env_knob_defaults(self, monkeypatch):
        monkeypatch.delenv("RKNNT_SERVER_WINDOW_MS", raising=False)
        monkeypatch.delenv("RKNNT_SERVER_MAX_BATCH", raising=False)
        assert server_window_ms() == DEFAULT_WINDOW_MS
        assert server_max_batch() == DEFAULT_MAX_BATCH
        monkeypatch.setenv("RKNNT_SERVER_WINDOW_MS", "7.5")
        monkeypatch.setenv("RKNNT_SERVER_MAX_BATCH", "9")
        assert server_window_ms() == 7.5
        assert server_max_batch() == 9
        # Mistyped knobs fall back to defaults, like every other knob.
        monkeypatch.setenv("RKNNT_SERVER_WINDOW_MS", "soon")
        monkeypatch.setenv("RKNNT_SERVER_MAX_BATCH", "-3")
        assert server_window_ms() == DEFAULT_WINDOW_MS
        assert server_max_batch() == DEFAULT_MAX_BATCH


# ----------------------------------------------------------------------
# Server behaviour over real sockets
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_ping_query_and_stats(self):
        processor = fresh_processor()
        try:
            with ServerThread(processor, window_ms=1.0) as handle:
                with LineClient(handle.host, handle.port) as client:
                    pong = client.ping()
                    assert pong["ok"] and pong["pong"]
                    assert pong["protocol"] == protocol.PROTOCOL_VERSION
                    reply = client.query([(2.0, 2.0)], k=K)
                    assert reply["ok"]
                    expected = protocol.result_payload(
                        processor.query([(2.0, 2.0)], K)
                    )
                    assert reply["result"] == expected
                    stats = client.stats()
                    assert stats["queries"] == 1
                    assert stats["batches"] == 1
                    # The work-reuse counters ride along in every stats
                    # reply (worker deltas are merged into the parent
                    # context, so serving batches count too).
                    for counter in (
                        "subquery_hits",
                        "subquery_misses",
                        "locality_clusters",
                        "locality_seeded",
                        "locality_retested",
                        "shard_fallbacks",
                    ):
                        assert stats[counter] >= 0
        finally:
            processor.close()

    def test_malformed_lines_keep_connection_open(self):
        processor = fresh_processor()
        try:
            with ServerThread(processor, window_ms=1.0) as handle:
                with LineClient(handle.host, handle.port) as client:
                    for bad in (
                        "im not json",
                        '{"id": 1, "op": "conquer"}',
                        '{"id": 2, "op": "query", "points": [[1]]}',
                    ):
                        reply = client.send_raw(bad)
                        assert reply["ok"] is False
                        assert reply["error"]["code"] == "bad_request"
                    # the id is echoed when salvageable, null otherwise
                    assert client.send_raw('{"id": 5, "op": "bad"}')["id"] == 5
                    assert client.send_raw("garbage")["id"] is None
                    assert client.ping()["ok"]
                    stats = client.stats()
                    assert stats["rejected_protocol"] == 5
        finally:
            processor.close()

    def test_updates_apply_in_order_and_are_validated(self):
        processor = fresh_processor()
        try:
            with ServerThread(processor, window_ms=1.0) as handle:
                with LineClient(handle.host, handle.port) as client:
                    before = client.query([(2.0, 2.0)], k=K)
                    assert client.insert(900, (2.0, 2.0), (2.1, 2.1))["ok"]
                    duplicate = client.insert(900, (0.0, 0.0), (1.0, 1.0))
                    assert duplicate["error"]["code"] == "bad_update"
                    missing = client.delete(901)
                    assert missing["error"]["code"] == "bad_update"
                    after = client.query([(2.0, 2.0)], k=K)
                    assert after["version"] == 1
                    assert 900 in after["result"]["transitions"]
                    assert client.delete(900)["ok"]
                    reverted = client.query([(2.0, 2.0)], k=K)
                    assert reverted["result"] == before["result"]
                    assert reverted["version"] == 2
        finally:
            processor.close()

    def test_queries_coalesce_into_micro_batches(self):
        processor = fresh_processor()
        clients = 8
        per_client = 4
        try:
            with ServerThread(
                processor, window_ms=25.0, max_batch=64, workers=0
            ) as handle:
                barrier = threading.Barrier(clients)
                failures = []

                def run_client(cid):
                    try:
                        with LineClient(handle.host, handle.port) as client:
                            barrier.wait(timeout=30)
                            for i in range(per_client):
                                reply = client.query(
                                    [(2.0 + 0.1 * cid, 2.0 + 0.1 * i)], k=K
                                )
                                assert reply["ok"], reply
                    except Exception as error:  # pragma: no cover
                        failures.append(error)

                threads = [
                    threading.Thread(target=run_client, args=(cid,))
                    for cid in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert not failures
                with LineClient(handle.host, handle.port) as client:
                    stats = client.stats()
                assert stats["queries"] == clients * per_client
                # Coalescing must beat one-batch-per-query dispatch.
                assert stats["batches"] < stats["queries"]
                assert stats["max_batch_coalesced"] > 1
        finally:
            processor.close()

    def test_max_batch_caps_coalescing(self):
        processor = fresh_processor()
        try:
            with ServerThread(
                processor, window_ms=200.0, max_batch=2, workers=0
            ) as handle:
                clients = [LineClient(handle.host, handle.port) for _ in range(4)]
                try:
                    threads = [
                        threading.Thread(
                            target=lambda c=c: c.query([(2.0, 2.0)], k=K)
                        )
                        for c in clients
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=60)
                    stats = clients[0].stats()
                    assert stats["max_batch_coalesced"] <= 2
                    assert stats["queries"] == 4
                finally:
                    for client in clients:
                        client.close()
        finally:
            processor.close()


class TestBackpressureAndDeadlines:
    def test_saturation_yields_typed_replies_not_drops(self):
        processor = fresh_processor()
        try:
            # window far longer than the test: the first query holds its
            # admission slot while the others arrive.
            with ServerThread(
                processor, window_ms=1500.0, max_batch=64, queue_limit=1
            ) as handle:
                first_reply = {}

                def first():
                    with LineClient(handle.host, handle.port) as client:
                        first_reply.update(client.query([(2.0, 2.0)], k=K))

                holder = threading.Thread(target=first)
                holder.start()
                time.sleep(0.3)  # let the first query enter the window
                with LineClient(handle.host, handle.port) as client:
                    rejected = client.query([(3.0, 3.0)], k=K)
                    assert rejected["ok"] is False
                    assert rejected["error"]["code"] == "pool_saturated"
                    # the connection survives rejection...
                    assert client.ping()["ok"]
                    holder.join(timeout=60)
                    assert first_reply.get("ok") is True
                    # ...and the same connection's next query is admitted.
                    retried = client.query([(3.0, 3.0)], k=K)
                    assert retried["ok"] is True
                    stats = client.stats()
                    assert stats["rejected_saturated"] == 1
        finally:
            processor.close()

    def test_deadline_miss_is_a_typed_reply(self):
        processor = fresh_processor()
        try:
            with ServerThread(
                processor, window_ms=1.0, deadline_ms=0.000001
            ) as handle:
                with LineClient(handle.host, handle.port) as client:
                    reply = client.query([(2.0, 2.0)], k=K)
                    assert reply["ok"] is False
                    assert reply["error"]["code"] == "deadline_exceeded"
                    assert client.ping()["ok"]
                    stats = client.stats()
                    assert stats["deadline_misses"] == 1
        finally:
            processor.close()


class TestWatchOverTheWire:
    def test_deltas_push_to_the_owning_connection_only(self):
        processor = fresh_processor()
        try:
            with ServerThread(processor, window_ms=1.0) as handle:
                with LineClient(handle.host, handle.port) as watcher, LineClient(
                    handle.host, handle.port
                ) as updater:
                    registered = watcher.watch([(2.0, 2.0)], k=K)
                    assert registered["ok"]
                    watch_id = registered["watch"]
                    baseline = set(registered["result"]["transitions"])

                    assert updater.insert(900, (2.0, 2.0), (2.05, 2.05))["ok"]
                    assert updater.delete(900)["ok"]
                    # A query is a dispatcher serialization point: its
                    # reply is enqueued after every prior update's events.
                    assert watcher.query([(9.0, 9.0)], k=K)["ok"]
                    events = watcher.events()
                    assert [e["cause"] for e in events] == ["insert", "delete"]
                    assert all(e["watch"] == watch_id for e in events)
                    assert events[0]["added"] == [900]
                    assert events[1]["removed"] == [900]
                    # the updater connection never sees the watcher's events
                    assert updater.query([(9.0, 9.0)], k=K)["ok"]
                    assert updater.events() == []

                    # watches are private: another connection cannot
                    # unwatch them...
                    stolen = updater.unwatch(watch_id)
                    assert stolen["error"]["code"] == "bad_request"
                    # ...while the owner can.
                    assert watcher.unwatch(watch_id)["ok"]
                    assert updater.insert(901, (2.0, 2.0), (2.05, 2.05))["ok"]
                    assert watcher.query([(9.0, 9.0)], k=K)["ok"]
                    assert watcher.events() == []
                    # replaying the deltas over the baseline reproduces a
                    # fresh serial answer at the unwatch point
                    replayed = set(baseline)
                    for event in events:
                        replayed -= set(event["removed"])
                        replayed |= set(event["added"])
                    assert replayed == baseline
        finally:
            processor.close()

    def test_closed_connection_reaps_its_watches(self):
        processor = fresh_processor()
        try:
            with ServerThread(processor, window_ms=1.0) as handle:
                client = LineClient(handle.host, handle.port)
                assert client.watch([(2.0, 2.0)], k=K)["ok"]
                assert client.stats()["open_watches"] == 1
                client.close()
                with LineClient(handle.host, handle.port) as probe:
                    # an update serializes behind the _ConnClosed reaping
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        assert probe.insert(900, (0.0, 0.0), (1.0, 1.0))["ok"]
                        assert probe.delete(900)["ok"]
                        if probe.stats()["open_watches"] == 0:
                            break
                    assert probe.stats()["open_watches"] == 0
        finally:
            processor.close()


# ----------------------------------------------------------------------
# Resilience: injected worker crashes must not change answers
# ----------------------------------------------------------------------
class TestDegradedServing:
    def test_worker_crashes_degrade_but_answers_stay_identical(self, monkeypatch):
        monkeypatch.setenv("RKNNT_FAULTS", "worker_crash:after=0;count=1")
        monkeypatch.setenv("RKNNT_MAX_RESEEDS", "0")
        processor = fresh_processor()
        try:
            with ServerThread(
                processor,
                workers=2,
                window_ms=5.0,
                record_oplog=True,
            ) as handle:
                with LineClient(handle.host, handle.port) as client:
                    replies = [
                        client.query([(2.0 + 0.3 * i, 2.0)], k=K)
                        for i in range(6)
                    ]
                    assert all(reply["ok"] for reply in replies), replies
                    stats = client.stats()
                    assert stats["degraded"] is True
                oplog = list(handle.server.oplog)
        finally:
            processor.close()
        monkeypatch.delenv("RKNNT_FAULTS")
        monkeypatch.delenv("RKNNT_MAX_RESEEDS")
        oracle, serial_replies, _ = replay_oplog(oplog)
        try:
            for reply in replies:
                assert reply["result"] == serial_replies[reply["seq"]]
        finally:
            oracle.close()


# ----------------------------------------------------------------------
# The differential protocol sweep
# ----------------------------------------------------------------------
CLIENTS = 4
OPS_PER_CLIENT = 6


def run_client_script(handle, cid, method, semantics, backend, record, barrier):
    """One client's deterministic interleaving of queries/updates/watches."""
    rng = random.Random(1000 + cid)
    base_id = 100000 + cid * 1000
    inserted = []
    with LineClient(handle.host, handle.port) as client:
        barrier.wait(timeout=60)
        registered = client.watch(
            [(rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0))],
            k=K,
            method=method,
            semantics=semantics,
        )
        record["watch"] = registered
        for index in range(OPS_PER_CLIENT):
            roll = rng.random()
            if roll < 0.5:
                points = [
                    (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0))
                    for _ in range(rng.randint(1, 2))
                ]
                reply = client.query(
                    points, k=K, method=method, semantics=semantics, backend=backend
                )
            elif roll < 0.8 or not inserted:
                new_id = base_id + index
                reply = client.insert(
                    new_id,
                    (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
                    (rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)),
                )
                inserted.append(new_id)
            else:
                reply = client.delete(inserted.pop(0))
            record["replies"].append(reply)
        # Wait for every client to finish mutating, then issue one final
        # query: its reply serializes behind all prior updates, so every
        # delta event owed to this connection is already buffered.
        barrier.wait(timeout=60)
        record["final"] = client.query(
            [(5.0, 5.0)], k=K, method=method, semantics=semantics, backend=backend
        )
        record["events"] = client.events()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("semantics", ["exists", "forall"])
@pytest.mark.parametrize("method", METHODS)
def test_differential_concurrent_clients_vs_serial_replay(
    method, semantics, backend
):
    """Concurrent server ≡ serial replay, per method × semantics × backend."""
    processor = fresh_processor()
    records = [
        {"replies": [], "events": [], "watch": None, "final": None}
        for _ in range(CLIENTS)
    ]
    failures = []
    try:
        with ServerThread(
            processor, window_ms=5.0, max_batch=16, record_oplog=True
        ) as handle:
            barrier = threading.Barrier(CLIENTS)

            def runner(cid):
                try:
                    run_client_script(
                        handle, cid, method, semantics, backend,
                        records[cid], barrier,
                    )
                except Exception as error:  # pragma: no cover
                    failures.append((cid, error))

            threads = [
                threading.Thread(target=runner, args=(cid,))
                for cid in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, failures
            oplog = list(handle.server.oplog)
    finally:
        processor.close()

    oracle, serial_replies, serial_watches = replay_oplog(oplog)
    try:
        for cid, record in enumerate(records):
            seqs = []
            for reply in record["replies"] + [record["final"]]:
                assert reply["ok"], (cid, reply)
                seqs.append(reply["seq"])
                if "result" in reply:
                    # zero leakage/reordering: the answer for THIS seq
                    assert reply["result"] == serial_replies[reply["seq"]], (
                        cid,
                        reply["seq"],
                    )
            # per-client response ordering: seq strictly increases in the
            # order the client observed its replies
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), cid

            # standing query: baseline + received deltas == serial replay
            watch_reply = record["watch"]
            assert watch_reply["ok"], (cid, watch_reply)
            watch_id = watch_reply["watch"]
            assert all(e["watch"] == watch_id for e in record["events"]), cid
            standing = set(watch_reply["result"]["transitions"])
            for event in record["events"]:
                standing -= set(event["removed"])
                standing |= set(event["added"])
            serial_sub = serial_watches[watch_id]
            assert standing == set(serial_sub.transition_ids), cid
            # and the serially-maintained subscription itself matches a
            # fresh query on the replayed dataset
            fresh = oracle.query(
                serial_sub.query_points, K, method=method, semantics=semantics
            )
            assert serial_sub.transition_ids == fresh.transition_ids
    finally:
        oracle.close()


def test_differential_with_persistent_pool():
    """The same differential check with a live 2-worker serving pool."""
    processor = fresh_processor()
    records = [
        {"replies": [], "events": [], "watch": None, "final": None}
        for _ in range(CLIENTS)
    ]
    failures = []
    try:
        with ServerThread(
            processor,
            workers=2,
            window_ms=5.0,
            max_batch=16,
            record_oplog=True,
        ) as handle:
            barrier = threading.Barrier(CLIENTS)

            def runner(cid):
                try:
                    run_client_script(
                        handle, cid, VORONOI, "exists", "auto",
                        records[cid], barrier,
                    )
                except Exception as error:  # pragma: no cover
                    failures.append((cid, error))

            threads = [
                threading.Thread(target=runner, args=(cid,))
                for cid in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, failures
            with LineClient(handle.host, handle.port) as probe:
                stats = probe.stats()
            assert stats["pools_spawned"] >= 1
            assert stats["degraded"] is False
            oplog = list(handle.server.oplog)
    finally:
        processor.close()

    oracle, serial_replies, _ = replay_oplog(oplog)
    try:
        for cid, record in enumerate(records):
            for reply in record["replies"] + [record["final"]]:
                assert reply["ok"], (cid, reply)
                if "result" in reply:
                    assert reply["result"] == serial_replies[reply["seq"]]
    finally:
        oracle.close()


# ----------------------------------------------------------------------
# The CLI front door
# ----------------------------------------------------------------------
def test_cli_server_subprocess(tmp_path):
    from repro.cli import main as cli_main

    data_dir = tmp_path / "data"
    assert cli_main(["generate", "--preset", "mini", "--output-dir", str(data_dir)]) == 0

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "server",
            "--data-dir",
            str(data_dir),
            "--k",
            "3",
            "--port",
            "0",
            "--window-ms",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        assert "serving RkNNT on" in banner, banner
        address = banner.split("serving RkNNT on ", 1)[1].split()[0]
        host, port = address.rsplit(":", 1)
        with LineClient(host, int(port)) as client:
            assert client.ping()["ok"]
            reply = client.query([(3.0, 4.0)], k=3)
            assert reply["ok"]
            assert client.insert(999999, (3.0, 4.0), (3.1, 4.1))["ok"]
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 0, (out, err)
        assert "served 1 queries" in out
        assert "1 updates" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
