"""Tests for the transition (check-in) generator."""

import math
import statistics

import pytest

from repro.data.checkins import TransitionGenerator
from repro.data.synthetic import CityGenerator
from repro.model.dataset import RouteDataset
from repro.model.route import Route


@pytest.fixture(scope="module")
def routes():
    return CityGenerator(width=10, height=10, grid_spacing=1.5, seed=5).generate(8).routes


class TestValidation:
    def test_empty_routes_rejected(self):
        with pytest.raises(ValueError):
            TransitionGenerator(RouteDataset())

    def test_bad_fractions_rejected(self, routes):
        with pytest.raises(ValueError):
            TransitionGenerator(routes, noise_fraction=1.5)
        with pytest.raises(ValueError):
            TransitionGenerator(routes, same_route_probability=-0.1)

    def test_negative_count_rejected(self, routes):
        generator = TransitionGenerator(routes)
        with pytest.raises(ValueError):
            list(generator.iter_transitions(-1))


class TestGeneration:
    def test_count_and_ids(self, routes):
        generator = TransitionGenerator(routes, seed=1)
        dataset = generator.generate(200, start_id=10)
        assert len(dataset) == 200
        assert min(dataset.transition_ids) == 10
        assert max(dataset.transition_ids) == 209

    def test_timestamps_optional(self, routes):
        generator = TransitionGenerator(routes, seed=1)
        with_ts = generator.generate(5, timestamps=True)
        without_ts = generator.generate(5)
        assert all(t.timestamp is not None for t in with_ts)
        assert all(t.timestamp is None for t in without_ts)

    def test_reproducibility(self, routes):
        a = TransitionGenerator(routes, seed=3).generate(50)
        b = TransitionGenerator(routes, seed=3).generate(50)
        for first, second in zip(a, b):
            assert first.origin == second.origin
            assert first.destination == second.destination

    def test_streaming_matches_generate(self, routes):
        streamed = list(TransitionGenerator(routes, seed=4).iter_transitions(30))
        materialised = list(TransitionGenerator(routes, seed=4).generate(30))
        assert [t.origin for t in streamed] == [t.origin for t in materialised]

    def test_transitions_cluster_near_routes(self, routes):
        """The structural property RkNNT pruning relies on (Figure 8)."""
        generator = TransitionGenerator(routes, walk_radius=0.3, noise_fraction=0.0, seed=6)
        dataset = generator.generate(300)
        distances = []
        for transition in dataset:
            for point in transition.points:
                distances.append(
                    min(route.distance_to_point(point) for route in routes)
                )
        # With a 0.3 walk radius the median endpoint is within ~2 sigma of a stop.
        assert statistics.median(distances) < 1.0

    def test_noise_fraction_spreads_points(self, routes):
        clustered = TransitionGenerator(
            routes, walk_radius=0.2, noise_fraction=0.0, seed=7
        ).generate(200)
        noisy = TransitionGenerator(
            routes, walk_radius=0.2, noise_fraction=1.0, seed=7
        ).generate(200)

        def mean_distance(dataset):
            total, count = 0.0, 0
            for transition in dataset:
                for point in transition.points:
                    total += min(route.distance_to_point(point) for route in routes)
                    count += 1
            return total / count

        assert mean_distance(noisy) > mean_distance(clustered)


class TestTrajectories:
    def test_trajectory_length_validation(self, routes):
        generator = TransitionGenerator(routes, seed=1)
        with pytest.raises(ValueError):
            generator.generate_trajectory(1)
        with pytest.raises(ValueError):
            generator.generate_from_trajectories(3, min_length=1)

    def test_split_counts(self, routes):
        generator = TransitionGenerator(routes, seed=2)
        dataset = generator.generate_from_trajectories(
            10, min_length=3, max_length=3, start_id=100
        )
        # Ten 3-point trajectories yield 20 transitions with consecutive ids.
        assert len(dataset) == 20
        assert min(dataset.transition_ids) == 100
        assert max(dataset.transition_ids) == 119

    def test_trajectory_points_count(self, routes):
        generator = TransitionGenerator(routes, seed=3)
        assert len(generator.generate_trajectory(5)) == 5
