"""Tests for the bus-network graph."""

import math

import pytest

from repro.model.dataset import RouteDataset
from repro.model.route import Route
from repro.planning.graph import BusNetwork


@pytest.fixture
def small_network():
    """A 2x3 grid-ish network with known weights."""
    network = BusNetwork()
    positions = {
        0: (0.0, 0.0),
        1: (1.0, 0.0),
        2: (2.0, 0.0),
        3: (0.0, 1.0),
        4: (1.0, 1.0),
        5: (2.0, 1.0),
    }
    for vertex, position in positions.items():
        network.add_vertex(vertex, position)
    for u, v in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]:
        network.add_edge(u, v)
    return network


class TestConstruction:
    def test_vertex_bookkeeping(self, small_network):
        assert small_network.vertex_count == 6
        assert small_network.edge_count == 7
        assert len(small_network) == 6
        assert 0 in small_network
        assert 99 not in small_network

    def test_duplicate_vertex_raises(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_vertex(0, (5.0, 5.0))

    def test_edge_requires_vertices(self, small_network):
        with pytest.raises(KeyError):
            small_network.add_edge(0, 99)

    def test_self_loop_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_edge(0, 0)

    def test_negative_weight_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.add_edge(0, 4, weight=-1.0)

    def test_default_weight_is_euclidean(self, small_network):
        assert small_network.edge_weight(0, 1) == pytest.approx(1.0)
        assert small_network.edge_weight(1, 0) == pytest.approx(1.0)

    def test_parallel_edge_keeps_smaller_weight(self, small_network):
        small_network.add_edge(0, 1, weight=5.0)
        assert small_network.edge_weight(0, 1) == pytest.approx(1.0)
        small_network.add_edge(0, 1, weight=0.5)
        assert small_network.edge_weight(0, 1) == pytest.approx(0.5)

    def test_neighbors_and_degree(self, small_network):
        assert set(small_network.neighbors(1)) == {0, 2, 4}
        assert small_network.degree(1) == 3

    def test_edges_iteration_counts_each_once(self, small_network):
        edges = list(small_network.edges())
        assert len(edges) == small_network.edge_count
        assert all(u < v for u, v, _ in edges)


class TestFromRoutes:
    def test_shared_stops_become_one_vertex(self):
        routes = RouteDataset(
            [
                Route(0, [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]),
                Route(1, [(1.0, 0.0), (1.0, 1.0)]),
            ]
        )
        network = BusNetwork.from_routes(routes)
        assert network.vertex_count == 4
        assert network.edge_count == 3
        shared = network.vertex_at((1.0, 0.0))
        assert shared is not None
        assert set(network.neighbors(shared)) == {
            network.vertex_at((0.0, 0.0)),
            network.vertex_at((2.0, 0.0)),
            network.vertex_at((1.0, 1.0)),
        }

    def test_consecutive_duplicate_points_do_not_self_loop(self):
        routes = RouteDataset([Route(0, [(0.0, 0.0), (0.0, 0.0), (1.0, 0.0)])])
        network = BusNetwork.from_routes(routes)
        assert network.vertex_count == 2
        assert network.edge_count == 1

    def test_toy_routes_table2_statistics(self, toy_routes):
        network = BusNetwork.from_routes(toy_routes)
        # 18 points, two of which are shared crossover stops.
        assert network.vertex_count == 16
        assert network.edge_count >= 14


class TestPathHelpers:
    def test_path_distance_uses_edge_weights(self, small_network):
        assert small_network.path_distance([0, 1, 2]) == pytest.approx(2.0)

    def test_path_distance_falls_back_to_euclidean(self, small_network):
        # 0 -> 5 is not an edge; Euclidean distance is used.
        assert small_network.path_distance([0, 5]) == pytest.approx(math.hypot(2, 1))

    def test_path_points_and_route(self, small_network):
        points = small_network.path_points([0, 1, 4])
        assert points == [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]
        route = small_network.path_to_route(9, [0, 1, 4])
        assert route.route_id == 9
        assert len(route) == 3

    def test_nearest_vertex(self, small_network):
        assert small_network.nearest_vertex((1.9, 1.2)) == 5
        assert small_network.nearest_vertex((0.1, -0.2)) == 0

    def test_nearest_vertex_empty_network(self):
        with pytest.raises(ValueError):
            BusNetwork().nearest_vertex((0, 0))
