"""Tests for the synthetic city generator."""

import math

import pytest

from repro.data.synthetic import CityGenerator, SyntheticCity
from repro.planning.shortest_path import dijkstra


@pytest.fixture(scope="module")
def small_city():
    generator = CityGenerator(width=12.0, height=12.0, grid_spacing=1.5, seed=42)
    return generator.generate(10, name="testville")


class TestStreetGraph:
    def test_grid_dimensions(self):
        generator = CityGenerator(width=10.0, height=5.0, grid_spacing=1.0, seed=1)
        graph = generator.generate_street_graph()
        columns = int(10.0 / 1.0) + 1
        rows = int(5.0 / 1.0) + 1
        assert graph.vertex_count == rows * columns
        # At least the 4-neighbour lattice edges exist.
        assert graph.edge_count >= rows * (columns - 1) + columns * (rows - 1)

    def test_street_graph_is_connected(self):
        generator = CityGenerator(width=8.0, height=8.0, grid_spacing=1.0, seed=2)
        graph = generator.generate_street_graph()
        distances, _ = dijkstra(graph, next(iter(graph.vertices())))
        assert len(distances) == graph.vertex_count

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CityGenerator(width=0.0)
        with pytest.raises(ValueError):
            CityGenerator(grid_spacing=-1.0)


class TestRoutes:
    def test_requested_route_count(self, small_city):
        assert len(small_city.routes) == 10

    def test_routes_have_reasonable_length(self, small_city):
        for route in small_city.routes:
            assert len(route) >= 3
            assert route.travel_distance > 0.0

    def test_route_points_lie_on_street_graph(self, small_city):
        street_vertices = {
            tuple(small_city.street_graph.position(v))
            for v in small_city.street_graph.vertices()
        }
        for route in small_city.routes:
            for point in route.points:
                assert tuple(point) in street_vertices

    def test_routes_are_loopless(self, small_city):
        for route in small_city.routes:
            assert len(set((p.x, p.y) for p in route.points)) == len(route)

    def test_detour_ratios_match_figure6_shape(self, small_city):
        """Figure 6: the detour ratio should mostly stay below ~3."""
        ratios = small_city.routes.detour_ratios()
        assert all(r >= 1.0 - 1e-9 for r in ratios)
        assert sum(1 for r in ratios if r <= 3.0) >= 0.8 * len(ratios)

    def test_invalid_route_count(self, small_city):
        generator = CityGenerator(seed=3)
        graph = generator.generate_street_graph()
        with pytest.raises(ValueError):
            generator.generate_routes(graph, 0)

    def test_reproducibility(self):
        first = CityGenerator(width=10, height=10, grid_spacing=1.5, seed=7).generate(5)
        second = CityGenerator(width=10, height=10, grid_spacing=1.5, seed=7).generate(5)
        for a, b in zip(first.routes, second.routes):
            assert a.points == b.points

    def test_different_seeds_differ(self):
        first = CityGenerator(width=10, height=10, grid_spacing=1.5, seed=1).generate(5)
        second = CityGenerator(width=10, height=10, grid_spacing=1.5, seed=2).generate(5)
        assert any(a.points != b.points for a, b in zip(first.routes, second.routes))


class TestCityBundle:
    def test_network_built_from_routes(self, small_city):
        total_distinct_stops = len(
            {tuple(p) for route in small_city.routes for p in route.points}
        )
        assert small_city.network.vertex_count == total_distinct_stops

    def test_bounds_cover_routes(self, small_city):
        min_x, min_y, max_x, max_y = small_city.bounds
        for route in small_city.routes:
            for point in route.points:
                assert min_x <= point.x <= max_x
                assert min_y <= point.y <= max_y

    def test_name_recorded(self, small_city):
        assert small_city.name == "testville"
