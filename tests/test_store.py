"""Tests of the persistent memory-mapped columnar store.

The persistence contract, end to end:

    store-backed processor ≡ pickle-backed processor ≡ brute force

per method × semantics × backend — plus the durability guarantees that
make the store safe to ship to production: the file format is
byte-deterministic, every corruption mode surfaces as a typed
:class:`StoreError` (never a garbage answer), column views are
read-only, a reseed handle stays under 4 KiB, and when an attach fails
mid-serving (injected fault, file deleted underneath a live pool) the
executor degrades loudly to the pickle path with identical answers.
"""

import os
import pickle
import shutil
import struct

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import METHODS, RkNNTProcessor
from repro.engine import faults
from repro.engine import store as store_module
from repro.engine.resilience import StoreError
from repro.geometry.kernels import numpy_available

K = 3
QUERY_COUNT = 4
WORKERS = 2

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the store packs/maps columns with the numpy backend",
)


@pytest.fixture(scope="module")
def packed(tmp_path_factory, mini_processor):
    """One packed store shared by the read-only tests: ``(path, handle)``."""
    if not numpy_available():
        pytest.skip("the store packs/maps columns with the numpy backend")
    path = str(tmp_path_factory.mktemp("store") / "mini.store")
    handle = store_module.save_indexes(
        path, mini_processor.route_index, mini_processor.transition_index
    )
    return path, handle


@pytest.fixture(scope="module")
def store_queries(mini_workload):
    queries = mini_workload.query_routes(QUERY_COUNT, length=4, interval=0.8)
    queries.append(queries[0][:1])  # single-point degenerate case
    return queries


def _endpoint_sets(processor, queries, **kwargs):
    return [
        result.confirmed_endpoints
        for result in processor.query_batch(queries, K, **kwargs)
    ]


@needs_numpy
class TestFormat:
    def test_save_is_byte_deterministic(self, tmp_path, mini_processor):
        paths = [str(tmp_path / name) for name in ("a.store", "b.store")]
        for path in paths:
            store_module.save_indexes(
                path,
                mini_processor.route_index,
                mini_processor.transition_index,
            )
        with open(paths[0], "rb") as first, open(paths[1], "rb") as second:
            assert first.read() == second.read()

    def test_preamble_layout(self, packed):
        path, handle = packed
        with open(path, "rb") as fh:
            preamble = fh.read(store_module._PREAMBLE.size)
        magic, version, meta_len, _crc = store_module._PREAMBLE.unpack(preamble)
        assert magic == store_module.MAGIC
        assert version == store_module.FORMAT_VERSION
        assert meta_len > 0
        assert handle.nbytes == os.path.getsize(path)

    def test_column_offsets_are_aligned(self, packed):
        path, _ = packed
        with store_module.open_store(path) as store:
            for spec in store.columns.values():
                if spec.kind == store_module.KIND_F64:
                    assert spec.offset % store_module.ALIGNMENT == 0

    def test_views_are_read_only(self, packed):
        path, _ = packed
        with store_module.open_store(path) as store:
            columns = store.route_columns()
            for view in (columns.routes.points, columns.routes.ids):
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[0] = 0

    def test_open_handle_matches_save_handle(self, packed):
        path, handle = packed
        assert store_module.open_handle(path) == handle

    def test_handle_pickles_under_4kib(self, packed):
        _, handle = packed
        payload = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(payload) < 4096


def _corrupt(path: str, target: str, mode: str) -> None:
    data = bytearray(open(path, "rb").read())
    if mode == "truncated-preamble":
        data = data[:10]
    elif mode == "truncated-body":
        data = data[: len(data) // 2]
    elif mode == "bad-magic":
        data[:8] = b"NOTASTOR"
    elif mode == "bad-version":
        struct.pack_into("<I", data, 8, 99)
    elif mode == "flipped-meta-byte":
        data[store_module._PREAMBLE.size + 4] ^= 0xFF
    else:  # pragma: no cover - guards test typos
        raise AssertionError(mode)
    with open(target, "wb") as handle:
        handle.write(bytes(data))


@needs_numpy
class TestCorruption:
    """Every way the file can rot must raise a typed ``StoreError``."""

    MODES = [
        "truncated-preamble",
        "truncated-body",
        "bad-magic",
        "bad-version",
        "flipped-meta-byte",
    ]

    @pytest.mark.parametrize("mode", MODES)
    def test_corrupt_file_raises_typed_error(self, tmp_path, packed, mode):
        path, _ = packed
        target = str(tmp_path / f"{mode}.store")
        _corrupt(path, target, mode)
        with pytest.raises(StoreError) as excinfo:
            store_module.open_store(target)
        assert excinfo.value.wire_code == "store_attach_failed"

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(StoreError):
            store_module.open_store(str(tmp_path / "nowhere.store"))

    def test_attach_detects_file_swap(self, tmp_path, packed, toy_processor):
        """A handle minted from one file refuses a different file's bytes."""
        path = str(tmp_path / "swapped.store")
        shutil.copy(packed[0], path)
        handle = store_module.open_handle(path)
        store_module.save_indexes(
            path, toy_processor.route_index, toy_processor.transition_index
        )
        with pytest.raises(StoreError):
            store_module.attach(handle)

    def test_injected_attach_fault_is_typed(self, packed):
        _, handle = packed
        with faults.injected("store_attach:count=1"):
            with pytest.raises(StoreError):
                store_module.attach(handle)
        # The fault budget is spent: the very next attach succeeds.
        store_module.attach(handle).close()


@pytest.mark.skipif(
    numpy_available(), reason="exercises the no-numpy refusal path"
)
class TestPurePythonGating:
    def test_save_requires_numpy(self, tmp_path, toy_processor):
        with pytest.raises(StoreError):
            store_module.save_indexes(
                str(tmp_path / "x.store"),
                toy_processor.route_index,
                toy_processor.transition_index,
            )

    def test_open_requires_numpy(self, tmp_path):
        with pytest.raises(StoreError):
            store_module.open_store(str(tmp_path / "x.store"))


@needs_numpy
class TestLazyBoot:
    def test_from_store_defers_decoding(self, packed):
        path, _ = packed
        processor = RkNNTProcessor.from_store(path)
        assert "routes" not in processor.route_index.__dict__
        assert "transitions" not in processor.transition_index.__dict__
        processor.query([(2.0, 2.0), (3.0, 2.5)], K)
        assert "tree" in processor.route_index.__dict__

    def test_from_store_accepts_handle(self, packed, store_queries):
        _, handle = packed
        processor = RkNNTProcessor.from_store(handle)
        assert processor.engine_context.store_handle == handle
        assert processor.query_batch(store_queries, K)

    def test_store_context_survives_pickling(self, packed, store_queries):
        """The pickle round-trip drops the mmap, keeps the answers."""
        processor = RkNNTProcessor.from_store(packed[0])
        expected = _endpoint_sets(processor, store_queries)
        clone = pickle.loads(pickle.dumps(processor.engine_context))
        assert clone._store_attachment is None
        # Materialised clone answers identically through the raw engine.
        from repro.engine.executor import execute
        from repro.engine.plan import QueryPlan

        plan = QueryPlan.for_method("filter-refine")
        results = [
            execute(clone, query, K, plan, semantics="exists")
            for query in store_queries
        ]
        assert [r.confirmed_endpoints for r in results] == expected


@needs_numpy
class TestStoreDifferential:
    """store-backed ≡ pickle-backed ≡ brute force, the full matrix."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    @pytest.mark.parametrize("method", METHODS)
    def test_store_backed_equals_direct_equals_bruteforce(
        self, packed, mini_city, mini_transitions, mini_processor,
        store_queries, method, semantics, backend,
    ):
        stored = RkNNTProcessor.from_store(packed[0])
        kwargs = dict(method=method, semantics=semantics, backend=backend)
        from_store = _endpoint_sets(stored, store_queries, **kwargs)
        direct = _endpoint_sets(mini_processor, store_queries, **kwargs)
        assert from_store == direct
        for query, result in zip(
            store_queries, stored.query_batch(store_queries, K, **kwargs)
        ):
            oracle = rknnt_bruteforce(
                mini_city.routes, mini_transitions, query, K,
                semantics=semantics,
            )
            assert result.transition_ids == oracle.transition_ids


@needs_numpy
class TestServingPoolSeeding:
    """Workers boot from the store handle, not a multi-megabyte pickle."""

    @pytest.mark.parametrize("start_method", [None, "spawn"])
    def test_store_seed_is_compact_and_skips_arena(
        self, packed, mini_processor, store_queries, start_method
    ):
        processor = RkNNTProcessor.from_store(packed[0])
        expected = _endpoint_sets(mini_processor, store_queries)
        with processor.serving_pool(
            workers=WORKERS, start_method=start_method
        ) as pool:
            pooled = _endpoint_sets(
                processor, store_queries, workers=WORKERS
            )
            assert pool.store_seeds == 1
            assert pool.store_fallbacks == 0
            assert pool.last_seed_nbytes < 4096
            # The store file IS the shared memory: no arena published.
            assert pool.arena is None
        assert pooled == expected

    def test_attach_fault_degrades_to_pickle_path(
        self, packed, mini_processor, store_queries, caplog
    ):
        processor = RkNNTProcessor.from_store(packed[0])
        expected = _endpoint_sets(mini_processor, store_queries)
        with faults.injected(f"store_attach:count={WORKERS * 2}"):
            with processor.serving_pool(workers=WORKERS) as pool:
                with caplog.at_level("WARNING", "repro.engine.parallel"):
                    pooled = _endpoint_sets(
                        processor, store_queries, workers=WORKERS
                    )
                assert pool.store_fallbacks >= 1
                # Fallback reseeds carry the full pickle, not the handle.
                assert pool.last_seed_nbytes > 4096
        assert pooled == expected
        assert any(
            "store seed failed" in record.message for record in caplog.records
        )

    def test_file_deleted_while_attached_degrades_loudly(
        self, tmp_path, packed, mini_processor, store_queries
    ):
        path = str(tmp_path / "doomed.store")
        shutil.copy(packed[0], path)
        processor = RkNNTProcessor.from_store(path)
        expected = _endpoint_sets(mini_processor, store_queries)
        # Serial queries keep working after deletion: the parent's mapping
        # pins the pages even though the directory entry is gone.
        os.remove(path)
        assert _endpoint_sets(processor, store_queries) == expected
        # New workers cannot re-open the file — they must fall back.
        with processor.serving_pool(workers=WORKERS) as pool:
            pooled = _endpoint_sets(processor, store_queries, workers=WORKERS)
            assert pool.store_fallbacks >= 1
        assert pooled == expected
