"""Differential tests of the parallel sharded execution layer.

The contract, per method × semantics × backend:

    query_batch(workers=N)  ≡  query_batch(workers=0)  ≡  rknnt_bruteforce

element-wise, in workload order, regardless of shard sizes or completion
order.  Plus the serialisation contract that makes sharding cheap: pickling
an :class:`~repro.engine.context.ExecutionContext` must never carry its
derived caches (route matrix, memoised sub-queries).
"""

import pickle

import pytest

from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import DIVIDE_CONQUER, METHODS, RkNNTProcessor
from repro.engine.context import ExecutionContext
from repro.engine import parallel
from repro.engine.parallel import (
    DEFAULT_MIN_SHARD_BATCH,
    MIN_SHARD_BATCH_ENV,
    ShardedExecutor,
    available_cpu_count,
    min_shard_batch,
    resolve_worker_count,
)
from repro.engine.plan import QueryPlan, VORONOI
from repro.geometry.kernels import numpy_available
from repro.planning.precompute import VertexRkNNTIndex

K = 3
QUERY_COUNT = 5
WORKERS = 2

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def shard_queries(mini_workload):
    queries = mini_workload.query_routes(QUERY_COUNT, length=4, interval=0.8)
    queries.append(queries[0][:1])  # single-point degenerate case
    return queries


@pytest.fixture(autouse=True)
def force_pool_path(monkeypatch):
    """Exercise the real pool path even on single-CPU runners.

    ``RKNNT_MIN_SHARD_BATCH=0`` disables ``query_batch``'s serial
    fallback so the sharded ≡ serial contract is tested against actual
    worker processes (the fallback itself is covered by
    :class:`TestSerialFallback`, which restores the default).
    """
    monkeypatch.setenv("RKNNT_MIN_SHARD_BATCH", "0")


class TestShardedEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("semantics", ["exists", "forall"])
    def test_sharded_equals_serial_equals_bruteforce(
        self, mini_city, mini_transitions, mini_processor, shard_queries,
        method, semantics,
    ):
        mini_processor.engine_context.clear_caches()
        serial = mini_processor.query_batch(
            shard_queries, K, method=method, semantics=semantics
        )
        sharded = mini_processor.query_batch(
            shard_queries, K, method=method, semantics=semantics, workers=WORKERS
        )
        assert len(sharded) == len(serial)
        for query, expected, actual in zip(shard_queries, serial, sharded):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints
            assert actual.transition_ids == expected.transition_ids
            oracle = rknnt_bruteforce(
                mini_city.routes, mini_transitions, query, K, semantics=semantics
            )
            assert actual.transition_ids == oracle.transition_ids

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_backends_agree(
        self, mini_processor, shard_queries, backend
    ):
        serial = mini_processor.query_batch(
            shard_queries, K, method=VORONOI, backend=backend
        )
        sharded = mini_processor.query_batch(
            shard_queries, K, method=VORONOI, backend=backend, workers=WORKERS
        )
        for expected, actual in zip(serial, sharded):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints

    @pytest.mark.parametrize("method", METHODS)
    def test_route_queries_exclude_themselves_per_shard(
        self, mini_city, mini_processor, method
    ):
        routes = list(mini_city.routes)[:4]
        serial = mini_processor.query_batch(routes, K, method=method)
        sharded = mini_processor.query_batch(
            routes, K, method=method, workers=WORKERS
        )
        for expected, actual in zip(serial, sharded):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints

    def test_single_worker_and_single_query_shards(
        self, mini_processor, shard_queries
    ):
        # workers=1 exercises the whole worker machinery without
        # parallelism; chunk_size=1 forces one shard per query, so result
        # re-ordering is maximally stressed.
        serial = mini_processor.query_batch(shard_queries, K)
        single = mini_processor.query_batch(shard_queries, K, workers=1)
        plan = QueryPlan.for_method(VORONOI, share_subquery_cache=True)
        jobs = [
            ([(float(x), float(y)) for x, y in query], frozenset())
            for query in shard_queries
        ]
        with ShardedExecutor(
            mini_processor.engine_context, workers=WORKERS, chunk_size=1
        ) as sharded:
            tiny_shards = sharded.run(jobs, K, plan)
        for expected, one, many in zip(serial, single, tiny_shards):
            assert one.confirmed_endpoints == expected.confirmed_endpoints
            assert many.confirmed_endpoints == expected.confirmed_endpoints

    def test_empty_workload(self, mini_processor):
        assert mini_processor.query_batch([], K, workers=WORKERS) == []

    def test_pool_is_reused_across_runs(self, mini_processor, shard_queries):
        plan = QueryPlan.for_method(VORONOI, share_subquery_cache=True)
        jobs = [
            ([(float(x), float(y)) for x, y in query], frozenset())
            for query in shard_queries
        ]
        serial = mini_processor.query_batch(shard_queries, K)
        with ShardedExecutor(
            mini_processor.engine_context, workers=WORKERS
        ) as sharded:
            first = sharded.run(jobs, K, plan)
            second = sharded.run(jobs, K, plan)
        for expected, a, b in zip(serial, first, second):
            assert a.confirmed_endpoints == expected.confirmed_endpoints
            assert b.confirmed_endpoints == expected.confirmed_endpoints

    def test_reused_pool_rebuilds_after_dynamic_updates(self, mini_city):
        # A reused executor must never serve answers from a pre-update
        # worker snapshot: the pool is version-guarded like every other
        # derived cache.
        from repro.data.checkins import TransitionGenerator
        from repro.model.transition import Transition

        transitions = TransitionGenerator(mini_city.routes, seed=11).generate(120)
        processor = RkNNTProcessor(mini_city.routes, transitions)
        query = [(2.0, 2.0), (3.0, 2.5)]
        jobs = [(query, frozenset())]
        plan = QueryPlan.for_method(VORONOI, share_subquery_cache=True)
        with ShardedExecutor(
            processor.engine_context, workers=WORKERS
        ) as sharded:
            before = sharded.run(jobs, K, plan)[0]
            assert (
                before.confirmed_endpoints
                == processor.query_batch([query], K)[0].confirmed_endpoints
            )
            new_id = transitions.next_id()
            processor.add_transition(Transition(new_id, (2.1, 2.1), (2.4, 2.6)))
            after = sharded.run(jobs, K, plan)[0]
            expected = processor.query_batch([query], K)[0]
            assert after.confirmed_endpoints == expected.confirmed_endpoints
            assert new_id in after.transition_ids


class TestWorkerKnob:
    def test_resolve_worker_count(self):
        assert resolve_worker_count(None) == available_cpu_count()
        assert resolve_worker_count(3) == 3
        # 0 means "in-process" on every other surface; a pool cannot honour
        # that, so the executor refuses it instead of spawning all CPUs.
        with pytest.raises(ValueError):
            resolve_worker_count(0)
        with pytest.raises(ValueError):
            resolve_worker_count(-1)

    def test_invalid_chunk_size(self, mini_processor):
        with pytest.raises(ValueError):
            ShardedExecutor(mini_processor.engine_context, chunk_size=0)


class TestSerialFallback:
    """``query_batch(workers=N)`` declines to spawn a per-call pool when it
    cannot pay off — too few CPUs, or a batch below
    ``RKNNT_MIN_SHARD_BATCH`` — answering serially (identically) instead
    and counting the fallback.  Persistent serving pools are exempt (their
    setup cost is sunk); those paths are covered in test_serving.py."""

    def test_small_batch_answers_serially(
        self, mini_processor, shard_queries, monkeypatch
    ):
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, str(len(shard_queries) + 1))
        context = mini_processor.engine_context
        before = context.shard_fallbacks
        serial = mini_processor.query_batch(shard_queries, K)
        fell_back = mini_processor.query_batch(shard_queries, K, workers=WORKERS)
        assert context.shard_fallbacks == before + 1
        for expected, actual in zip(serial, fell_back):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints

    def test_single_cpu_answers_serially(
        self, mini_processor, shard_queries, monkeypatch
    ):
        monkeypatch.delenv(MIN_SHARD_BATCH_ENV, raising=False)
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 1)
        context = mini_processor.engine_context
        before = context.shard_fallbacks
        serial = mini_processor.query_batch(shard_queries, K)
        fell_back = mini_processor.query_batch(shard_queries, K, workers=WORKERS)
        assert context.shard_fallbacks == before + 1
        for expected, actual in zip(serial, fell_back):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints

    def test_zero_disables_the_fallback(
        self, mini_processor, shard_queries, monkeypatch
    ):
        # Even on one CPU, 0 forces the requested pool (the escape hatch
        # this module's autouse fixture relies on).
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, "0")
        monkeypatch.setattr(parallel, "available_cpu_count", lambda: 1)
        context = mini_processor.engine_context
        before = context.shard_fallbacks
        serial = mini_processor.query_batch(shard_queries, K)
        pooled = mini_processor.query_batch(shard_queries, K, workers=WORKERS)
        assert context.shard_fallbacks == before
        for expected, actual in zip(serial, pooled):
            assert actual.confirmed_endpoints == expected.confirmed_endpoints

    def test_min_shard_batch_parsing(self, monkeypatch):
        monkeypatch.delenv(MIN_SHARD_BATCH_ENV, raising=False)
        assert min_shard_batch() == DEFAULT_MIN_SHARD_BATCH
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, "7")
        assert min_shard_batch() == 7
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, "0")
        assert min_shard_batch() == 0
        # A mistyped tuning knob must never change answers or crash.
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, "lots")
        assert min_shard_batch() == DEFAULT_MIN_SHARD_BATCH
        monkeypatch.setenv(MIN_SHARD_BATCH_ENV, "-3")
        assert min_shard_batch() == DEFAULT_MIN_SHARD_BATCH


class TestContextPickling:
    def test_derived_caches_are_stripped(self, mini_city, mini_processor):
        context = mini_processor.engine_context
        # Warm both derived caches, then ship the context.
        if numpy_available():
            assert len(context.route_matrix().blocks) >= 1
        mini_processor.query_batch(
            [[(2.0, 2.0), (3.0, 2.5)]], K, method=DIVIDE_CONQUER
        )
        state = context.__getstate__()
        assert state["_route_matrix"] is None
        assert state["_subqueries"] == {}
        assert state["subquery_hits"] == 0
        assert state["subquery_misses"] == 0

        clone = pickle.loads(pickle.dumps(context))
        assert isinstance(clone, ExecutionContext)
        assert clone._route_matrix is None
        assert clone._subqueries == {}
        # The clone answers queries identically to the original.
        query = [(2.0, 2.0), (3.0, 2.5)]
        plan = QueryPlan.for_method(VORONOI)
        from repro.engine.executor import run_stages

        expected, _ = run_stages(context, query, K, plan)
        actual, _ = run_stages(clone, query, K, plan)
        assert actual == expected

    def test_pickle_roundtrip_excludes_cache_payload_bytes(self, mini_processor):
        context = mini_processor.engine_context
        context.clear_caches()
        cold = len(pickle.dumps(context))
        # Warm the sub-query cache heavily; the pickled size must not grow
        # with it (the caches are derived state, rebuilt per worker).
        mini_processor.query_batch(
            [[(float(i), float(i % 5))] for i in range(25)],
            K,
            method=DIVIDE_CONQUER,
        )
        warm = len(pickle.dumps(context))
        assert warm == cold


class TestPlanningShardedBuild:
    def test_sharded_build_matches_serial(self, mini_city, mini_processor):
        serial = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        serial.build(workers=0)
        sharded = VertexRkNNTIndex(mini_city.network, mini_processor, k=K)
        sharded.build(workers=WORKERS)
        for vertex in mini_city.network.vertices():
            assert sharded.vertex_endpoints(vertex) == serial.vertex_endpoints(
                vertex
            ), vertex
        assert sharded.report.vertices == serial.report.vertices


class TestBatchHandle:
    """The non-blocking dispatch primitive the network server flushes
    micro-batches through."""

    def test_handle_resolves_with_run_result(self, mini_processor, shard_queries):
        from repro.engine.parallel import BatchHandle

        context = mini_processor.engine_context
        plan = QueryPlan.for_method(VORONOI)
        jobs = [(query, None) for query in shard_queries]
        with ShardedExecutor(context, workers=WORKERS) as executor:
            serial = executor._run_serial(jobs, K, plan, "exists", None)
            handle = executor.run_handle(jobs, K, plan)
            assert isinstance(handle, BatchHandle)
            results = handle.result(timeout=120)
            assert handle.done()
            assert [r.transition_ids for r in results] == [
                r.transition_ids for r in serial
            ]

    def test_handle_surfaces_exceptions(self):
        from repro.engine.parallel import BatchHandle

        def boom():
            raise RuntimeError("kaput")

        handle = BatchHandle(boom)
        with pytest.raises(RuntimeError, match="kaput"):
            handle.result(timeout=30)
        assert handle.done()

    def test_handle_runs_off_the_calling_thread(self):
        import threading

        from repro.engine.parallel import BatchHandle

        seen = {}

        def record():
            seen["thread"] = threading.current_thread()
            return 42

        handle = BatchHandle(record, label="rknnt-test-handle")
        assert handle.result(timeout=30) == 42
        assert seen["thread"] is not threading.current_thread()
        assert seen["thread"].name == "rknnt-test-handle"
        assert seen["thread"].daemon
