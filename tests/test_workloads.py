"""Tests for the city presets and the query workload generators."""

import math

import pytest

from repro.data.workloads import CITY_PRESETS, QueryWorkload, make_city
from repro.geometry.point import euclidean, path_length


class TestPresets:
    def test_known_presets(self):
        assert {"la", "nyc", "mini"} <= set(CITY_PRESETS)

    def test_nyc_larger_than_la(self):
        # The paper's relative dataset sizes must be preserved.
        assert CITY_PRESETS["nyc"].route_count > CITY_PRESETS["la"].route_count
        assert (
            CITY_PRESETS["nyc"].transition_count > CITY_PRESETS["la"].transition_count
        )

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            make_city("tokyo")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            make_city("mini", scale=0.0)

    def test_make_city_counts(self):
        city, transitions = make_city("mini")
        assert len(city.routes) == CITY_PRESETS["mini"].route_count
        assert len(transitions) == CITY_PRESETS["mini"].transition_count

    def test_scale_multiplies_counts(self):
        city, transitions = make_city("mini", scale=0.5)
        assert len(city.routes) == round(CITY_PRESETS["mini"].route_count * 0.5)
        assert len(transitions) == round(
            CITY_PRESETS["mini"].transition_count * 0.5
        )

    def test_reproducible(self):
        first_city, first_transitions = make_city("mini")
        second_city, second_transitions = make_city("mini")
        assert [r.points for r in first_city.routes] == [
            r.points for r in second_city.routes
        ]
        assert [t.origin for t in first_transitions] == [
            t.origin for t in second_transitions
        ]


class TestQueryRoutes:
    def test_length_and_interval(self, mini_city):
        workload = QueryWorkload(mini_city, seed=0)
        query = workload.random_query_route(6, 1.5)
        assert len(query) == 6
        for first, second in zip(query, query[1:]):
            assert euclidean(first, second) == pytest.approx(1.5)

    def test_single_point_query(self, mini_city):
        workload = QueryWorkload(mini_city, seed=0)
        assert len(workload.random_query_route(1, 2.0)) == 1

    def test_bounded_turn_angle(self, mini_city):
        workload = QueryWorkload(mini_city, seed=1)
        query = workload.random_query_route(8, 1.0, max_turn_degrees=90.0)
        headings = [
            math.atan2(b[1] - a[1], b[0] - a[0]) for a, b in zip(query, query[1:])
        ]
        for first, second in zip(headings, headings[1:]):
            turn = abs(math.degrees(second - first))
            turn = min(turn, 360.0 - turn)
            assert turn <= 45.0 + 1e-6  # half of the 90° budget per step

    def test_invalid_arguments(self, mini_city):
        workload = QueryWorkload(mini_city, seed=0)
        with pytest.raises(ValueError):
            workload.random_query_route(0, 1.0)
        with pytest.raises(ValueError):
            workload.random_query_route(3, 0.0)

    def test_batch_generation(self, mini_city):
        workload = QueryWorkload(mini_city, seed=0)
        queries = workload.query_routes(7, 4, 1.0)
        assert len(queries) == 7
        assert all(len(q) == 4 for q in queries)

    def test_starts_on_existing_route_point(self, mini_city):
        workload = QueryWorkload(mini_city, seed=2)
        route_points = {
            (p.x, p.y) for route in mini_city.routes for p in route.points
        }
        for query in workload.query_routes(5, 3, 1.0):
            assert tuple(query[0]) in route_points

    def test_existing_route_queries(self, mini_city):
        workload = QueryWorkload(mini_city, seed=3)
        all_ids = workload.existing_route_queries()
        assert sorted(all_ids) == sorted(mini_city.routes.route_ids)
        sample = workload.existing_route_queries(count=3)
        assert len(sample) == 3
        assert set(sample) <= set(mini_city.routes.route_ids)


class TestPlanningQueries:
    def test_straight_distance_respected(self, mini_city):
        workload = QueryWorkload(mini_city, seed=4)
        start, end = workload.planning_query(5.0, tolerance=0.4)
        distance = euclidean(
            mini_city.network.position(start), mini_city.network.position(end)
        )
        assert 3.0 <= distance <= 7.0

    def test_impossible_distance_raises(self, mini_city):
        workload = QueryWorkload(mini_city, seed=5)
        with pytest.raises(RuntimeError):
            workload.planning_query(1000.0, tolerance=0.01, max_attempts=50)

    def test_batch(self, mini_city):
        workload = QueryWorkload(mini_city, seed=6)
        queries = workload.planning_queries(4, 5.0, tolerance=0.5)
        assert len(queries) == 4
        assert all(start != end for start, end in queries)
