"""Ablation: how much pruning power each filtering ingredient contributes.

DESIGN.md calls out two design choices in the filter phase:

1. the Voronoi per-route filtering space (Section 5.1) on top of the basic
   per-point half-space filter;
2. the crossover-route priority (points shared by many routes are tried
   first, Section 4.2.1).

This benchmark measures the number of candidate endpoints that survive
pruning with and without the Voronoi filter, and the number of R-tree nodes
pruned, on the same query batch.  The Voronoi filter may never *increase* the
number of candidates — that is the invariant asserted here — and the recorded
table shows by how much it helps at this scale.
"""

from __future__ import annotations

from repro.bench.parameters import DEFAULT_INTERVAL, DEFAULT_K, DEFAULT_QUERY_LENGTH
from repro.bench.reporting import format_table
from repro.core.filtering import FilterRefineEngine


def run_engine(processor, query, k, use_voronoi):
    engine = FilterRefineEngine(
        processor.route_index,
        processor.transition_index,
        k,
        use_voronoi=use_voronoi,
    )
    engine.run(query)
    return engine.stats


def test_ablation_voronoi_filtering_power(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    queries = workload.query_routes(
        max(2, bench_scale.queries_per_point),
        DEFAULT_QUERY_LENGTH,
        DEFAULT_INTERVAL * bench_scale.distance_scale,
    )

    rows = []
    for index, query in enumerate(queries):
        plain = run_engine(processor, query, DEFAULT_K, use_voronoi=False)
        voronoi = run_engine(processor, query, DEFAULT_K, use_voronoi=True)
        # The Voronoi filtering space is a superset of the per-point one, so
        # it can only reduce the candidate set.
        assert voronoi.candidates <= plain.candidates
        rows.append(
            {
                "query": index,
                "plain_candidates": plain.candidates,
                "voronoi_candidates": voronoi.candidates,
                "plain_nodes_pruned": plain.nodes_pruned,
                "voronoi_nodes_pruned": voronoi.nodes_pruned,
                "plain_filter_s": plain.filtering_seconds,
                "voronoi_filter_s": voronoi.filtering_seconds,
            }
        )

    write_result(
        "ablation_voronoi_filtering",
        format_table(
            rows,
            title="Ablation — candidates surviving pruning with / without the Voronoi filter",
        ),
    )

    query = queries[0]
    benchmark(run_engine, processor, query, DEFAULT_K, True)
