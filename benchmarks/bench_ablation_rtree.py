"""Ablation: STR bulk loading vs incremental insertion for the RR-tree.

DESIGN.md builds the RR-tree / TR-tree with Sort-Tile-Recursive packing and
falls back to Guttman insertion only for dynamic updates.  This ablation
quantifies that choice: it builds the same route index both ways and compares
(a) construction cost and (b) query cost of the best-first traversal that the
RkNNT filter phase relies on.

Invariants asserted (deterministic, scale-independent):

* both trees index exactly the same entries and answer nearest-neighbour
  queries identically;
* the bulk-loaded tree is never taller than the incrementally built one.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.index.inverted import point_key
from repro.index.rtree import RTree, RTreeEntry


def route_point_entries(routes):
    """Deduplicated route-point entries exactly as RouteIndex builds them."""
    routes_by_point = {}
    for route in routes:
        for point in route.points:
            routes_by_point.setdefault(point_key(point), set()).add(route.route_id)
    return [
        RTreeEntry(location, frozenset(ids))
        for location, ids in routes_by_point.items()
    ]


def build_bulk(entries):
    return RTree.bulk_load(entries, max_entries=16, track_payload_union=True)


def build_incremental(entries):
    tree = RTree(max_entries=16, track_payload_union=True)
    for entry in entries:
        tree.insert(RTreeEntry(entry.point, entry.payload))
    return tree


def test_ablation_bulk_load_vs_incremental(benchmark, la_bundle, write_result):
    city, _, _, workload = la_bundle
    entries = route_point_entries(city.routes)

    started = time.perf_counter()
    bulk_tree = build_bulk(entries)
    bulk_seconds = time.perf_counter() - started

    started = time.perf_counter()
    incremental_tree = build_incremental(entries)
    incremental_seconds = time.perf_counter() - started

    # Both trees hold the same data and give identical answers.
    assert len(bulk_tree) == len(incremental_tree) == len(entries)
    probes = [q[0] for q in workload.query_routes(10, 1, 1.0)]
    for probe in probes:
        bulk_nearest = bulk_tree.nearest_neighbors(probe, k=3)
        incremental_nearest = incremental_tree.nearest_neighbors(probe, k=3)
        assert [round(d, 9) for d, _ in bulk_nearest] == [
            round(d, 9) for d, _ in incremental_nearest
        ]
    assert bulk_tree.height() <= incremental_tree.height()

    # Query cost of the best-first traversal over both trees.
    def drain(tree):
        total = 0
        for probe in probes:
            for _ in tree.iter_nearest(probe):
                total += 1
        return total

    started = time.perf_counter()
    drain(bulk_tree)
    bulk_query_seconds = time.perf_counter() - started
    started = time.perf_counter()
    drain(incremental_tree)
    incremental_query_seconds = time.perf_counter() - started

    rows = [
        {
            "strategy": "STR bulk load",
            "build_s": bulk_seconds,
            "height": bulk_tree.height(),
            "full_scan_s": bulk_query_seconds,
        },
        {
            "strategy": "incremental insert",
            "build_s": incremental_seconds,
            "height": incremental_tree.height(),
            "full_scan_s": incremental_query_seconds,
        },
    ]
    write_result(
        "ablation_rtree_bulk_load",
        format_table(
            rows, title="Ablation — RR-tree construction: STR bulk load vs insertion"
        ),
    )

    benchmark(build_bulk, entries)
