"""Table 5: pre-computation cost (per-vertex RkNNT + all-pairs shortest paths).

The paper reports the two phases separately for k = 1, 5, 10 on LA and NYC
(about 1.5-5 minutes each on their testbed).  The reproduction reports the
same breakdown on the scaled datasets and asserts the structural trend that
the RkNNT phase grows with k while the shortest-path phase does not depend on
k at all.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.planning.precompute import VertexRkNNTIndex


def test_table5_precomputation_cost(benchmark, la_bundle, nyc_bundle, bench_scale, write_result):
    k_values = (1, 5) if bench_scale.name == "smoke" else (1, 5, 10)
    rows = []
    reports = {}
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        city, _, processor, _ = bundle
        # Restrict the per-vertex phase to a sample of vertices at smoke scale
        # so Table 5 stays cheap; the per-vertex cost is what matters.
        vertices = list(city.network.vertices())
        if bench_scale.name == "smoke":
            vertices = vertices[:: max(1, len(vertices) // 40)]
        for k in k_values:
            # Table 5 times the *cold* pre-computation; drop the engine
            # context's memoised sub-queries (earlier benchmarks sharing
            # this processor may have populated them).
            processor.engine_context.clear_caches()
            index = VertexRkNNTIndex(city.network, processor, k=k)
            report = index.build(vertices=vertices)
            reports[(name, k)] = report
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "vertices": report.vertices,
                    "rknnt_s": report.rknnt_seconds,
                    "shortest_s": report.shortest_path_seconds,
                    "total_s": report.total_seconds,
                }
            )

    for name in ("LA-like", "NYC-like"):
        small_k = reports[(name, k_values[0])]
        large_k = reports[(name, k_values[-1])]
        # The RkNNT phase gets slower as k grows (pruning gets weaker),
        # the trend Table 5 shows across its columns.
        assert large_k.rknnt_seconds >= small_k.rknnt_seconds * 0.8
        assert small_k.total_seconds > 0.0

    write_result(
        "table5_precompute",
        format_table(rows, title="Table 5 — pre-computation time (seconds)"),
    )

    city, _, processor, _ = la_bundle
    sample_vertex = next(iter(city.network.vertices()))
    index = VertexRkNNTIndex(city.network, processor, k=k_values[0])
    benchmark(index.vertex_endpoints, sample_vertex)
