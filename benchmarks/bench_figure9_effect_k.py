"""Figure 9: RkNNT running time as k grows (LA and NYC).

The paper's finding: all three methods slow down as k increases (fewer nodes
can be filtered by k routes), and Divide-Conquer < Voronoi < Filter-Refine
throughout.  We reproduce the sweep on both scaled cities and assert that
ordering on the aggregate times.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    K_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import DIVIDE_CONQUER, FILTER_REFINE, VORONOI


def run_sweep(bundle, scale, k_values):
    _, _, processor, workload = bundle
    return sweep_parameter(
        processor,
        workload,
        parameter="k",
        values=list(k_values),
        queries_per_value=scale.queries_per_point,
        k=DEFAULT_K,
        query_length=DEFAULT_QUERY_LENGTH,
        interval=DEFAULT_INTERVAL * scale.distance_scale,
    )


def method_timing(sweep, value, method):
    for timing in sweep.timings[value]:
        if timing.method == method:
            return timing
    raise KeyError(method)


def test_figure9_effect_of_k(benchmark, la_bundle, nyc_bundle, bench_scale, write_result):
    k_values = K_VALUES[:4] if bench_scale.name == "smoke" else K_VALUES
    sections = []
    sweeps = {}
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        sweep = run_sweep(bundle, bench_scale, k_values)
        sweeps[name] = sweep
        sections.append(
            format_table(
                sweep.rows(), title=f"Figure 9 ({name}) — CPU cost vs k"
            )
        )

    for name, sweep in sweeps.items():
        for value in sweep.values:
            fr = method_timing(sweep, value, FILTER_REFINE)
            vo = method_timing(sweep, value, VORONOI)
            dc = method_timing(sweep, value, DIVIDE_CONQUER)
            # All methods answer the same queries identically.
            assert fr.result_size == vo.result_size == dc.result_size
            # The Voronoi filter is strictly stronger than the basic one, so
            # it can never leave *more* candidates for verification
            # (deterministic pruning-power shape of Figures 9-10).
            assert vo.candidates <= fr.candidates + 1e-9

        # Shape check: cost grows with k (pruning gets harder), which is the
        # paper's headline trend in Figure 9.
        fr_series = [seconds for _, seconds in sweep.series(FILTER_REFINE)]
        assert fr_series[-1] > fr_series[0]
        fr_candidates = [
            method_timing(sweep, value, FILTER_REFINE).candidates
            for value in sweep.values
        ]
        assert fr_candidates[-1] >= fr_candidates[0]

    write_result("figure9_effect_k", "\n\n".join(sections))

    # pytest-benchmark datum: one Voronoi query at the default parameters.
    _, _, processor, workload = la_bundle
    query = workload.random_query_route(
        DEFAULT_QUERY_LENGTH, DEFAULT_INTERVAL * bench_scale.distance_scale
    )
    benchmark(processor.query, query, DEFAULT_K, method=VORONOI)
