"""Network serving front-end: micro-batch coalescing vs a lone client.

Not a figure of the paper: this benchmark quantifies the serving-layer win
of the asyncio front-end (PR 8).  The same query workload is pushed through
one :class:`~repro.engine.server.RkNNTServer` two ways —

* **single client**: one blocking :class:`~repro.cli.LineClient` issues
  every query in a loop, so each query pays the full admission window and
  a whole dispatch round-trip by itself;
* **concurrent clients**: ``CLIENT_COUNT`` threaded clients issue the same
  number of queries each, arriving inside shared admission windows, so the
  dispatcher coalesces them into micro-batches and each flush amortises
  the window and the pool round-trip across the whole batch

— and the aggregate QPS ratio is reported.

Correctness is asserted **differentially before any timing is trusted**:
the server records its oplog, every recorded query is replayed serially
through the same processor, and each client's replies must be equal to the
serial answer for exactly the queries that client sent (zero cross-client
leakage), received in strictly increasing dispatch order (per-client
ordering).  The line client itself enforces reply-id matching, so a
misrouted reply fails the run rather than skewing it.

Acceptance bars:

* with ≥ 2 usable CPUs, ``CLIENT_COUNT`` concurrent clients sustain
  ≥ ``COALESCE_SPEEDUP_BAR``× the aggregate QPS of the single-client
  loop;
* the concurrent phase must actually coalesce (max batch > 1);
* zero shared-memory segments remain after teardown.

Results are written as a text table, as JSON rows under
``benchmarks/results/``, and appended to the repo-root ``BENCH_batch.json``
trajectory artifact so per-PR CI runs accumulate comparable numbers.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time

from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.cli import LineClient
from repro.core.rknnt import VORONOI
from repro.engine import arena, protocol
from repro.engine.parallel import available_cpu_count
from repro.engine.server import ServerThread
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

SERVE_K = 5
SERVE_WORKERS = 2

#: Concurrent connections in the coalescing phase (the acceptance bar of
#: the issue: 32 clients on >= 2 CPUs).
CLIENT_COUNT = 32

#: Queries each client issues per timed phase.
QUERIES_PER_CLIENT = 4

#: Admission window.  Long enough that concurrent arrivals genuinely share
#: windows on a loaded runner, short enough that the single-client loop
#: (which pays it per query) finishes promptly.
WINDOW_MS = 3.0

#: Required aggregate-QPS win of coalesced concurrent serving over the
#: loop-of-single-client baseline.
COALESCE_SPEEDUP_BAR = 1.5


def _client_queries(workload, bench_scale, client_id):
    """A deterministic per-client query list (distinct across clients, so
    leakage would change answers, not just timings)."""
    queries = workload.query_routes(
        QUERIES_PER_CLIENT, 3, 2.0 * bench_scale.distance_scale
    )
    offset = 0.001 * (client_id + 1)
    return [[(x + offset, y + offset) for x, y in query] for query in queries]


def _run_single_client(handle, queries):
    replies = []
    with LineClient(handle.host, handle.port) as client:
        started = time.perf_counter()
        for points in queries:
            replies.append(client.query(points, k=SERVE_K, method=VORONOI))
        elapsed = time.perf_counter() - started
    return replies, elapsed


def _run_concurrent_clients(handle, per_client_queries):
    replies = [[] for _ in per_client_queries]
    failures = []
    barrier = threading.Barrier(len(per_client_queries) + 1)

    def run(client_id, queries):
        try:
            with LineClient(handle.host, handle.port, timeout=120.0) as client:
                barrier.wait(timeout=120)
                for points in queries:
                    replies[client_id].append(
                        client.query(points, k=SERVE_K, method=VORONOI)
                    )
        except Exception as error:  # noqa: BLE001 — reported by the assert
            failures.append((client_id, error))

    threads = [
        threading.Thread(target=run, args=(client_id, queries), daemon=True)
        for client_id, queries in enumerate(per_client_queries)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=120)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert not failures, failures
    return replies, elapsed


def _serial_answers(processor, oplog):
    """Replay every recorded query serially; answers keyed by dispatch seq."""
    answers = {}
    for kind, entry in oplog:
        if kind != "query":
            continue
        result = processor.query_batch(
            [entry["points"]],
            entry["k"],
            method=entry["method"],
            semantics=entry["semantics"],
            backend=entry["backend"],
            exclude_route_ids=entry["exclude"] or None,
        )[0]
        answers[entry["seq"]] = protocol.result_payload(result)
    return answers


def _assert_differential(per_client_replies, serial_answers):
    """Zero leakage + per-client ordering, against the serial replay."""
    seen = set()
    for client_id, replies in enumerate(per_client_replies):
        seqs = []
        for reply in replies:
            assert reply["ok"], (client_id, reply)
            seqs.append(reply["seq"])
            assert reply["result"] == serial_answers[reply["seq"]], (
                f"client {client_id} got a reply diverging from the serial "
                f"answer for dispatch seq {reply['seq']}"
            )
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), (
            f"client {client_id} observed replies out of dispatch order"
        )
        assert not (set(seqs) & seen), f"dispatch seq shared across clients"
        seen.update(seqs)


def test_server_coalescing(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    cpus = available_cpu_count()
    workers = SERVE_WORKERS if cpus >= 2 else 0

    per_client_queries = [
        _client_queries(workload, bench_scale, client_id)
        for client_id in range(CLIENT_COUNT)
    ]
    single_queries = [q for queries in per_client_queries for q in queries]
    total = len(single_queries)

    with ServerThread(
        processor,
        workers=workers,
        window_ms=WINDOW_MS,
        max_batch=CLIENT_COUNT * 2,
        record_oplog=True,
    ) as handle:
        # Warm the pool (and the indexes) outside every timed region.
        with LineClient(handle.host, handle.port) as client:
            assert client.query(single_queries[0], k=SERVE_K)["ok"]

        single_replies, single_seconds = _run_single_client(
            handle, single_queries
        )
        concurrent_replies, concurrent_seconds = _run_concurrent_clients(
            handle, per_client_queries
        )

        with LineClient(handle.host, handle.port) as client:
            stats = client.stats()
        oplog = list(handle.server.oplog)

    # Correctness before timing: both phases replayed serially.
    serial = _serial_answers(processor, oplog)
    _assert_differential([single_replies], serial)
    _assert_differential(concurrent_replies, serial)

    qps_single = total / single_seconds if single_seconds else math.inf
    qps_concurrent = total / concurrent_seconds if concurrent_seconds else math.inf
    speedup = qps_concurrent / qps_single if qps_single else math.inf

    rows = [
        {
            "mode": "single client loop",
            "clients": 1,
            "queries": total,
            "best_s": single_seconds,
            "qps": qps_single,
        },
        {
            "mode": "concurrent coalesced",
            "clients": CLIENT_COUNT,
            "queries": total,
            "best_s": concurrent_seconds,
            "qps": qps_concurrent,
        },
    ]
    table = format_table(
        rows,
        title=(
            f"micro-batch coalescing ({CLIENT_COUNT} clients, k={SERVE_K}, "
            f"workers={workers}, window={WINDOW_MS}ms, cpus={cpus}, "
            f"speedup {speedup:.2f}x, max batch "
            f"{stats['max_batch_coalesced']})"
        ),
    )
    write_result("server_coalescing", table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "server_coalescing",
        "clients": CLIENT_COUNT,
        "queries": total,
        "k": SERVE_K,
        "workers": workers,
        "window_ms": WINDOW_MS,
        "cpus": cpus,
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "single_s": single_seconds,
        "concurrent_s": concurrent_seconds,
        "qps_single": qps_single,
        "qps_concurrent": qps_concurrent,
        "speedup": speedup,
        "batches": stats["batches"],
        "max_batch_coalesced": stats["max_batch_coalesced"],
    }
    with open(
        os.path.join(RESULTS_DIR, "server_coalescing.json"), "w", encoding="utf-8"
    ) as handle_file:
        json.dump(payload, handle_file, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    # Acceptance bar: the concurrent phase actually coalesced.
    assert stats["max_batch_coalesced"] > 1, (
        "concurrent clients never shared an admission window"
    )
    # Acceptance bar: no shared-memory segment survives the server.
    assert arena.active_segment_names() == [], (
        f"leaked shared-memory segments: {arena.active_segment_names()}"
    )
    if cpus >= 2:
        # Acceptance bar: coalesced concurrent serving must beat the
        # loop-of-single-client baseline.  On single-CPU machines both
        # phases are correctness-checked above but the ratio is noise.
        assert speedup >= COALESCE_SPEEDUP_BAR, (
            f"expected >= {COALESCE_SPEEDUP_BAR}x aggregate QPS from "
            f"{CLIENT_COUNT} coalesced clients, got {speedup:.2f}x "
            f"({qps_concurrent:.0f} vs {qps_single:.0f} qps)"
        )

    # pytest-benchmark datum: one query round-trip through a warm server.
    with ServerThread(processor, workers=0, window_ms=0.5) as handle:
        with LineClient(handle.host, handle.port) as client:
            client.query(single_queries[0], k=SERVE_K)
            benchmark(client.query, single_queries[0], k=SERVE_K)
