"""Figure 21: four routes between the same start and end stops.

The paper's closing case study compares, for one origin/destination pair in
NYC: the original bus route, the shortest route, the MaxRkNNT route and the
MinRkNNT route — reporting search time (ST), number of passengers (NP),
travel distance (TD) and number of stops.

Paper shape reproduced and asserted here:
* the MaxRkNNT route attracts at least as many passengers as the original and
  the shortest routes;
* the MinRkNNT route attracts the fewest passengers;
* the shortest route has the smallest travel distance.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.planning.maxrknnt import MINIMIZE
from repro.planning.precompute import VertexRkNNTIndex
from repro.planning.shortest_path import shortest_path


def pick_representative_route(city):
    """A median-length route whose endpoints are distinct network vertices.

    The paper uses one representative Manhattan route; the median keeps the
    candidate space of the exhaustive comparison tractable at benchmark scale.
    """
    candidates = sorted(city.routes, key=lambda route: route.travel_distance)
    candidates = candidates[len(candidates) // 2 :]  # median and longer
    for route in candidates:
        start = city.network.vertex_at(tuple(route.points[0]))
        end = city.network.vertex_at(tuple(route.points[-1]))
        if start is not None and end is not None and start != end:
            return route, start, end
    raise RuntimeError("no representative route found")


def test_figure21_route_comparison(
    benchmark, nyc_bundle, nyc_vertex_index, nyc_planner, write_result
):
    city, _, _, _ = nyc_bundle
    route, start, end = pick_representative_route(city)
    tau = route.travel_distance * 1.05

    def passengers_of(vertices):
        return len(
            VertexRkNNTIndex.exists_ids(nyc_vertex_index.route_endpoints(vertices))
        )

    original_vertices = [city.network.vertex_at(tuple(p)) for p in route.points]
    original = {
        "route": "original",
        "search_s": 0.0,
        "passengers": passengers_of(original_vertices),
        "distance_km": route.travel_distance,
        "stops": len(route),
    }

    started = time.perf_counter()
    shortest_distance, shortest_vertices = shortest_path(city.network, start, end)
    shortest_row = {
        "route": "shortest",
        "search_s": time.perf_counter() - started,
        "passengers": passengers_of(shortest_vertices),
        "distance_km": shortest_distance,
        "stops": len(shortest_vertices),
    }

    max_route = nyc_planner.plan(start, end, tau)
    max_row = {
        "route": "MaxRkNNT",
        "search_s": max_route.stats.seconds,
        "passengers": max_route.passengers,
        "distance_km": max_route.travel_distance,
        "stops": max_route.stop_count,
    }

    min_route = nyc_planner.plan(start, end, tau, objective=MINIMIZE)
    min_row = {
        "route": "MinRkNNT",
        "search_s": min_route.stats.seconds,
        "passengers": min_route.passengers,
        "distance_km": min_route.travel_distance,
        "stops": min_route.stop_count,
    }

    rows = [original, shortest_row, max_row, min_row]

    # Paper shape assertions.  Dominance pruning is a heuristic, so when the
    # pruned optimum looks worse than the original route the certified search
    # (no dominance) is consulted before judging the shape.
    best_max = max_row["passengers"]
    if best_max < max(original["passengers"], shortest_row["passengers"]):
        exact = nyc_planner.plan(start, end, tau, use_dominance=False)
        best_max = max(best_max, exact.passengers)
    assert best_max >= original["passengers"]
    assert best_max >= shortest_row["passengers"]
    assert min_row["passengers"] <= max_row["passengers"]
    assert shortest_row["distance_km"] <= max_row["distance_km"] + 1e-9
    assert max_row["distance_km"] <= tau + 1e-9
    assert min_row["distance_km"] <= tau + 1e-9

    write_result(
        "figure21_route_comparison",
        format_table(
            rows,
            title=(
                "Figure 21 (NYC) — original vs shortest vs MaxRkNNT vs MinRkNNT "
                f"(start={start}, end={end}, τ={tau:.2f} km)"
            ),
        ),
    )

    benchmark(nyc_planner.plan, start, end, tau)
