"""Figure 12: filtering vs verification breakdown as |Q| grows (LA).

Companion of Figure 11; verification stays the dominant phase while the
filtering share grows slowly with the query length.
"""

from __future__ import annotations

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    QUERY_LENGTH_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import FILTER_REFINE, VORONOI


def test_figure12_phase_breakdown_vs_query_length(
    benchmark, la_bundle, bench_scale, write_result
):
    _, _, processor, workload = la_bundle
    lengths = (
        QUERY_LENGTH_VALUES[::3] if bench_scale.name == "smoke" else QUERY_LENGTH_VALUES
    )
    sweep = sweep_parameter(
        processor,
        workload,
        parameter="query_length",
        values=list(lengths),
        queries_per_value=bench_scale.queries_per_point,
        k=DEFAULT_K,
        query_length=DEFAULT_QUERY_LENGTH,
        interval=DEFAULT_INTERVAL * bench_scale.distance_scale,
    )

    rows = []
    for value in sweep.values:
        for timing in sweep.timings[value]:
            measured = timing.filtering_seconds + timing.verification_seconds
            share = timing.verification_seconds / measured if measured else 0.0
            rows.append(
                {
                    "|Q|": value,
                    "method": timing.label,
                    "filter_s": timing.filtering_seconds,
                    "verify_s": timing.verification_seconds,
                    "verify_share": share,
                }
            )
            assert timing.filtering_seconds >= 0.0
            assert timing.verification_seconds >= 0.0
            assert 0.0 <= share <= 1.0

    # Shape check: total filtering work grows with the query length for the
    # filter-refine family (each node must be checked against more points).
    fr_filter = [
        next(t for t in sweep.timings[value] if t.method == FILTER_REFINE).filtering_seconds
        for value in sweep.values
    ]
    assert fr_filter[-1] > 0.0

    write_result(
        "figure12_breakdown_qlen",
        format_table(rows, title="Figure 12 (LA) — filtering vs verification time by |Q|"),
    )

    query = workload.random_query_route(
        max(lengths), DEFAULT_INTERVAL * bench_scale.distance_scale
    )
    benchmark(processor.query, query, DEFAULT_K, method=VORONOI)
