"""Batched vs. loop-of-single vs. sharded query execution throughput.

Not a figure of the paper: this benchmark quantifies the unified execution
engine's batching win plus the two PR-2 hot-path changes.  The same
synthetic workload is answered several ways per method —

* a loop of :meth:`~repro.core.rknnt.RkNNTProcessor.query` calls (the
  scalar path),
* one :meth:`~repro.core.rknnt.RkNNTProcessor.query_batch` call (shared
  execution context + vectorized geometry kernels),
* the same batch sharded across worker processes
  (``query_batch(workers=N)``, the :class:`~repro.engine.parallel
  .ShardedExecutor` path), and
* the batch under both filter-traversal styles (block expansion vs.
  node-at-a-time)

— and the speedups and queries/sec of each are reported.  Answers are
checked element-wise identical before any timing is trusted.

Acceptance bars (asserted when the machine can meaningfully show them):

* with numpy, the batch path is ≥ 2× the loop on the Voronoi method;
* with ≥ 2 usable CPUs, the sharded path (2 workers) is ≥ 1.5× the
  single-process batch on the smoke workload;
* block-expansion filter traversal is no slower than node-at-a-time on
  every method (small tolerance for shared-runner noise).

Results are written as a text table, as JSON rows under
``benchmarks/results/``, and appended to the repo-root ``BENCH_batch.json``
trajectory artifact so per-PR CI runs accumulate comparable numbers.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.bench.harness import time_batch_throughput
from repro.bench.parameters import DEFAULT_INTERVAL, DEFAULT_QUERY_LENGTH
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.core.rknnt import METHODS, VORONOI
from repro.engine.parallel import available_cpu_count
from repro.engine.plan import TRAVERSAL_BLOCK, TRAVERSAL_ENV, TRAVERSAL_NODE
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: Repo-root trajectory artifact: one entry appended per benchmark run, so
#: committing it per PR accumulates a perf history next to the code.
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

#: k kept modest so pruning stays effective on the scaled-down cities.
BATCH_K = 5

#: Worker processes for the sharded measurement (the acceptance criterion
#: is stated for >= 2 workers).
SHARD_WORKERS = 2

#: Noise tolerance for the "block expansion is no slower" bar (best-of-3
#: already damps most jitter; shared CI runners still wobble a little).
TRAVERSAL_TOLERANCE = 1.15


def _time_traversals(processor, queries, k, method, repeats=3):
    """Best-of-N batch wall-clock per filter-traversal style.

    The two styles are timed in *interleaved* repeats (node, block, node,
    block, ...) so slow drift — CPU frequency scaling, background noise on
    shared runners — hits both sides equally instead of biasing whichever
    style happens to run last.
    """
    best = {TRAVERSAL_NODE: math.inf, TRAVERSAL_BLOCK: math.inf}
    results = {TRAVERSAL_NODE: None, TRAVERSAL_BLOCK: None}
    previous = os.environ.get(TRAVERSAL_ENV)
    try:
        for _ in range(repeats):
            for traversal in (TRAVERSAL_NODE, TRAVERSAL_BLOCK):
                os.environ[TRAVERSAL_ENV] = traversal
                processor.engine_context.clear_caches()
                started = time.perf_counter()
                results[traversal] = processor.query_batch(
                    queries, k, method=method
                )
                best[traversal] = min(
                    best[traversal], time.perf_counter() - started
                )
    finally:
        if previous is None:
            os.environ.pop(TRAVERSAL_ENV, None)
        else:
            os.environ[TRAVERSAL_ENV] = previous
    return best, results


def test_batch_throughput(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    query_count = max(10, 5 * bench_scale.queries_per_point)
    queries = workload.query_routes(
        query_count,
        DEFAULT_QUERY_LENGTH,
        DEFAULT_INTERVAL * bench_scale.distance_scale,
    )
    cpus = available_cpu_count()

    rows = []
    by_method = {}
    for method in METHODS:
        # Best-of-3 timings keep the speedup assertions stable on noisy
        # shared runners (GC pauses, noisy CPU neighbours).  The sharded
        # measurement pays its pool start-up inside the timed region.
        timing = time_batch_throughput(
            processor,
            queries,
            BATCH_K,
            method=method,
            repeats=3,
            workers=SHARD_WORKERS,
        )
        by_method[method] = timing
        rows.append(timing.as_row())

    # Filter traversal: block expansion vs node-at-a-time, per method.  The
    # interleaved legs run on a spatially *clustered* workload (the shape
    # the locality engine targets) so the traversal comparison covers the
    # skewed node-access pattern hot-spot traffic produces, not just the
    # uniform one.
    traversal_queries = workload.clustered_query_routes(
        query_count,
        DEFAULT_QUERY_LENGTH,
        DEFAULT_INTERVAL * bench_scale.distance_scale,
    )
    traversal_rows = []
    for method in METHODS:
        best, traversal_results = _time_traversals(
            processor, traversal_queries, BATCH_K, method
        )
        node_seconds = best[TRAVERSAL_NODE]
        block_seconds = best[TRAVERSAL_BLOCK]
        for index, (node_result, block_result) in enumerate(
            zip(traversal_results[TRAVERSAL_NODE], traversal_results[TRAVERSAL_BLOCK])
        ):
            assert (
                node_result.confirmed_endpoints
                == block_result.confirmed_endpoints
            ), f"traversal styles diverge on {method} at index {index}"
        traversal_rows.append(
            {
                "method": method,
                "node_s": node_seconds,
                "block_s": block_seconds,
                "block_speedup": (
                    node_seconds / block_seconds
                    if block_seconds
                    else float("inf")
                ),
            }
        )

    table = format_table(
        rows,
        title=(
            f"batch vs loop-of-single vs sharded throughput "
            f"({query_count} queries, k={BATCH_K}, backend="
            f"{rows[0]['backend']}, workers={SHARD_WORKERS}, cpus={cpus})"
        ),
    )
    traversal_table = format_table(
        traversal_rows,
        title="filter traversal: block expansion vs node-at-a-time",
    )
    write_result("batch_throughput", table + "\n\n" + traversal_table)

    # JSON artefacts: the per-run rows next to the other benchmark results,
    # plus the repo-root trajectory entry CI accumulates per PR.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "batch_throughput",
        "queries": query_count,
        "k": BATCH_K,
        "workers": SHARD_WORKERS,
        "cpus": cpus,
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "rows": rows,
        "traversal": traversal_rows,
    }
    json_path = os.path.join(RESULTS_DIR, "batch_throughput.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    if numpy_available():
        # Acceptance bar: batching with the vectorized kernels must at least
        # double throughput over the scalar loop on the Voronoi method.
        assert by_method[VORONOI].speedup >= 2.0, (
            f"expected >= 2x batch speedup, got {by_method[VORONOI].speedup:.2f}x"
        )
        # Acceptance bar: block expansion must not lose to node-at-a-time
        # anywhere (identical answers were already asserted above).
        for row in traversal_rows:
            assert row["block_s"] <= row["node_s"] * TRAVERSAL_TOLERANCE, (
                f"block traversal slower than node-at-a-time on "
                f"{row['method']}: {row['block_s']:.3f}s vs {row['node_s']:.3f}s"
            )
    if cpus >= 2:
        # Acceptance bar: sharding must pay for itself once there are CPUs
        # to shard onto.  On single-CPU machines the sharded path is still
        # timed and checked for correctness, but a speedup is physically
        # impossible, so the bar is not asserted.
        assert by_method[VORONOI].sharded_speedup >= 1.5, (
            f"expected >= 1.5x sharded speedup with {SHARD_WORKERS} workers, "
            f"got {by_method[VORONOI].sharded_speedup:.2f}x"
        )
    # Without numpy the batch path falls back to the scalar kernels; the
    # element-wise equivalence checks above already covered correctness, so
    # no speed bar is asserted.

    # pytest-benchmark datum: the whole batch through the engine.
    benchmark(processor.query_batch, queries, BATCH_K, method=VORONOI)
