"""Batched vs. loop-of-single query execution throughput.

Not a figure of the paper: this benchmark quantifies the unified execution
engine's batching win.  The same synthetic workload is answered twice per
method — once as a loop of :meth:`~repro.core.rknnt.RkNNTProcessor.query`
calls (the scalar path) and once through
:meth:`~repro.core.rknnt.RkNNTProcessor.query_batch` (shared execution
context + vectorized geometry kernels) — and the speedup and queries/sec of
both are reported.  Answers are checked element-wise identical before any
timing is trusted.

With numpy installed the batch path is required to be at least 2× faster
than the loop on the Voronoi method; without numpy the batch path falls
back to the scalar kernels and only equivalence (not speedup) is asserted.

Results are written both as a text table and as JSON rows following the
``as_row`` schema used by the rest of :mod:`repro.bench`.
"""

from __future__ import annotations

import json
import os

from repro.bench.harness import time_batch_throughput
from repro.bench.parameters import DEFAULT_INTERVAL, DEFAULT_QUERY_LENGTH
from repro.bench.reporting import format_table
from repro.core.rknnt import METHODS, VORONOI
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: k kept modest so pruning stays effective on the scaled-down cities.
BATCH_K = 5


def test_batch_throughput(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    query_count = max(10, 5 * bench_scale.queries_per_point)
    queries = workload.query_routes(
        query_count,
        DEFAULT_QUERY_LENGTH,
        DEFAULT_INTERVAL * bench_scale.distance_scale,
    )

    rows = []
    by_method = {}
    for method in METHODS:
        # Best-of-3 timings keep the speedup assertion stable on noisy
        # shared runners (GC pauses, noisy CPU neighbours).
        timing = time_batch_throughput(
            processor, queries, BATCH_K, method=method, repeats=3
        )
        by_method[method] = timing
        rows.append(timing.as_row())

    table = format_table(
        rows,
        title=(
            f"batch vs loop-of-single throughput "
            f"({query_count} queries, k={BATCH_K}, backend="
            f"{rows[0]['backend']})"
        ),
    )
    write_result("batch_throughput", table)

    # JSON artefact using the same row schema as the text table.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "batch_throughput.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "batch_throughput",
                "queries": query_count,
                "k": BATCH_K,
                "rows": rows,
            },
            handle,
            indent=2,
        )

    if numpy_available():
        # Acceptance bar: batching with the vectorized kernels must at least
        # double throughput over the scalar loop on the Voronoi method.
        assert by_method[VORONOI].speedup >= 2.0, (
            f"expected >= 2x batch speedup, got {by_method[VORONOI].speedup:.2f}x"
        )
    # Without numpy the batch path falls back to the scalar kernels; the
    # element-wise equivalence check inside time_batch_throughput already
    # covered correctness, so nothing further is asserted.

    # pytest-benchmark datum: the whole batch through the engine.
    benchmark(processor.query_batch, queries, BATCH_K, method=VORONOI)
