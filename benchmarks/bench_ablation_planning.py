"""Ablation: contribution of the MaxRkNNT pruning rules (Algorithm 6).

Runs the same planning queries with reachability and dominance pruning
individually disabled and reports the number of partial-route expansions.
The recorded table quantifies each rule's contribution; the assertions check
that pruning never changes feasibility and that the fully pruned search does
not explore more partial routes than the unpruned one.
"""

from __future__ import annotations

from repro.bench.parameters import DEFAULT_PSI_SE
from repro.bench.reporting import format_table
from repro.planning.maxrknnt import DOMINANCE_LEMMA4, DOMINANCE_SUBSET


def test_ablation_planning_pruning_rules(
    benchmark,
    la_bundle,
    la_vertex_index,
    la_planner,
    bench_scale,
    write_result,
    planning_query_for,
):
    rows = []
    for index in range(max(2, bench_scale.planning_queries)):
        start, end, tau = planning_query_for(
            la_bundle, la_vertex_index, DEFAULT_PSI_SE
        )
        configurations = {
            # Reachability stays on everywhere: without it the search space
            # is every loopless path within τ regardless of direction, which
            # is intractable even at benchmark scale (that is precisely what
            # the rule is for; its effect is visible in the reach_pruned
            # column).  The dominance rule is the ablated ingredient.
            "reachability only": dict(use_dominance=False, use_reachability=True),
            "dominance (subset)": dict(
                use_dominance=True, use_reachability=True, dominance_mode=DOMINANCE_SUBSET
            ),
            "dominance (lemma 4)": dict(
                use_dominance=True, use_reachability=True, dominance_mode=DOMINANCE_LEMMA4
            ),
        }
        results = {}
        for label, kwargs in configurations.items():
            results[label] = la_planner.plan(start, end, tau, **kwargs)

        baseline = results["reachability only"]
        for label, planned in results.items():
            assert planned is not None, label
            assert planned.travel_distance <= tau + 1e-9
            # Extra pruning must never *increase* the explored search space,
            # and it can only (rarely) miss — never exceed — the exact optimum
            # found by the dominance-free baseline.
            assert planned.stats.expansions <= baseline.stats.expansions
            assert planned.passengers <= baseline.passengers
            rows.append(
                {
                    "query": index,
                    "configuration": label,
                    "expansions": planned.stats.expansions,
                    "reach_pruned": planned.stats.pruned_by_reachability,
                    "dom_pruned": planned.stats.pruned_by_dominance,
                    "passengers": planned.passengers,
                    "seconds": planned.stats.seconds,
                }
            )

    write_result(
        "ablation_planning_pruning",
        format_table(rows, title="Ablation — MaxRkNNT pruning rules (expansions per query)"),
    )

    start, end, tau = planning_query_for(la_bundle, la_vertex_index, DEFAULT_PSI_SE)
    benchmark(la_planner.plan, start, end, tau)
