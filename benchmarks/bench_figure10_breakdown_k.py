"""Figure 10: breakdown of running time into filtering and verification vs k (LA).

The paper reports that verification dominates (>80% of the cost in most
configurations).  We reproduce the stacked-bar data as a table and check that
verification is the dominant phase for the slower methods.
"""

from __future__ import annotations

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    K_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import FILTER_REFINE, VORONOI


def test_figure10_phase_breakdown_vs_k(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    k_values = K_VALUES[:4] if bench_scale.name == "smoke" else K_VALUES
    sweep = sweep_parameter(
        processor,
        workload,
        parameter="k",
        values=list(k_values),
        queries_per_value=bench_scale.queries_per_point,
        k=DEFAULT_K,
        query_length=DEFAULT_QUERY_LENGTH,
        interval=DEFAULT_INTERVAL * bench_scale.distance_scale,
    )

    rows = []
    for value in sweep.values:
        for timing in sweep.timings[value]:
            measured = timing.filtering_seconds + timing.verification_seconds
            share = timing.verification_seconds / measured if measured else 0.0
            rows.append(
                {
                    "k": value,
                    "method": timing.label,
                    "filter_s": timing.filtering_seconds,
                    "verify_s": timing.verification_seconds,
                    "verify_share": share,
                }
            )
            # Both phases are measured and the split is a valid fraction.
            assert timing.filtering_seconds >= 0.0
            assert timing.verification_seconds >= 0.0
            assert 0.0 <= share <= 1.0

    # Shape check: the verification burden (candidates to verify) grows with
    # k, which is what drives the paper's growing bars in Figure 10.
    fr_candidates = [
        next(t for t in sweep.timings[value] if t.method == FILTER_REFINE).candidates
        for value in sweep.values
    ]
    assert fr_candidates[-1] >= fr_candidates[0]

    write_result(
        "figure10_breakdown_k",
        format_table(rows, title="Figure 10 (LA) — filtering vs verification time by k"),
    )

    query = workload.random_query_route(
        DEFAULT_QUERY_LENGTH, DEFAULT_INTERVAL * bench_scale.distance_scale
    )
    benchmark(processor.query, query, DEFAULT_K, method=FILTER_REFINE)
