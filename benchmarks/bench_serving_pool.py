"""Persistent serving pool vs per-call pool spawn (+ arena attach scaling).

Not a figure of the paper: this benchmark quantifies the serving-layer win
of PR 4.  The same sharded workload is answered two ways —

* **per-call**: every ``query_batch(workers=N)`` spawns a fresh worker
  pool, pays context pickling/unpickling (and arena publishing) inside the
  timed region, answers, and tears the pool down — the PR-2 behaviour;
* **persistent**: one :meth:`~repro.core.rknnt.RkNNTProcessor.serving_pool`
  is seeded once, and every subsequent dispatch reuses its warm workers
  and shared-memory dataset arena

— and the speedup is reported.  Answers are checked element-wise identical
(per-call ≡ persistent ≡ serial) before any timing is trusted.

The arena claim is measured at **two dataset scales** (the benchmark city
at 1× and ``LARGE_SCALE_FACTOR``×): pool *seeding* grows with the dataset
(pickle + spawn), while a *warm* dispatch of a fixed minimal query stays
flat — the attach cost of a seeded worker does not scale with dataset
size.

The benchmark also measures the **reseed payload**: the byte size of the
pickled execution context every pool (re)seed ships per worker, with the
columnar dataset core on (the default) and off (``RKNNT_COLUMNAR=0``, the
legacy object-graph pickles).  Both numbers join the trajectory artifact so
payload regressions show up per PR.

Acceptance bars (asserted when the machine can meaningfully show them):

* with ≥ 2 usable CPUs, the persistent pool beats per-call spawn by
  ≥ 1.5× on the smoke workload;
* warm dispatch latency at the large scale stays within
  ``DISPATCH_SCALE_TOLERANCE`` of the small scale (dataset-size
  independence, with generous headroom for shared-runner noise);
* the columnar reseed payload is ≥ 2× smaller than the object-graph one;
* zero shared-memory segments remain after teardown.

Results are written as a text table, as JSON rows under
``benchmarks/results/``, and appended to the repo-root ``BENCH_batch.json``
trajectory artifact so per-PR CI runs accumulate comparable numbers.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time

from repro.bench.harness import build_benchmark_city
from repro.bench.parameters import DEFAULT_QUERY_LENGTH
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.core.rknnt import VORONOI
from repro.engine import arena
from repro.engine.columnar import COLUMNAR_ENV
from repro.engine.parallel import available_cpu_count
from repro.geometry.kernels import numpy_available

#: Required shrink of the pickled-context reseed payload: columnar columns
#: versus the legacy object-graph pickle (``RKNNT_COLUMNAR=0``).
PAYLOAD_SHRINK_BAR = 2.0


def _measure_reseed_payload(context):
    """Pickled-context bytes with the columnar core on and off."""
    columnar_bytes = context.reseed_payload_nbytes()
    previous = os.environ.get(COLUMNAR_ENV)
    os.environ[COLUMNAR_ENV] = "0"
    try:
        object_bytes = context.reseed_payload_nbytes()
    finally:
        if previous is None:
            os.environ.pop(COLUMNAR_ENV, None)
        else:
            os.environ[COLUMNAR_ENV] = previous
    return {
        "columnar_bytes": columnar_bytes,
        "object_bytes": object_bytes,
        "shrink": object_bytes / columnar_bytes if columnar_bytes else math.inf,
    }

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

SERVE_K = 5
SERVE_WORKERS = 2
REPEATS = 3

#: The second dataset scale of the arena-attach measurement.
LARGE_SCALE_FACTOR = 3.0

#: Warm dispatch at the large scale may cost at most this multiple of the
#: small scale.  A rebuild-per-dispatch regression would scale with the
#: dataset (≥ LARGE_SCALE_FACTOR× more route points); genuine dispatch is
#: index-bound and flat, so the generous bound stays meaningful on noisy
#: shared runners.
DISPATCH_SCALE_TOLERANCE = 8.0

#: The minimal probe answered per warm dispatch: one single-point query
#: with k=1 keeps the query work (index-pruned) negligible so the timing
#: isolates dispatch overhead.
PROBE_K = 1


def _best_of(repeats, call):
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - started)
    return best


def _probe_query(workload, bench_scale):
    route = workload.query_routes(1, 2, 1.0 * bench_scale.distance_scale)[0]
    return [route[0]]


def _measure_scale(bundle, bench_scale):
    """Seed time + best warm-dispatch latency for one dataset scale."""
    city, _, processor, workload = bundle
    probe = _probe_query(workload, bench_scale)
    route_points = sum(len(route) for route in city.routes)
    with processor.serving_pool(workers=SERVE_WORKERS) as pool:
        started = time.perf_counter()
        processor.query_batch([probe], PROBE_K, workers=SERVE_WORKERS)
        seed_seconds = time.perf_counter() - started
        warm_seconds = _best_of(
            REPEATS * 2,
            lambda: processor.query_batch([probe], PROBE_K, workers=SERVE_WORKERS),
        )
        arena_bytes = pool.arena.nbytes if pool.arena is not None else 0
    return {
        "route_points": route_points,
        "seed_s": seed_seconds,
        "warm_dispatch_s": warm_seconds,
        "arena_bytes": arena_bytes,
    }


def test_serving_pool(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    query_count = max(8, 4 * bench_scale.queries_per_point)
    queries = workload.query_routes(
        query_count, DEFAULT_QUERY_LENGTH, 3.0 * bench_scale.distance_scale
    )
    cpus = available_cpu_count()

    serial = processor.query_batch(queries, SERVE_K, method=VORONOI)

    # Per-call: every dispatch spawns (and tears down) its own pool — the
    # pool start-up cost is inside the timed region, as it was for every
    # query_batch(workers=N) call before the serving layer existed.
    per_call_results = None

    def per_call():
        nonlocal per_call_results
        per_call_results = processor.query_batch(
            queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
        )

    per_call_seconds = _best_of(REPEATS, per_call)

    # Persistent: one pool seeded outside the timed region (the serving
    # steady state), every dispatch reuses it.
    persistent_results = None
    with processor.serving_pool(workers=SERVE_WORKERS) as pool:
        processor.query_batch(queries[:1], SERVE_K, workers=SERVE_WORKERS)

        def persistent():
            nonlocal persistent_results
            persistent_results = processor.query_batch(
                queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
            )

        persistent_seconds = _best_of(REPEATS, persistent)
        pools_spawned = pool.pools_spawned
    assert pools_spawned == 1, "persistent pool was reseeded mid-benchmark"

    for index, (expected, cold, warm) in enumerate(
        zip(serial, per_call_results, persistent_results)
    ):
        assert cold.confirmed_endpoints == expected.confirmed_endpoints, (
            f"per-call pool diverges from serial at index {index}"
        )
        assert warm.confirmed_endpoints == expected.confirmed_endpoints, (
            f"persistent pool diverges from serial at index {index}"
        )

    speedup = (
        per_call_seconds / persistent_seconds if persistent_seconds else math.inf
    )

    # Reseed payload: the pickled context a pool seed ships per worker,
    # columnar (default) vs the legacy object-graph pickle.
    reseed = _measure_reseed_payload(processor.engine_context)

    # Arena-attach scaling: seed vs warm dispatch at two dataset scales.
    small = _measure_scale(la_bundle, bench_scale)
    large_scale = dataclasses.replace(
        bench_scale,
        name=f"{bench_scale.name}-x{LARGE_SCALE_FACTOR:g}",
        city_scale=bench_scale.city_scale * LARGE_SCALE_FACTOR,
    )
    large = _measure_scale(build_benchmark_city("la", large_scale), large_scale)
    dispatch_ratio = (
        large["warm_dispatch_s"] / small["warm_dispatch_s"]
        if small["warm_dispatch_s"]
        else math.inf
    )

    rows = [
        {
            "mode": "per-call pool",
            "queries": query_count,
            "workers": SERVE_WORKERS,
            "best_s": per_call_seconds,
            "qps": query_count / per_call_seconds if per_call_seconds else 0.0,
        },
        {
            "mode": "persistent pool",
            "queries": query_count,
            "workers": SERVE_WORKERS,
            "best_s": persistent_seconds,
            "qps": (
                query_count / persistent_seconds if persistent_seconds else 0.0
            ),
        },
    ]
    scale_rows = [
        {"scale": bench_scale.name, **small},
        {"scale": large_scale.name, **large},
    ]
    table = format_table(
        rows,
        title=(
            f"persistent vs per-call pool ({query_count} queries, "
            f"k={SERVE_K}, workers={SERVE_WORKERS}, cpus={cpus}, "
            f"speedup {speedup:.2f}x)"
        ),
    )
    scale_table = format_table(
        scale_rows,
        title=(
            "warm-pool dispatch vs dataset scale "
            f"(ratio {dispatch_ratio:.2f}x for "
            f"{LARGE_SCALE_FACTOR:g}x the dataset)"
        ),
    )
    payload_table = format_table(
        [
            {"encoding": "columnar (default)", "bytes": reseed["columnar_bytes"]},
            {"encoding": "object graph (RKNNT_COLUMNAR=0)", "bytes": reseed["object_bytes"]},
        ],
        title=f"pickled-context reseed payload (shrink {reseed['shrink']:.2f}x)",
    )
    write_result(
        "serving_pool", table + "\n\n" + scale_table + "\n\n" + payload_table
    )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "serving_pool",
        "queries": query_count,
        "k": SERVE_K,
        "workers": SERVE_WORKERS,
        "cpus": cpus,
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "per_call_s": per_call_seconds,
        "persistent_s": persistent_seconds,
        "speedup": speedup,
        "dispatch_scaling": scale_rows,
        "dispatch_ratio": dispatch_ratio,
        "reseed_payload": reseed,
    }
    with open(
        os.path.join(RESULTS_DIR, "serving_pool.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    # Acceptance bar: the columnar reseed payload must be at least 2x
    # smaller than the legacy object-graph pickle.
    assert reseed["shrink"] >= PAYLOAD_SHRINK_BAR, (
        f"expected the columnar reseed payload to shrink >= "
        f"{PAYLOAD_SHRINK_BAR}x, got {reseed['shrink']:.2f}x "
        f"({reseed['columnar_bytes']} B vs {reseed['object_bytes']} B)"
    )

    # Acceptance bar: no shared-memory segment survives the measurements.
    assert arena.active_segment_names() == [], (
        f"leaked shared-memory segments: {arena.active_segment_names()}"
    )
    if cpus >= 2:
        # Acceptance bar: reusing a warm pool must beat respawning one per
        # call.  On single-CPU machines both paths are correctness-checked
        # above but the timing comparison is meaningless.
        assert speedup >= 1.5, (
            f"expected persistent pool >= 1.5x over per-call spawn, "
            f"got {speedup:.2f}x"
        )
        # Acceptance bar: warm dispatch must not scale with the dataset.
        assert dispatch_ratio <= DISPATCH_SCALE_TOLERANCE, (
            f"warm dispatch grew {dispatch_ratio:.2f}x on a "
            f"{LARGE_SCALE_FACTOR:g}x dataset "
            f"(bound {DISPATCH_SCALE_TOLERANCE}x)"
        )

    # pytest-benchmark datum: one warm dispatch through a persistent pool.
    with processor.serving_pool(workers=SERVE_WORKERS):
        processor.query_batch(queries[:1], SERVE_K, workers=SERVE_WORKERS)
        benchmark(
            processor.query_batch, queries, SERVE_K, workers=SERVE_WORKERS
        )
