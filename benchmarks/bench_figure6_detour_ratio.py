"""Figure 6: histogram of the ratio between travel distance and straight-line
distance (detour ratio) over all bus routes.

The paper observes that the ratio "does not exceed 2 in most bus routes",
which motivates the distance threshold τ of MaxRkNNT.  The same shape must
hold for the synthetic route generators.
"""

from __future__ import annotations

import math

from repro.bench.reporting import format_histogram, summarize_distribution


def finite_ratios(routes):
    return [r for r in routes.detour_ratios() if math.isfinite(r)]


def test_figure6_detour_ratio_histogram(benchmark, la_bundle, nyc_bundle, write_result):
    sections = []
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        city, _, _, _ = bundle
        ratios = benchmark(finite_ratios, city.routes) if name == "LA-like" else finite_ratios(city.routes)

        # Shape assertions from the paper: ratios start at 1 and the bulk of
        # the distribution sits below 2-3.
        assert all(r >= 1.0 - 1e-9 for r in ratios)
        below_two = sum(1 for r in ratios if r <= 2.0) / len(ratios)
        below_three = sum(1 for r in ratios if r <= 3.0) / len(ratios)
        assert below_three >= 0.8
        assert below_two >= 0.5

        summary = summarize_distribution(ratios)
        sections.append(
            format_histogram(
                ratios,
                bins=10,
                title=(
                    f"Figure 6 ({name}) — detour ratio ψ(R)/ψ(se); "
                    f"median {summary['median']:.2f}, p90 {summary['p90']:.2f}"
                ),
            )
        )
    write_result("figure6_detour_ratio", "\n\n".join(sections))
