"""Figure 16: distribution of RkNNT running time when every existing bus route
is used as the query (Divide-Conquer, k = 10).

As in the paper, the query route's own points are removed from the RR-tree
before each query (handled automatically when a Route object is the query).
The paper reports that the vast majority of real route queries finish within
a few seconds on their testbed; here we check the distribution is produced
and that it correlates with the number of points in the query.
"""

from __future__ import annotations

from repro.bench.parameters import DEFAULT_K
from repro.bench.reporting import format_histogram, format_table, summarize_distribution
from repro.core.rknnt import DIVIDE_CONQUER

import time


def test_figure16_real_route_queries(benchmark, la_bundle, bench_scale, write_result):
    city, transitions, processor, workload = la_bundle
    route_ids = workload.existing_route_queries(count=bench_scale.real_query_limit)

    timings = []
    rows = []
    for route_id in route_ids:
        route = city.routes.get(route_id)
        started = time.perf_counter()
        result = processor.query(route, DEFAULT_K, method=DIVIDE_CONQUER)
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append(
            {
                "route": route_id,
                "stops": len(route),
                "seconds": elapsed,
                "results": len(result),
            }
        )

    summary = summarize_distribution(timings)
    assert summary["count"] == len(route_ids)
    assert summary["min"] > 0.0

    text = "\n\n".join(
        [
            format_table(rows, title="Figure 16 (LA) — per-route query cost (DC, k=10)"),
            format_histogram(
                timings,
                bins=8,
                precision=3,
                title=(
                    "Figure 16 (LA) — running-time distribution over real route queries; "
                    f"median {summary['median']:.3f}s, p90 {summary['p90']:.3f}s"
                ),
            ),
        ]
    )
    write_result("figure16_real_queries", text)

    sample = city.routes.get(route_ids[0])
    benchmark(processor.query, sample, DEFAULT_K, method=DIVIDE_CONQUER)
