"""Figure 8: spatial heatmaps of the route and transition datasets.

The paper shows that check-in transitions concentrate along the bus-route
corridors.  We reproduce the figure as text density grids and assert the
underlying correlation: cells containing route points hold a disproportionate
share of the transition endpoints.
"""

from __future__ import annotations

from repro.bench.heatmap import density_grid, format_density_grid


def build_grids(bundle, rows=16, columns=32):
    city, transitions, _, _ = bundle
    bounds = city.bounds
    route_points = [p for route in city.routes for p in route.points]
    transition_points = []
    for transition in transitions:
        transition_points.append(transition.origin)
        transition_points.append(transition.destination)
    route_grid = density_grid(route_points, bounds, rows=rows, columns=columns)
    transition_grid = density_grid(transition_points, bounds, rows=rows, columns=columns)
    return route_grid, transition_grid, len(transition_points)


def correlation_share(route_grid, transition_grid, total_points):
    """Share of transition endpoints falling in cells that contain route points."""
    covered = 0
    route_cells = 0
    for route_row, transition_row in zip(route_grid, transition_grid):
        for route_count, transition_count in zip(route_row, transition_row):
            if route_count > 0:
                covered += transition_count
                route_cells += 1
    cell_total = len(route_grid) * len(route_grid[0])
    return covered / max(1, total_points), route_cells / cell_total


def test_figure8_heatmaps(benchmark, la_bundle, nyc_bundle, write_result):
    sections = []
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        if name == "LA-like":
            route_grid, transition_grid, total = benchmark(build_grids, bundle)
        else:
            route_grid, transition_grid, total = build_grids(bundle)
        share, cell_share = correlation_share(route_grid, transition_grid, total)

        # Transitions must concentrate along routes: the cells touched by
        # routes hold a clearly disproportionate share of transition points.
        assert share > cell_share

        sections.append(
            format_density_grid(
                route_grid, title=f"Figure 8 ({name}) — route density"
            )
        )
        sections.append(
            format_density_grid(
                transition_grid,
                title=(
                    f"Figure 8 ({name}) — transition density "
                    f"({share * 100:.0f}% of endpoints in route cells, "
                    f"which cover {cell_share * 100:.0f}% of the area)"
                ),
            )
        )
    write_result("figure8_heatmaps", "\n\n".join(sections))
