"""Query-locality engine: shared filter reuse on a clustered workload.

Not a figure of the paper: this benchmark quantifies the PR-6 locality
engine (``repro.engine.locality``).  A spatially clustered workload — the
shape real batch traffic has when queries concentrate around hot spots — is
answered twice per method:

* **unshared** (``RKNNT_LOCALITY=off``): every query runs the full staged
  pipeline independently (the plain ``query_batch`` path), and
* **shared** (``RKNNT_LOCALITY=on``): one pilot per spatial cluster runs the
  full pipeline; each neighbour reuses the pilot's retained filter set via
  the δ-margin translation bound and exactly re-tests only the borderline
  candidates.

Timings are interleaved (unshared, shared, unshared, ...) best-of-3 so slow
drift on shared runners hits both sides equally, and answers are checked
element-wise identical before any timing is trusted — sharing changes the
work done, never the answer.

Acceptance bar (asserted when numpy is available): the shared path is
≥ 1.5× the unshared batch on the Voronoi method.  The other methods are
reported for context; filter-refine has the cheapest per-query filter stage
and therefore the least to reuse, so no bar is asserted for it.

Results are written as a text table, as JSON rows under
``benchmarks/results/``, and appended to the repo-root ``BENCH_batch.json``
trajectory artifact so per-PR CI runs accumulate comparable numbers.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.bench.parameters import DEFAULT_INTERVAL, DEFAULT_QUERY_LENGTH
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.core.rknnt import METHODS, VORONOI
from repro.engine.parallel import available_cpu_count
from repro.engine.plan import LOCALITY_ENV
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: Repo-root trajectory artifact shared with the other batch benchmarks.
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

#: k kept modest so pruning stays effective on the scaled-down cities.
BATCH_K = 5

#: Workload shape: enough members per cluster that the pilot's traversal
#: amortises, tight enough spread that the δ-margin thresholds bite.
CLUSTERS = 4
SPREAD = 0.05
HEADING_JITTER_DEGREES = 10.0

#: Minimum shared-over-unshared speedup asserted on the Voronoi method.
LOCALITY_SPEEDUP_BAR = 1.5


def _time_locality(processor, queries, k, method, repeats=3):
    """Best-of-N batch wall-clock with the locality engine off vs. on.

    Interleaved repeats (off, on, off, on, ...) so CPU frequency scaling and
    background noise bias neither side; caches are cleared before every run
    so each measurement is a cold batch.
    """
    modes = ("off", "on")
    best = {mode: math.inf for mode in modes}
    results = {mode: None for mode in modes}
    counters = {}
    previous = os.environ.get(LOCALITY_ENV)
    try:
        for _ in range(repeats):
            for mode in modes:
                os.environ[LOCALITY_ENV] = mode
                processor.engine_context.clear_caches()
                started = time.perf_counter()
                results[mode] = processor.query_batch(queries, k, method=method)
                best[mode] = min(best[mode], time.perf_counter() - started)
                if mode == "on":
                    context = processor.engine_context
                    counters = {
                        "clusters": context.locality_clusters,
                        "seeded": context.locality_seeded,
                        "retested": context.locality_retested,
                    }
    finally:
        if previous is None:
            os.environ.pop(LOCALITY_ENV, None)
        else:
            os.environ[LOCALITY_ENV] = previous
    return best, results, counters


def test_locality_speedup(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    query_count = max(60, 12 * bench_scale.queries_per_point)
    queries = workload.clustered_query_routes(
        query_count,
        DEFAULT_QUERY_LENGTH,
        DEFAULT_INTERVAL * bench_scale.distance_scale,
        clusters=CLUSTERS,
        spread=SPREAD,
        heading_jitter_degrees=HEADING_JITTER_DEGREES,
    )

    rows = []
    by_method = {}
    for method in METHODS:
        best, results, counters = _time_locality(
            processor, queries, BATCH_K, method
        )
        for index, (unshared, shared) in enumerate(
            zip(results["off"], results["on"])
        ):
            assert (
                unshared.confirmed_endpoints == shared.confirmed_endpoints
            ), f"locality changes answers on {method} at index {index}"
        speedup = (
            best["off"] / best["on"] if best["on"] else float("inf")
        )
        row = {
            "method": method,
            "unshared_s": best["off"],
            "shared_s": best["on"],
            "speedup": speedup,
            **counters,
        }
        by_method[method] = row
        rows.append(row)

    table = format_table(
        rows,
        title=(
            f"locality engine: shared vs unshared batch "
            f"({query_count} clustered queries, {CLUSTERS} clusters, "
            f"spread={SPREAD}, k={BATCH_K})"
        ),
    )
    write_result("locality", table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "locality",
        "queries": query_count,
        "clusters": CLUSTERS,
        "spread": SPREAD,
        "k": BATCH_K,
        "cpus": available_cpu_count(),
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "rows": rows,
    }
    json_path = os.path.join(RESULTS_DIR, "locality.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    if numpy_available():
        # Acceptance bar: filter-set reuse must pay for itself on the
        # flagship method.  Without numpy the scalar kernels dominate both
        # sides and the equivalence checks above are the interesting part.
        assert by_method[VORONOI]["speedup"] >= LOCALITY_SPEEDUP_BAR, (
            f"expected >= {LOCALITY_SPEEDUP_BAR}x locality speedup on "
            f"{VORONOI}, got {by_method[VORONOI]['speedup']:.2f}x"
        )
        # Sharing must actually happen for the numbers to mean anything.
        assert by_method[VORONOI]["seeded"] > 0

    # pytest-benchmark datum: the shared batch through the engine.
    previous = os.environ.get(LOCALITY_ENV)
    os.environ[LOCALITY_ENV] = "on"
    try:
        benchmark(processor.query_batch, queries, BATCH_K, method=VORONOI)
    finally:
        if previous is None:
            os.environ.pop(LOCALITY_ENV, None)
        else:
            os.environ[LOCALITY_ENV] = previous
