"""Figure 15: filtering vs verification breakdown as the interval I grows (LA)."""

from __future__ import annotations

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    INTERVAL_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import FILTER_REFINE


def test_figure15_phase_breakdown_vs_interval(
    benchmark, la_bundle, bench_scale, write_result
):
    _, _, processor, workload = la_bundle
    intervals = [
        value * bench_scale.distance_scale
        for value in (INTERVAL_VALUES[::2] if bench_scale.name == "smoke" else INTERVAL_VALUES)
    ]
    sweep = sweep_parameter(
        processor,
        workload,
        parameter="interval",
        values=intervals,
        queries_per_value=bench_scale.queries_per_point,
        k=DEFAULT_K,
        query_length=DEFAULT_QUERY_LENGTH,
        interval=DEFAULT_INTERVAL,
    )

    rows = []
    for value in sweep.values:
        for timing in sweep.timings[value]:
            measured = timing.filtering_seconds + timing.verification_seconds
            share = timing.verification_seconds / measured if measured else 0.0
            rows.append(
                {
                    "interval": value,
                    "method": timing.label,
                    "filter_s": timing.filtering_seconds,
                    "verify_s": timing.verification_seconds,
                    "verify_share": share,
                }
            )
            assert 0.0 <= share <= 1.0

    write_result(
        "figure15_breakdown_interval",
        format_table(
            rows, title="Figure 15 (LA) — filtering vs verification time by interval"
        ),
    )

    query = workload.random_query_route(DEFAULT_QUERY_LENGTH, intervals[0])
    benchmark(processor.query, query, DEFAULT_K, method=FILTER_REFINE)
