"""Figure 20: distribution of MaxRkNNT running time over real route queries.

As in the paper, each existing bus route provides a planning query: its first
and last stops are the start/end pair and its own travel distance is the
budget τ.  The reproduction reports the distribution of planning times and
the comparison of each planned route against the original one (the seed data
for Figure 21).
"""

from __future__ import annotations

from repro.bench.reporting import format_histogram, format_table, summarize_distribution
from repro.planning.precompute import VertexRkNNTIndex


def test_figure20_real_route_planning(
    benchmark, la_bundle, la_vertex_index, la_planner, bench_scale, write_result
):
    city, _, _, workload = la_bundle
    # As in the paper, every existing route can serve as a planning query; at
    # benchmark scale we take the shortest `real_query_limit` routes so the
    # candidate space (and hence the run time) stays laptop-sized.
    route_ids = sorted(
        workload.existing_route_queries(),
        key=lambda route_id: city.routes.get(route_id).travel_distance,
    )[: bench_scale.real_query_limit]

    rows = []
    timings = []
    improvements = 0
    planned_count = 0
    for route_id in route_ids:
        route = city.routes.get(route_id)
        start = city.network.vertex_at(tuple(route.points[0]))
        end = city.network.vertex_at(tuple(route.points[-1]))
        if start is None or end is None or start == end:
            continue
        tau = route.travel_distance * 1.05  # small slack, as in Figure 21
        planned = la_planner.plan(start, end, tau)
        if planned is None:
            continue
        planned_count += 1
        timings.append(planned.stats.seconds)

        original_passengers = len(
            VertexRkNNTIndex.exists_ids(
                la_vertex_index.route_endpoints(
                    [city.network.vertex_at(tuple(p)) for p in route.points]
                )
            )
        )
        best_passengers = planned.passengers
        if best_passengers < original_passengers:
            # Dominance pruning is a heuristic on loopless paths; fall back to
            # the certified search before judging whether re-planning helped.
            exact = la_planner.plan(start, end, tau, use_dominance=False)
            if exact is not None:
                best_passengers = max(best_passengers, exact.passengers)
        if best_passengers >= original_passengers:
            improvements += 1
        rows.append(
            {
                "route": route_id,
                "original_passengers": original_passengers,
                "planned_passengers": planned.passengers,
                "original_km": route.travel_distance,
                "planned_km": planned.travel_distance,
                "seconds": planned.stats.seconds,
            }
        )

    assert planned_count > 0
    # The planned route can never attract fewer passengers than the original
    # within the same (slightly larger) budget — MaxRkNNT optimises exactly
    # that objective over a superset of candidates.
    assert improvements == len(rows)

    summary = summarize_distribution(timings)
    text = "\n\n".join(
        [
            format_table(
                rows,
                title="Figure 20/21 (LA) — re-planning every existing route (MaxRkNNT)",
            ),
            format_histogram(
                timings,
                bins=8,
                precision=3,
                title=(
                    "Figure 20 (LA) — planning-time distribution; "
                    f"median {summary['median']:.3f}s, p90 {summary['p90']:.3f}s"
                ),
            ),
        ]
    )
    write_result("figure20_real_route_planning", text)

    route = city.routes.get(rows[0]["route"])
    start = city.network.vertex_at(tuple(route.points[0]))
    end = city.network.vertex_at(tuple(route.points[-1]))
    benchmark(la_planner.plan, start, end, route.travel_distance * 1.05)
