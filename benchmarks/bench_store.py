"""Cold start: memory-mapped store attach vs pickled-context decode.

Not a figure of the paper: this benchmark quantifies the O(1) cold start
of the persistent columnar store (see ``docs/persistence.md``).  A serving
process can become ready two ways —

* **pickle decode**: ``pickle.loads`` of the columnar execution-context
  payload — every column is copied and rebuilt, so the cost grows with
  the dataset (the pre-store behaviour, and still the degradation path);
* **mmap attach**: :func:`repro.engine.store.attach_context` on a
  :class:`~repro.engine.store.StoreHandle` — validate a fixed-size
  header, map the file, wrap read-only views; no column is touched until
  a query needs it, so the cost is independent of dataset size

— measured at **two dataset scales** (the benchmark city at 1× and
``LARGE_SCALE_FACTOR``×).  Correctness is checked first: the attached
context must answer a probe batch exactly like the decoded one.

Acceptance bars:

* mmap attach stays **flat** across scales (within
  ``ATTACH_FLAT_TOLERANCE``× despite a ``LARGE_SCALE_FACTOR``× dataset);
* at the larger scale, pickle decode costs ≥ ``DECODE_SLOWDOWN_BAR``×
  more than mmap attach (measured here at >100×; the bar leaves room
  for noisy shared runners);
* the reseed handle a store-backed pool ships per worker stays under
  ``HANDLE_BYTES_BAR`` bytes regardless of scale.

Results are written as a text table, as JSON under
``benchmarks/results/``, and appended to the repo-root
``BENCH_batch.json`` trajectory artifact as the ``store`` row.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pickle
import time

import pytest

from repro.bench.harness import build_benchmark_city
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.engine import store as store_module
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

REPEATS = 7
PROBE_K = 3

#: The second dataset scale of the cold-start measurement.
LARGE_SCALE_FACTOR = 4.0

#: mmap attach at the large scale may cost at most this multiple of the
#: small scale — the "O(1) cold start" claim, with headroom for noise
#: (measured flat to within a few percent).
ATTACH_FLAT_TOLERANCE = 2.0

#: Pickle decode must cost at least this multiple of mmap attach at the
#: larger scale (measured at >100×).
DECODE_SLOWDOWN_BAR = 5.0

#: The pickled :class:`~repro.engine.store.StoreHandle` a store-backed
#: pool ships per worker seed.
HANDLE_BYTES_BAR = 4096


def _best_of(repeats, call):
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - started)
    return best


def _measure_scale(bundle, bench_scale, tmp_dir):
    """Cold-start timings (decode vs attach) for one dataset scale."""
    city, _, processor, workload = bundle
    path = os.path.join(tmp_dir, f"{bench_scale.name}.store")
    handle = store_module.save_indexes(
        path, processor.route_index, processor.transition_index
    )
    payload = pickle.dumps(
        processor.engine_context, protocol=pickle.HIGHEST_PROTOCOL
    )

    # Correctness before timing: the attached context answers exactly
    # like the processor it was packed from.
    probe = workload.query_routes(2, 3, 1.0 * bench_scale.distance_scale)
    expected = [
        result.confirmed_endpoints
        for result in processor.query_batch(probe, PROBE_K)
    ]
    from repro.core.rknnt import RkNNTProcessor

    attached = RkNNTProcessor.from_store(handle)
    actual = [
        result.confirmed_endpoints
        for result in attached.query_batch(probe, PROBE_K)
    ]
    assert actual == expected, "store-backed answers diverge from direct"

    decode_seconds = _best_of(REPEATS, lambda: pickle.loads(payload))

    def attach():
        context = store_module.attach_context(handle)
        context._store_attachment.close()

    attach_seconds = _best_of(REPEATS, attach)
    handle_bytes = len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))
    return {
        "route_points": sum(len(route) for route in city.routes),
        "store_bytes": handle.nbytes,
        "pickle_bytes": len(payload),
        "handle_bytes": handle_bytes,
        "decode_s": decode_seconds,
        "attach_s": attach_seconds,
        "slowdown": (
            decode_seconds / attach_seconds if attach_seconds else math.inf
        ),
    }


@pytest.mark.skipif(
    not numpy_available(),
    reason="the store packs/maps columns with the numpy backend",
)
def test_store_cold_start(benchmark, la_bundle, bench_scale, write_result, tmp_path):
    small = _measure_scale(la_bundle, bench_scale, str(tmp_path))
    large_scale = dataclasses.replace(
        bench_scale,
        name=f"{bench_scale.name}-x{LARGE_SCALE_FACTOR:g}",
        city_scale=bench_scale.city_scale * LARGE_SCALE_FACTOR,
    )
    large = _measure_scale(
        build_benchmark_city("la", large_scale), large_scale, str(tmp_path)
    )
    attach_ratio = (
        large["attach_s"] / small["attach_s"] if small["attach_s"] else math.inf
    )

    rows = [
        {"scale": bench_scale.name, **small},
        {"scale": large_scale.name, **large},
    ]
    table = format_table(
        rows,
        title=(
            "cold start: pickle decode vs mmap attach "
            f"(attach ratio {attach_ratio:.2f}x for "
            f"{LARGE_SCALE_FACTOR:g}x the dataset; decode slowdown "
            f"{large['slowdown']:.1f}x at the large scale)"
        ),
    )
    write_result("store", table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "store",
        "scale": bench_scale.name,
        "numpy": numpy_available(),
        "cold_start": rows,
        "attach_ratio": attach_ratio,
        "decode_slowdown_large": large["slowdown"],
    }
    with open(
        os.path.join(RESULTS_DIR, "store.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    # Acceptance bar: attach does not scale with the dataset.
    assert attach_ratio <= ATTACH_FLAT_TOLERANCE, (
        f"mmap attach grew {attach_ratio:.2f}x on a "
        f"{LARGE_SCALE_FACTOR:g}x dataset (bound {ATTACH_FLAT_TOLERANCE}x)"
    )
    # Acceptance bar: at scale, decode pays for every column; attach does
    # not.
    assert large["slowdown"] >= DECODE_SLOWDOWN_BAR, (
        f"expected pickle decode >= {DECODE_SLOWDOWN_BAR}x slower than "
        f"mmap attach at the large scale, got {large['slowdown']:.2f}x"
    )
    # Acceptance bar: the reseed handle stays tiny at every scale.
    for row in rows:
        assert row["handle_bytes"] < HANDLE_BYTES_BAR, (
            f"store handle pickled to {row['handle_bytes']} B at scale "
            f"{row['scale']} (bar {HANDLE_BYTES_BAR} B)"
        )

    # pytest-benchmark datum: one O(1) attach at the benchmark scale.
    path = os.path.join(str(tmp_path), "bench.store")
    _, _, processor, _ = la_bundle
    handle = store_module.save_indexes(
        path, processor.route_index, processor.transition_index
    )

    def attach_once():
        context = store_module.attach_context(handle)
        context._store_attachment.close()

    benchmark(attach_once)
