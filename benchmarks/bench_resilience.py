"""Recovery cost of the resilient serving runtime (ISSUE 7).

Not a figure of the paper: this benchmark prices the resilience layer's
failure paths against healthy serving.  The same workload is answered
three ways —

* **fault-free**: a warm persistent pool, the serving steady state;
* **crash-recovery**: a fresh pool seeded under a one-shot
  ``worker_crash`` fault — the worker dies mid-batch, the pool backs
  off, reseeds and replays the whole batch inside the timed region;
* **degraded**: every reseed fails (``reseed_fail``), the executor
  degrades to in-process serial execution

— and all three are checked element-wise identical to the serial oracle
before any timing is trusted: a recovery path that changed answers would
be a correctness bug, not a performance number.

Acceptance bars (asserted when ≥ 2 CPUs make the timings meaningful):

* recovery after a crash completes within ``RECOVERY_TOLERANCE`` × the
  fault-free latency plus one pool seed — recovery is reseed + replay,
  so that is its honest cost model;
* degraded throughput stays within ``DEGRADED_TOLERANCE`` of the plain
  ``workers=0`` serial path (degradation is that exact code path);
* zero shared-memory segments remain after teardown.

Results are written as a text table, as JSON under
``benchmarks/results/``, and appended as a ``resilience`` row to the
repo-root ``BENCH_batch.json`` trajectory artifact.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.bench.parameters import DEFAULT_QUERY_LENGTH
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.core.rknnt import VORONOI
from repro.engine import arena, faults
from repro.engine.parallel import available_cpu_count
from repro.geometry.kernels import numpy_available

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

SERVE_K = 5
SERVE_WORKERS = 2
REPEATS = 3

#: Crash recovery is reseed-and-replay: the timed incident pays two pool
#: seeds (initial + reseed), two passes over the batch and the jittered
#: backoff in between.  The bound prices that model with generous
#: headroom for shared-runner noise.
RECOVERY_TOLERANCE = 10.0

#: The degraded path *is* the ``workers=0`` serial path; the bound only
#: allows for measurement noise on top.
DEGRADED_TOLERANCE = 3.0


def _best_of(repeats, call):
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - started)
    return best


def test_resilience(benchmark, la_bundle, bench_scale, write_result):
    _, _, processor, workload = la_bundle
    query_count = max(8, 4 * bench_scale.queries_per_point)
    queries = workload.query_routes(
        query_count, DEFAULT_QUERY_LENGTH, 3.0 * bench_scale.distance_scale
    )
    cpus = available_cpu_count()

    serial_results = None

    def serial():
        nonlocal serial_results
        serial_results = processor.query_batch(queries, SERVE_K, method=VORONOI)

    serial_seconds = _best_of(REPEATS, serial)
    expected = [result.confirmed_endpoints for result in serial_results]

    def check(results, mode):
        actual = [result.confirmed_endpoints for result in results]
        assert actual == expected, f"{mode} serving diverges from serial"

    with processor.serving_pool(workers=SERVE_WORKERS) as pool:
        # Seed cost: the first dispatch pays pool spawn + arena publish —
        # also the unit a crash recovery pays again.
        started = time.perf_counter()
        seeded = processor.query_batch(
            queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
        )
        seed_seconds = time.perf_counter() - started
        check(seeded, "seed")

        fault_free_results = None

        def fault_free():
            nonlocal fault_free_results
            fault_free_results = processor.query_batch(
                queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
            )

        fault_free_seconds = _best_of(REPEATS, fault_free)
        check(fault_free_results, "fault-free")

    # Crash recovery: worker faults ship to the workers at pool seed
    # time, so each repeat seeds a fresh pool under a one-shot
    # worker_crash schedule.  The timed region is the full incident:
    # seed, the worker dying on its first task, backoff, reseed, replay.
    recovered_seconds = math.inf
    for _ in range(REPEATS):
        with faults.injected("worker_crash:count=1"):
            with processor.serving_pool(workers=SERVE_WORKERS) as pool:
                started = time.perf_counter()
                recovered = processor.query_batch(
                    queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
                )
                recovered_seconds = min(
                    recovered_seconds, time.perf_counter() - started
                )
                assert pool.crash_recoveries == 1
                assert not pool.degraded
        check(recovered, "crash-recovery")

    # Degraded serving: every reseed fails, the executor gives up on the
    # pool and answers in process — same answers, serial throughput.
    with processor.serving_pool(workers=SERVE_WORKERS) as pool:
        with faults.injected("reseed_fail:count=0"):
            pool.retry_policy.sleep = lambda seconds: None
            degraded_results = None

            def degraded():
                nonlocal degraded_results
                degraded_results = processor.query_batch(
                    queries, SERVE_K, method=VORONOI, workers=SERVE_WORKERS
                )

            degraded_seconds = _best_of(REPEATS, degraded)
            check(degraded_results, "degraded")
            assert pool.degraded

    recovery_ratio = (
        recovered_seconds / fault_free_seconds if fault_free_seconds else math.inf
    )
    degraded_ratio = (
        degraded_seconds / serial_seconds if serial_seconds else math.inf
    )

    rows = [
        {
            "mode": "serial (workers=0)",
            "best_s": serial_seconds,
            "qps": query_count / serial_seconds if serial_seconds else 0.0,
        },
        {
            "mode": "fault-free pool",
            "best_s": fault_free_seconds,
            "qps": query_count / fault_free_seconds if fault_free_seconds else 0.0,
        },
        {
            "mode": "crash recovery",
            "best_s": recovered_seconds,
            "qps": query_count / recovered_seconds if recovered_seconds else 0.0,
        },
        {
            "mode": "degraded (in-process)",
            "best_s": degraded_seconds,
            "qps": query_count / degraded_seconds if degraded_seconds else 0.0,
        },
    ]
    table = format_table(
        rows,
        title=(
            f"resilience: recovery cost ({query_count} queries, k={SERVE_K}, "
            f"workers={SERVE_WORKERS}, cpus={cpus}, seed {seed_seconds:.3f}s, "
            f"recovery {recovery_ratio:.2f}x fault-free, degraded "
            f"{degraded_ratio:.2f}x serial)"
        ),
    )
    write_result("resilience", table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "resilience",
        "queries": query_count,
        "k": SERVE_K,
        "workers": SERVE_WORKERS,
        "cpus": cpus,
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "serial_s": serial_seconds,
        "seed_s": seed_seconds,
        "fault_free_s": fault_free_seconds,
        "crash_recovery_s": recovered_seconds,
        "degraded_s": degraded_seconds,
        "recovery_ratio": recovery_ratio,
        "degraded_ratio": degraded_ratio,
    }
    with open(
        os.path.join(RESULTS_DIR, "resilience.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    # Acceptance bar: no shared-memory segment survives the measurements.
    assert arena.active_segment_names() == [], (
        f"leaked shared-memory segments: {arena.active_segment_names()}"
    )
    if cpus >= 2:
        # Acceptance bar: recovery after a crash is bounded — reseed plus
        # replay, never an unbounded stall.  On single-CPU machines the
        # paths are correctness-checked above but timings are meaningless.
        assert recovered_seconds <= RECOVERY_TOLERANCE * (
            fault_free_seconds + seed_seconds
        ), (
            f"crash recovery took {recovered_seconds:.3f}s, bound "
            f"{RECOVERY_TOLERANCE}x (fault-free {fault_free_seconds:.3f}s "
            f"+ seed {seed_seconds:.3f}s)"
        )
        # Acceptance bar: degradation costs serial throughput, not more.
        assert degraded_seconds <= DEGRADED_TOLERANCE * serial_seconds, (
            f"degraded serving took {degraded_seconds:.3f}s, bound "
            f"{DEGRADED_TOLERANCE}x serial ({serial_seconds:.3f}s)"
        )

    # pytest-benchmark datum: one warm fault-free dispatch.
    with processor.serving_pool(workers=SERVE_WORKERS):
        processor.query_batch(queries[:1], SERVE_K, workers=SERVE_WORKERS)
        benchmark(
            processor.query_batch, queries, SERVE_K, workers=SERVE_WORKERS
        )
