"""Figure 19: MaxRkNNT running time as the threshold ratio τ/ψ(se) grows.

With a fixed start/end pair, a larger distance budget admits more candidate
routes, so every method slows down; the pruned searches degrade much more
gracefully than the enumeration-based baselines.  The reproduction fixes
ψ(se) at its default and sweeps the ratio over the paper's grid.
"""

from __future__ import annotations

import time

from repro.bench.parameters import DEFAULT_PSI_SE, TAU_RATIO_VALUES
from repro.bench.reporting import format_table
from repro.planning.bruteforce import maxrknnt_pre
from repro.planning.maxrknnt import MINIMIZE

MAX_CANDIDATES = 150


def test_figure19_effect_of_tau_ratio(
    benchmark,
    la_bundle,
    la_vertex_index,
    la_planner,
    bench_scale,
    write_result,
    planning_query_for,
):
    city, _, _, _ = la_bundle
    ratios = TAU_RATIO_VALUES[:3] if bench_scale.name == "smoke" else TAU_RATIO_VALUES

    # Fix one reachable start/end pair; sweep only the budget.
    start, end, base_tau = planning_query_for(
        la_bundle, la_vertex_index, DEFAULT_PSI_SE, ratio=1.0
    )
    shortest = base_tau  # ratio=1.0 means τ equals the shortest distance

    rows = []
    pre_seconds_series = []
    planner_seconds_series = []
    candidate_series = []
    for ratio in ratios:
        tau = shortest * ratio

        started = time.perf_counter()
        pre = maxrknnt_pre(
            city.network,
            la_vertex_index,
            start,
            end,
            tau,
            max_candidates=MAX_CANDIDATES,
        )
        pre_seconds = time.perf_counter() - started

        pre_max = la_planner.plan(start, end, tau)
        pre_min = la_planner.plan(start, end, tau, objective=MINIMIZE)

        pre_seconds_series.append(pre_seconds)
        planner_seconds_series.append(pre_max.stats.seconds if pre_max else 0.0)
        candidate_series.append(pre.stats.complete_routes if pre else 0)
        rows.append(
            {
                "tau/psi": ratio,
                "tau_km": tau,
                "candidates": pre.stats.complete_routes if pre else 0,
                "Pre_s": pre_seconds,
                "PreMax_s": pre_max.stats.seconds if pre_max else 0.0,
                "PreMin_s": pre_min.stats.seconds if pre_min else 0.0,
                "passengers_max": pre_max.passengers if pre_max else 0,
                "passengers_min": pre_min.passengers if pre_min else 0,
            }
        )

        if pre is not None and pre_max is not None:
            # A larger budget can only improve (or preserve) the optimum.
            assert pre_max.travel_distance <= tau + 1e-9

    # Paper shape: the candidate space (and hence the enumeration cost) grows
    # with the budget ratio.
    assert candidate_series[-1] >= candidate_series[0]
    # The optimum value is monotone in the budget.
    passengers = [row["passengers_max"] for row in rows]
    assert all(b >= a for a, b in zip(passengers, passengers[1:]))

    write_result(
        "figure19_effect_tau",
        format_table(rows, title="Figure 19 (LA) — planning cost vs τ/ψ(se)"),
    )

    benchmark(la_planner.plan, start, end, shortest * ratios[-1])
