"""Figure 14: RkNNT running time as the query point interval I grows (LA, NYC).

The paper reports a slight increase in running time for larger intervals:
when adjacent query points are far apart it is harder for a single filter
point to dominate a node against every query point.
"""

from __future__ import annotations

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    INTERVAL_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import FILTER_REFINE, VORONOI


def test_figure14_effect_of_interval(
    benchmark, la_bundle, nyc_bundle, bench_scale, write_result
):
    intervals = [
        value * bench_scale.distance_scale
        for value in (INTERVAL_VALUES[::2] if bench_scale.name == "smoke" else INTERVAL_VALUES)
    ]
    sections = []
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        _, _, processor, workload = bundle
        sweep = sweep_parameter(
            processor,
            workload,
            parameter="interval",
            values=intervals,
            queries_per_value=bench_scale.queries_per_point,
            k=DEFAULT_K,
            query_length=DEFAULT_QUERY_LENGTH,
            interval=DEFAULT_INTERVAL,
        )
        sections.append(
            format_table(sweep.rows(), title=f"Figure 14 ({name}) — CPU cost vs interval I")
        )
        for value in sweep.values:
            fr = next(t for t in sweep.timings[value] if t.method == FILTER_REFINE)
            vo = next(t for t in sweep.timings[value] if t.method == VORONOI)
            assert fr.result_size == vo.result_size
            assert vo.candidates <= fr.candidates + 1e-9
            assert fr.total_seconds > 0.0

    write_result("figure14_effect_interval", "\n\n".join(sections))

    _, _, processor, workload = la_bundle
    query = workload.random_query_route(DEFAULT_QUERY_LENGTH, intervals[-1])
    benchmark(processor.query, query, DEFAULT_K, method=VORONOI)
