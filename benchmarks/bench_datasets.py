"""Tables 2 and 3: dataset statistics (routes, graph size, transitions).

The paper reports |DR|, |G.E| and |G.V| per route dataset (Table 2) and
|DT| plus the bounding box per transition dataset (Table 3).  The synthetic
stand-ins are smaller, but the *relative* relationship must hold: the NYC
dataset has more routes, more graph vertices/edges and more transitions than
the LA dataset.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table


def dataset_rows(name, bundle):
    city, transitions, _, _ = bundle
    box = transitions.bbox
    return {
        "dataset": name,
        "|DR|": len(city.routes),
        "|G.E|": city.network.edge_count,
        "|G.V|": city.network.vertex_count,
        "|DT|": len(transitions),
        "bbox": f"[{box.min_x:.1f},{box.min_y:.1f}]x[{box.max_x:.1f},{box.max_y:.1f}]",
    }


def test_table2_table3_dataset_statistics(benchmark, la_bundle, nyc_bundle, write_result):
    la_row = dataset_rows("LA-like", la_bundle)
    nyc_row = dataset_rows("NYC-like", nyc_bundle)

    # Relative shape of Tables 2-3: NYC is the larger dataset on every axis.
    assert nyc_row["|DR|"] > la_row["|DR|"]
    assert nyc_row["|DT|"] > la_row["|DT|"]
    assert nyc_row["|G.V|"] > 0 and nyc_row["|G.E|"] > 0

    text = format_table(
        [la_row, nyc_row],
        title="Tables 2 & 3 — dataset statistics (scaled synthetic stand-ins)",
    )
    write_result("table2_table3_datasets", text)

    # Benchmark the cost of building the route index (the operation the
    # dataset statistics feed into).
    from repro.index.route_index import RouteIndex

    city, _, _, _ = la_bundle
    benchmark(lambda: RouteIndex(city.routes, max_entries=16))
