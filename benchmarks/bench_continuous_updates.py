"""Delta-maintained standing queries vs. recompute-per-update.

Not a figure of the paper: this benchmark quantifies the continuous-query
subsystem (``repro.engine.continuous``).  The same stream of transition
inserts/deletes is replayed against two identically-seeded cities:

* **delta** — one :meth:`~repro.core.rknnt.RkNNTProcessor.watch`
  subscription absorbs every update incrementally (O(filter) half-space
  test per inserted endpoint, O(1) deletes, result deltas polled after
  every update);
* **recompute** — the pre-continuous workflow: a fresh
  :meth:`~repro.core.rknnt.RkNNTProcessor.query` after every update.

Both paths must finish with element-wise identical standing results, also
equal to the brute-force oracle; only then are the timings trusted.

Acceptance bar: delta maintenance beats recompute-per-update on the smoke
workload (asserted at ≥ 1.5×; in practice the gap is one or two orders of
magnitude, since a delta touches two endpoints while a recompute re-runs
the whole filter → prune → verify pipeline).

Results are written as a text table, as JSON under ``benchmarks/results/``,
and appended to the repo-root ``BENCH_batch.json`` trajectory artifact
(entries tagged ``"benchmark": "continuous_updates"``).
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.bench.harness import build_benchmark_city
from repro.bench.parameters import DEFAULT_INTERVAL, DEFAULT_QUERY_LENGTH
from repro.bench.reporting import append_trajectory, format_table, git_commit
from repro.core.baseline import rknnt_bruteforce
from repro.core.rknnt import VORONOI
from repro.data.checkins import TransitionGenerator
from repro.geometry.kernels import numpy_available
from repro.model.transition import Transition

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json",
)

#: k of the standing query (kept modest, like the batch benchmark, so
#: pruning stays effective on the scaled-down cities).
WATCH_K = 5

#: Required advantage of delta maintenance over recompute-per-update.  The
#: true gap is typically 10–100×; the bar stays far below that so noisy
#: shared runners cannot flake it while still failing on any regression
#: that makes deltas no cheaper than recomputation.
MIN_SPEEDUP = 1.5


def _build_update_stream(city, transitions, updates, seed=2024):
    """A deterministic list of ``("insert", Transition) | ("delete", id)``.

    Inserts slightly outnumber deletes so the active set keeps churning
    without draining; deletes always target a currently-live id so both
    replay paths stay valid.
    """
    rng = random.Random(seed)
    generator = TransitionGenerator(city.routes, seed=seed)
    next_id = transitions.next_id()
    live = list(transitions.transition_ids)
    stream = []
    for fresh in generator.iter_transitions(updates, start_id=next_id):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            stream.append(("delete", victim))
        else:
            stream.append(("insert", fresh))
            live.append(fresh.transition_id)
        if len(stream) >= updates:
            break
    return stream


def _replay(processor, stream):
    for kind, payload in stream:
        if kind == "insert":
            transition = payload
            processor.add_transition(
                Transition(
                    transition.transition_id,
                    transition.origin,
                    transition.destination,
                    timestamp=transition.timestamp,
                )
            )
        else:
            processor.remove_transition(payload)


def test_continuous_updates(benchmark, bench_scale, write_result):
    # Two identically-seeded bundles: the streams mutate their transition
    # sets, so the session-scoped fixture bundle must stay untouched.
    city_a, transitions_a, processor_a, workload = build_benchmark_city(
        "la", bench_scale
    )
    city_b, transitions_b, processor_b, _ = build_benchmark_city(
        "la", bench_scale
    )
    query = workload.query_routes(
        1, DEFAULT_QUERY_LENGTH, DEFAULT_INTERVAL * bench_scale.distance_scale
    )[0]
    updates = max(60, 20 * bench_scale.queries_per_point)
    stream = _build_update_stream(city_a, transitions_a, updates)

    # Delta path: one standing subscription, updates folded incrementally.
    subscription = processor_a.watch(query, WATCH_K, method=VORONOI)
    emitted = 0
    started = time.perf_counter()
    for kind, payload in stream:
        _replay(processor_a, [(kind, payload)])
        emitted += len(subscription.poll())
    delta_seconds = time.perf_counter() - started
    delta_ids = subscription.result().transition_ids

    # Recompute path: the same stream, a fresh query after every update.
    started = time.perf_counter()
    recompute_ids = frozenset()
    for kind, payload in stream:
        _replay(processor_b, [(kind, payload)])
        recompute_ids = processor_b.query(
            query, WATCH_K, method=VORONOI
        ).transition_ids
    recompute_seconds = time.perf_counter() - started

    # Correctness before any timing is trusted.
    assert delta_ids == recompute_ids, "delta result diverged from recompute"
    oracle = rknnt_bruteforce(
        city_a.routes, processor_a.transitions, query, WATCH_K
    )
    assert delta_ids == oracle.transition_ids, "delta result diverged from oracle"

    speedup = recompute_seconds / delta_seconds if delta_seconds else float("inf")
    stats = subscription.delta_stats
    rows = [
        {
            "mode": "delta",
            "total_s": delta_seconds,
            "per_update_ms": delta_seconds / len(stream) * 1000.0,
            "speedup": speedup,
        },
        {
            "mode": "recompute",
            "total_s": recompute_seconds,
            "per_update_ms": recompute_seconds / len(stream) * 1000.0,
            "speedup": 1.0,
        },
    ]
    table = format_table(
        rows,
        title=(
            f"continuous updates: delta maintenance vs recompute-per-update "
            f"({len(stream)} updates, k={WATCH_K}, method={VORONOI}, "
            f"endpoints filtered/verified = "
            f"{stats.endpoints_filtered}/{stats.endpoints_verified}, "
            f"deltas emitted = {emitted})"
        ),
    )
    write_result("continuous_updates", table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "benchmark": "continuous_updates",
        "updates": len(stream),
        "k": WATCH_K,
        "method": VORONOI,
        "numpy": numpy_available(),
        "scale": bench_scale.name,
        "delta_seconds": delta_seconds,
        "recompute_seconds": recompute_seconds,
        "speedup": speedup,
        "endpoints_filtered": stats.endpoints_filtered,
        "endpoints_verified": stats.endpoints_verified,
        "deltas_emitted": emitted,
    }
    with open(
        os.path.join(RESULTS_DIR, "continuous_updates.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)
    append_trajectory(
        TRAJECTORY_PATH,
        {
            "commit": git_commit(os.path.dirname(os.path.abspath(__file__))),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        },
    )

    # Acceptance bar: delta maintenance must beat recompute-per-update.
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup from delta maintenance, got "
        f"{speedup:.2f}x ({delta_seconds:.3f}s vs {recompute_seconds:.3f}s)"
    )

    # pytest-benchmark datum: one steady-state insert + delete round-trip
    # against the standing subscription (net-zero on the dataset).
    spare_id = processor_a.transitions.next_id()
    spare = Transition(spare_id, (1.0, 1.0), (2.0, 2.0))

    def churn_once():
        processor_a.add_transition(
            Transition(spare_id, spare.origin, spare.destination)
        )
        subscription.poll()
        processor_a.remove_transition(spare_id)
        subscription.poll()

    benchmark(churn_once)
