"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure of the paper (see DESIGN.md
for the index).  Datasets are scaled-down synthetic stand-ins for the paper's
NYC / LA data; the scale is controlled by the ``REPRO_BENCH_SCALE``
environment variable (``smoke`` by default, ``small`` / ``full`` for more
faithful runs).

Each benchmark writes the rows/series it reproduces to
``benchmarks/results/<name>.txt`` so the shapes can be compared against the
paper after the run (EXPERIMENTS.md records one such comparison).
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

from repro.bench.harness import build_benchmark_city
from repro.bench.parameters import get_scale
from repro.core.rknnt import RkNNTProcessor
from repro.planning.maxrknnt import MaxRkNNTPlanner
from repro.planning.precompute import VertexRkNNTIndex

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: k used for the planning benchmarks (the paper pre-computes k = 10; the
#: scaled cities have fewer routes so a smaller default keeps results
#: non-degenerate).
PLANNING_K = 5


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale()


@pytest.fixture(scope="session")
def la_bundle(bench_scale):
    """(city, transitions, processor, workload) for the LA-like dataset."""
    return build_benchmark_city("la", bench_scale)


@pytest.fixture(scope="session")
def nyc_bundle(bench_scale):
    """(city, transitions, processor, workload) for the NYC-like dataset."""
    return build_benchmark_city("nyc", bench_scale)


@pytest.fixture(scope="session")
def la_vertex_index(la_bundle):
    """Pre-computed per-vertex RkNNT index for the LA-like network."""
    city, _, processor, _ = la_bundle
    index = VertexRkNNTIndex(city.network, processor, k=PLANNING_K)
    index.build()
    return index


@pytest.fixture(scope="session")
def nyc_vertex_index(nyc_bundle):
    """Pre-computed per-vertex RkNNT index for the NYC-like network."""
    city, _, processor, _ = nyc_bundle
    index = VertexRkNNTIndex(city.network, processor, k=PLANNING_K)
    index.build()
    return index


@pytest.fixture(scope="session")
def la_planner(la_bundle, la_vertex_index):
    city, _, _, _ = la_bundle
    return MaxRkNNTPlanner(city.network, la_vertex_index)


@pytest.fixture(scope="session")
def nyc_planner(nyc_bundle, nyc_vertex_index):
    city, _, _, _ = nyc_bundle
    return MaxRkNNTPlanner(city.network, nyc_vertex_index)


@pytest.fixture(scope="session")
def write_result() -> Callable[[str, str], str]:
    """Write a reproduction artefact to benchmarks/results/<name>.txt."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _write(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.rstrip() + "\n")
        # Also echo to stdout so `pytest -s` shows it inline.
        print(f"\n--- {name} ---")
        print(text)
        return path

    return _write


def _planning_query_for(bundle, vertex_index, straight_distance, ratio=1.4):
    """A (start, end, tau) planning query scaled to the benchmark city."""
    city, _, _, workload = bundle
    scale = get_scale()
    target = straight_distance * scale.distance_scale
    for _ in range(30):
        start, end = workload.planning_query(target, tolerance=0.5)
        shortest = vertex_index.shortest_distance(start, end)
        if shortest != float("inf"):
            return start, end, shortest * ratio
    # Fall back to any pair on the same connected component.
    for start in city.network.vertices():
        for end in city.network.vertices():
            if start == end:
                continue
            shortest = vertex_index.shortest_distance(start, end)
            if shortest != float("inf") and shortest >= target / 2:
                return start, end, shortest * ratio
    raise RuntimeError("could not build a reachable planning query")


@pytest.fixture(scope="session")
def planning_query_for():
    """Callable fixture: (bundle, vertex_index, ψ(se)[, ratio]) → (start, end, τ)."""
    return _planning_query_for


@pytest.fixture(scope="session")
def planning_k():
    return PLANNING_K
