"""Figure 17: frequency histograms of ψ(se), the point interval and the number
of stops over all routes (LA and NYC).

These distributions justify the parameter grid of Table 4 (which ψ(se) values
and intervals are realistic).  The reproduction asserts the basic shape: the
distributions are unimodal-ish with positive support and the NYC-like network
has at least as many stops per route on average as the LA-like one has in the
paper's relative ordering.
"""

from __future__ import annotations

from repro.bench.reporting import format_histogram, summarize_distribution


def test_figure17_route_statistics(benchmark, la_bundle, nyc_bundle, write_result):
    sections = []
    summaries = {}
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        city, _, _, _ = bundle
        routes = city.routes
        straight = [route.straight_line_distance for route in routes]
        intervals = routes.intervals()
        stops = routes.stop_counts()
        summaries[name] = {
            "psi_se": summarize_distribution(straight),
            "interval": summarize_distribution(intervals),
            "stops": summarize_distribution([float(s) for s in stops]),
        }

        assert all(value > 0 for value in straight)
        assert all(value > 0 for value in intervals)
        assert all(value >= 2 for value in stops)

        sections.append(
            format_histogram(
                straight, bins=8, title=f"Figure 17 ({name}) — ψ(se) straight-line distance"
            )
        )
        sections.append(
            format_histogram(
                intervals, bins=8, title=f"Figure 17 ({name}) — point interval I = ψ(R)/|R|"
            )
        )
        sections.append(
            format_histogram(
                [float(s) for s in stops], bins=8, title=f"Figure 17 ({name}) — #stops per route"
            )
        )

    write_result("figure17_route_stats", "\n\n".join(sections))

    city, _, _, _ = la_bundle
    benchmark(lambda: (city.routes.intervals(), city.routes.stop_counts()))
