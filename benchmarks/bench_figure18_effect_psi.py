"""Figure 18: MaxRkNNT running time as the start/end distance ψ(se) grows.

Methods compared, as in the paper: the brute-force baseline (BF: enumerate
candidates + one RkNNT query each), Pre (enumerate candidates + pre-computed
per-vertex unions), and the pruned searches Pre-Max / Pre-Min (Algorithm 6).

Paper shape: every method slows down as ψ(se) grows (more graph between the
endpoints) and the pruned searches are far cheaper than BF, with Pre in
between.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.parameters import PSI_SE_VALUES
from repro.bench.reporting import format_table
from repro.planning.bruteforce import maxrknnt_bruteforce, maxrknnt_pre
from repro.planning.maxrknnt import MINIMIZE

#: Cap on the number of candidate routes the BF/Pre baselines may enumerate;
#: keeps the baseline tractable on the pure-Python testbed (the cap is noted
#: in the result table when it binds).
MAX_CANDIDATES = 60


def test_figure18_effect_of_psi_se(
    benchmark,
    la_bundle,
    la_vertex_index,
    la_planner,
    bench_scale,
    write_result,
    planning_query_for,
    planning_k,
):
    city, _, processor, _ = la_bundle
    psi_values = PSI_SE_VALUES[:2] if bench_scale.name == "smoke" else PSI_SE_VALUES

    rows = []
    totals = {"BF": 0.0, "Pre": 0.0, "Pre-Max": 0.0, "Pre-Min": 0.0}
    for psi in psi_values:
        for _ in range(bench_scale.planning_queries):
            start, end, tau = planning_query_for(la_bundle, la_vertex_index, psi)

            started = time.perf_counter()
            bf = maxrknnt_bruteforce(
                city.network,
                processor,
                start,
                end,
                tau,
                k=planning_k,
                max_candidates=MAX_CANDIDATES,
            )
            bf_seconds = time.perf_counter() - started

            started = time.perf_counter()
            pre = maxrknnt_pre(
                city.network,
                la_vertex_index,
                start,
                end,
                tau,
                max_candidates=MAX_CANDIDATES,
            )
            pre_seconds = time.perf_counter() - started

            pre_max = la_planner.plan(start, end, tau)
            pre_min = la_planner.plan(start, end, tau, objective=MINIMIZE)

            totals["BF"] += bf_seconds
            totals["Pre"] += pre_seconds
            totals["Pre-Max"] += pre_max.stats.seconds if pre_max else 0.0
            totals["Pre-Min"] += pre_min.stats.seconds if pre_min else 0.0
            rows.append(
                {
                    "psi_se": psi,
                    "BF_s": bf_seconds,
                    "Pre_s": pre_seconds,
                    "PreMax_s": pre_max.stats.seconds if pre_max else 0.0,
                    "PreMin_s": pre_min.stats.seconds if pre_min else 0.0,
                    "candidates": bf.stats.complete_routes if bf else 0,
                    "passengers": pre_max.passengers if pre_max else 0,
                }
            )

            # Consistency between the baselines and the pruned search when
            # the brute-force candidate cap did not bind.
            if bf is not None and pre is not None and bf.stats.complete_routes < MAX_CANDIDATES:
                assert bf.passengers == pre.passengers
                if pre_max is not None:
                    assert pre_max.passengers <= pre.passengers

    # Paper shape: replacing the per-candidate RkNNT query with pre-computed
    # unions removes the dominant cost of BF.
    assert totals["Pre"] < totals["BF"]
    # The pruned searches must also stay far below the brute-force baseline
    # (the paper's headline gap in Figure 18).
    assert totals["Pre-Max"] < totals["BF"]
    assert totals["Pre-Min"] < totals["BF"]

    write_result(
        "figure18_effect_psi",
        format_table(rows, title="Figure 18 (LA) — planning cost vs ψ(se) (seconds)"),
    )

    start, end, tau = planning_query_for(la_bundle, la_vertex_index, psi_values[0])
    benchmark(la_planner.plan, start, end, tau)
