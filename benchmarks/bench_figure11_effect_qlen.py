"""Figure 11: RkNNT running time as the query length |Q| grows (LA and NYC).

Paper findings reproduced here: Filter-Refine and Voronoi degrade sharply as
|Q| grows (the filtering space shrinks), while Divide-Conquer grows roughly
linearly and stays fastest.
"""

from __future__ import annotations

from repro.bench.harness import sweep_parameter
from repro.bench.parameters import (
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    QUERY_LENGTH_VALUES,
)
from repro.bench.reporting import format_table
from repro.core.rknnt import DIVIDE_CONQUER, FILTER_REFINE, VORONOI


def test_figure11_effect_of_query_length(
    benchmark, la_bundle, nyc_bundle, bench_scale, write_result
):
    lengths = (
        QUERY_LENGTH_VALUES[::3] if bench_scale.name == "smoke" else QUERY_LENGTH_VALUES
    )
    sections = []
    for name, bundle in (("LA-like", la_bundle), ("NYC-like", nyc_bundle)):
        _, _, processor, workload = bundle
        sweep = sweep_parameter(
            processor,
            workload,
            parameter="query_length",
            values=list(lengths),
            queries_per_value=bench_scale.queries_per_point,
            k=DEFAULT_K,
            query_length=DEFAULT_QUERY_LENGTH,
            interval=DEFAULT_INTERVAL * bench_scale.distance_scale,
        )
        sections.append(
            format_table(sweep.rows(), title=f"Figure 11 ({name}) — CPU cost vs |Q|")
        )

        # Filter-refine cost grows with |Q| (smaller filtering space).
        fr = sweep.series(FILTER_REFINE)
        assert fr[-1][1] > fr[0][1]
        # Divide & conquer grows roughly linearly: per-sub-query cost should
        # not blow up as |Q| grows (the paper's "almost linear increase").
        dc = sweep.series(DIVIDE_CONQUER)
        per_point_first = dc[0][1] / lengths[0]
        per_point_last = dc[-1][1] / lengths[-1]
        assert per_point_last <= per_point_first * 3.0
        # Per parameter value, the stronger Voronoi filter never leaves more
        # verification work than plain filter-refine.
        for value in sweep.values:
            fr_timing = next(
                t for t in sweep.timings[value] if t.method == FILTER_REFINE
            )
            vo_timing = next(t for t in sweep.timings[value] if t.method == VORONOI)
            assert vo_timing.candidates <= fr_timing.candidates + 1e-9

    write_result("figure11_effect_qlen", "\n\n".join(sections))

    _, _, processor, workload = la_bundle
    query = workload.random_query_route(
        max(lengths), DEFAULT_INTERVAL * bench_scale.distance_scale
    )
    benchmark(processor.query, query, DEFAULT_K, method=DIVIDE_CONQUER)
