#!/usr/bin/env python
"""Optimal route planning with MaxRkNNT / MinRkNNT (Section 6, Figure 21).

Reproduces the paper's closing case study: between the same start and end
stops, compare

* the shortest route,
* the MaxRkNNT route (attracts the most passengers within a distance budget),
* the MinRkNNT route (attracts the fewest — e.g. for an ambulance), and
* a brute-force verification of the MaxRkNNT answer.

Run it with::

    python examples/route_planning.py
"""

from __future__ import annotations

import time

from repro import RkNNTProcessor
from repro.bench.reporting import format_table
from repro.data.workloads import QueryWorkload, make_city
from repro.planning import (
    MaxRkNNTPlanner,
    VertexRkNNTIndex,
    maxrknnt_pre,
    shortest_path,
)


def main() -> None:
    k = 3
    city, transitions = make_city("mini")
    processor = RkNNTProcessor(city.routes, transitions)
    network = city.network
    workload = QueryWorkload(city, seed=21)

    print("pre-computing per-vertex RkNNT sets and the shortest-distance matrix...")
    vertex_index = VertexRkNNTIndex(network, processor, k=k)
    report = vertex_index.build()
    print(f"  done in {report.total_seconds:.2f}s "
          f"({report.vertices} vertices, k = {k})")

    planner = MaxRkNNTPlanner(network, vertex_index)

    # A planning query: two stops a few kilometres apart, with the paper's
    # default budget ratio τ/ψ(se) = 1.4 applied to the shortest path length.
    start, end = workload.planning_query(straight_distance=4.0, tolerance=0.6)
    shortest_distance, shortest_route = shortest_path(network, start, end)
    tau = shortest_distance * 1.4

    print(f"\nplanning from stop {start} to stop {end}: "
          f"shortest path {shortest_distance:.2f} km, budget τ = {tau:.2f} km")

    rows = []

    # 1. Shortest route, evaluated with the pre-computed per-vertex sets.
    shortest_passengers = len(
        VertexRkNNTIndex.exists_ids(vertex_index.route_endpoints(shortest_route))
    )
    rows.append(
        {
            "route": "shortest",
            "passengers": shortest_passengers,
            "distance_km": shortest_distance,
            "stops": len(shortest_route),
            "search_s": 0.0,
        }
    )

    # 2. MaxRkNNT with pruning (Algorithm 6).
    started = time.perf_counter()
    best = planner.plan_max(start, end, tau)
    rows.append(
        {
            "route": "MaxRkNNT",
            "passengers": best.passengers,
            "distance_km": best.travel_distance,
            "stops": best.stop_count,
            "search_s": time.perf_counter() - started,
        }
    )

    # 3. MinRkNNT (e.g. an emergency vehicle avoiding crowds).
    started = time.perf_counter()
    least = planner.plan_min(start, end, tau)
    rows.append(
        {
            "route": "MinRkNNT",
            "passengers": least.passengers,
            "distance_km": least.travel_distance,
            "stops": least.stop_count,
            "search_s": time.perf_counter() - started,
        }
    )

    # 4. Verification: the Pre baseline enumerates every candidate route.
    started = time.perf_counter()
    verified = maxrknnt_pre(network, vertex_index, start, end, tau)
    rows.append(
        {
            "route": "Pre (exhaustive check)",
            "passengers": verified.passengers,
            "distance_km": verified.travel_distance,
            "stops": verified.stop_count,
            "search_s": time.perf_counter() - started,
        }
    )

    print(format_table(rows, title="\nfour routes between the same stops (cf. Figure 21)"))

    gain = best.passengers - shortest_passengers
    extra_km = best.travel_distance - shortest_distance
    print(
        f"\nMaxRkNNT attracts {gain} more passenger assignments than the "
        f"shortest route at the cost of {extra_km:.2f} extra km"
    )
    print(
        f"pruned search explored {best.stats.expansions} partial routes "
        f"(reachability pruned {best.stats.pruned_by_reachability}, "
        f"dominance pruned {best.stats.pruned_by_dominance})"
    )
    assert verified.passengers == best.passengers or best.passengers <= verified.passengers
    print("MaxRkNNT answer verified against the exhaustive Pre baseline")


if __name__ == "__main__":
    main()
