#!/usr/bin/env python
"""Capacity estimation for existing bus routes (the paper's first use case).

For every existing bus route, run an RkNNT query (with the route itself
removed from the index, exactly as in the paper's "real route query"
experiments) to estimate how many passenger transitions would pick that route
as one of their k nearest travel options.  The output ranks routes by
estimated demand and contrasts the ∃ and ∀ semantics.

Run it with::

    python examples/capacity_estimation.py
"""

from __future__ import annotations

import time

from repro import RkNNTProcessor
from repro.bench.reporting import format_histogram, format_table, summarize_distribution
from repro.data.workloads import make_city


def main() -> None:
    city, transitions = make_city("mini")
    processor = RkNNTProcessor(city.routes, transitions)
    k = 5

    print(
        f"estimating capacity of {len(city.routes)} routes against "
        f"{len(transitions)} passenger transitions (k = {k})"
    )

    rows = []
    query_times = []
    for route in city.routes:
        started = time.perf_counter()
        # Passing the Route object automatically excludes it from competing
        # against itself in the RR-tree.
        exists_result = processor.query(route, k, method="divide-conquer")
        elapsed = time.perf_counter() - started
        query_times.append(elapsed)
        rows.append(
            {
                "route": route.name or str(route.route_id),
                "stops": len(route),
                "length_km": route.travel_distance,
                "riders_exists": len(exists_result.exists_ids()),
                "riders_forall": len(exists_result.forall_ids()),
                "seconds": elapsed,
            }
        )

    rows.sort(key=lambda row: -row["riders_exists"])
    print(format_table(rows, title="\nestimated demand per route (∃ vs ∀ semantics)"))

    summary = summarize_distribution(query_times)
    print(
        f"\nquery time: median {summary['median'] * 1000:.1f} ms, "
        f"p90 {summary['p90'] * 1000:.1f} ms over {summary['count']} routes"
    )
    print(format_histogram([row["riders_exists"] for row in rows], bins=8,
                           title="\ndistribution of estimated demand (∃ riders per route)"))

    # Which routes are over/under-served?
    total_exists = sum(row["riders_exists"] for row in rows)
    print(
        f"\nthe busiest route attracts {rows[0]['riders_exists']} riders "
        f"({100.0 * rows[0]['riders_exists'] / max(1, total_exists):.1f}% of assignments); "
        f"the quietest attracts {rows[-1]['riders_exists']}"
    )


if __name__ == "__main__":
    main()
