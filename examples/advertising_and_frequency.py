#!/usr/bin/env python
"""Downstream applications: ad recommendation and service frequency planning.

The paper motivates RkNNT with applications beyond capacity estimation; this
example exercises two of them end to end using :mod:`repro.apps`:

* pick the advertisements with the largest influence over the passengers an
  existing route would carry (greedy maximum coverage over the RkNNT set);
* slice the day into time slots and recommend how many vehicles per slot the
  route needs, based on the RkNNT demand of each slot.

Run it with::

    python examples/advertising_and_frequency.py
"""

from __future__ import annotations

import random

from repro import RkNNTProcessor, Transition
from repro.apps import Advertisement, AdvertisingRecommender, FrequencyPlanner
from repro.bench.reporting import format_table
from repro.data.checkins import TransitionGenerator
from repro.data.workloads import make_city

INTERESTS = ["music", "sports", "food", "tech", "art", "travel"]
K = 3


def main() -> None:
    city, _ = make_city("mini")
    rng = random.Random(11)

    # Timestamped transitions over a simulated day (0h-24h) with a peak at 8h.
    generator = TransitionGenerator(city.routes, seed=23)
    transitions = generator.generate(600)
    for transition in transitions:
        peak = rng.gauss(8.0, 2.5) if rng.random() < 0.6 else rng.uniform(0.0, 24.0)
        transition.timestamp = max(0.0, min(24.0, peak))

    processor = RkNNTProcessor(city.routes, transitions)
    target_route = max(city.routes, key=lambda route: route.travel_distance)
    print(f"target route: {target_route.name!r} "
          f"({len(target_route)} stops, {target_route.travel_distance:.1f} km)")

    # ------------------------------------------------------------------
    # 1. Advertisement recommendation.
    # ------------------------------------------------------------------
    profiles = {
        transition.transition_id: frozenset(
            rng.sample(INTERESTS, rng.randint(1, 3))
        )
        for transition in transitions
    }
    recommender = AdvertisingRecommender(processor, profiles, k=K)
    audience = recommender.audience(target_route)
    interest_histogram = recommender.audience_interests(audience)
    print(f"\nroute audience: {len(audience)} prospective riders")
    print(format_table(
        [
            {"interest": interest, "riders": count}
            for interest, count in sorted(
                interest_histogram.items(), key=lambda item: -item[1]
            )
        ],
        title="audience interests",
    ))

    ads = [
        Advertisement("concert-tickets", frozenset({"music", "art"})),
        Advertisement("stadium-season-pass", frozenset({"sports"})),
        Advertisement("food-delivery", frozenset({"food"}), value_per_passenger=0.5),
        Advertisement("phone-upgrade", frozenset({"tech"}), value_per_passenger=2.0),
        Advertisement("city-break", frozenset({"travel"})),
    ]
    placements = recommender.recommend(target_route, ads, max_ads=3)
    print(format_table(
        [
            {
                "ad": placement.advertisement.ad_id,
                "reach": placement.reach,
                "value": placement.value,
            }
            for placement in placements
        ],
        title="\nselected advertisements (greedy max coverage)",
    ))
    covered = recommender.coverage(placements)
    print(f"the selected ads reach {len(covered)} of {len(audience)} riders")

    # ------------------------------------------------------------------
    # 2. Service frequency planning.
    # ------------------------------------------------------------------
    planner = FrequencyPlanner(
        city.routes, transitions, k=K, vehicle_capacity=30, target_load_factor=0.8
    )
    plan = planner.plan(target_route, slots=6)
    print(format_table(
        [
            {
                "slot": f"{slot.slot_start:04.1f}-{slot.slot_end:04.1f}h",
                "active_requests": slot.active_transitions,
                "estimated_riders": slot.riders,
                "vehicles": slot.vehicles,
                "load/vehicle": slot.load_per_vehicle,
            }
            for slot in plan
        ],
        title="\nrecommended service frequency per time slot",
    ))
    peak = planner.peak_slot(plan)
    print(
        f"peak slot {peak.slot_start:.1f}-{peak.slot_end:.1f}h needs "
        f"{peak.vehicles} vehicles for ~{peak.riders} riders"
    )


if __name__ == "__main__":
    main()
