#!/usr/bin/env python
"""Continuous queries: standing RkNNT results maintained under a stream.

Where ``dynamic_updates.py`` re-runs the full query after every batch of
ride requests, this example registers *standing* queries with
:meth:`~repro.core.rknnt.RkNNTProcessor.watch` and lets the engine fold
each insert/expiry into the results incrementally: an inserted endpoint is
tested against the subscription's retained filter half-spaces in O(filter)
and only borderline endpoints are verified exactly; deletes are O(1).

The example replays a simulated check-in stream, prints the result deltas
per tick, and finally verifies every subscription against a fresh query
and the brute-force oracle.

Run it with::

    python examples/continuous_queries.py
"""

from __future__ import annotations

import time

from repro import RkNNTProcessor, Transition
from repro.bench.reporting import format_table
from repro.core.baseline import rknnt_bruteforce
from repro.data.checkins import TransitionGenerator
from repro.data.workloads import make_city


WINDOW = 200        # how many recent check-ins stay "active"
BATCH = 40          # check-ins arriving per simulated tick
TICKS = 6
K = 3


def main() -> None:
    city, transitions = make_city("mini")
    for transition_id in list(transitions.transition_ids)[WINDOW:]:
        transitions.remove(transition_id)

    processor = RkNNTProcessor(city.routes, transitions)
    generator = TransitionGenerator(city.routes, seed=7)
    monitored = list(city.routes)[:2]

    subscriptions = {
        route.route_id: processor.watch(route, K, method="voronoi")
        for route in monitored
    }
    print(
        f"watching {len(subscriptions)} routes over a check-in stream "
        f"(window = {WINDOW}, batch = {BATCH}, k = {K})"
    )
    for route in monitored:
        sub = subscriptions[route.route_id]
        print(
            f"  route {route.name!r}: {len(sub.transition_ids)} riders initially"
        )

    next_id = transitions.next_id()
    clock = 0.0
    rows = []
    for tick in range(TICKS):
        clock += 1.0

        started = time.perf_counter()
        # New check-ins arrive...
        for fresh in generator.iter_transitions(BATCH, start_id=next_id):
            processor.add_transition(
                Transition(
                    fresh.transition_id,
                    fresh.origin,
                    fresh.destination,
                    timestamp=clock,
                )
            )
        next_id += BATCH

        # ...and the oldest beyond the window expire.
        active = sorted(
            processor.transitions,
            key=lambda t: (t.timestamp is not None, t.timestamp or 0.0),
        )
        while len(processor.transitions) > WINDOW:
            oldest = active.pop(0)
            processor.remove_transition(oldest.transition_id)
        stream_ms = (time.perf_counter() - started) * 1000.0

        added = removed = 0
        for sub in subscriptions.values():
            for delta in sub.poll():
                added += len(delta.added)
                removed += len(delta.removed)
        rows.append(
            {
                "tick": tick,
                "active": len(processor.transitions),
                "riders_added": added,
                "riders_removed": removed,
                "stream_ms": stream_ms,
            }
        )

    print(
        format_table(
            rows,
            title="\nresult deltas per tick (updates folded incrementally)",
        )
    )

    # Every standing result must equal a fresh query and the oracle.
    for route in monitored:
        sub = subscriptions[route.route_id]
        fresh = processor.query(route, K, method="voronoi")
        oracle = rknnt_bruteforce(city.routes, processor.transitions, route, K)
        assert sub.result().transition_ids == fresh.transition_ids
        assert sub.result().transition_ids == oracle.transition_ids
        stats = sub.delta_stats
        print(
            f"route {route.name!r}: {len(sub.transition_ids)} riders; "
            f"{stats.inserts_seen} inserts / {stats.deletes_seen} expiries "
            f"absorbed, {stats.endpoints_filtered} endpoints rejected by the "
            f"filter test, {stats.endpoints_verified} verified exactly"
        )
    print("\nstanding results verified against fresh queries and the brute-force oracle")


if __name__ == "__main__":
    main()
