#!/usr/bin/env python
"""Dynamic transitions: a rolling window of ride requests (Uber scenario).

The paper stresses that transition data changes continuously: new passenger
requests arrive, old ones expire, and the RkNNT answer must always reflect
the current state without rebuilding the indexes.  This example simulates a
stream of ride requests against a fixed bus network and re-estimates the
demand of one route after every batch of updates.

Run it with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import random
import time

from repro import RkNNTProcessor, Transition
from repro.bench.reporting import format_table
from repro.data.checkins import TransitionGenerator
from repro.data.workloads import make_city


WINDOW = 200        # how many recent requests stay "active"
BATCH = 50          # requests arriving per simulated tick
TICKS = 6           # how many ticks to simulate
K = 3


def main() -> None:
    city, initial_transitions = make_city("mini")
    # Start from a smaller active window so the stream visibly matters.
    for transition_id in list(initial_transitions.transition_ids)[WINDOW:]:
        initial_transitions.remove(transition_id)

    processor = RkNNTProcessor(city.routes, initial_transitions)
    generator = TransitionGenerator(city.routes, seed=99)
    monitored_route = next(iter(city.routes))
    print(
        f"monitoring route {monitored_route.name!r} over a stream of ride requests "
        f"(window = {WINDOW}, batch = {BATCH}, k = {K})"
    )

    rng = random.Random(5)
    next_id = initial_transitions.next_id()
    clock = 0.0
    rows = []
    for tick in range(TICKS):
        clock += 1.0

        # New requests arrive...
        arrivals = list(
            generator.iter_transitions(BATCH, start_id=next_id)
        )
        next_id += BATCH
        for transition in arrivals:
            processor.add_transition(
                Transition(
                    transition.transition_id,
                    transition.origin,
                    transition.destination,
                    timestamp=clock,
                )
            )

        # ...and the oldest ones beyond the window expire.
        active = sorted(
            processor.transitions,
            key=lambda t: (t.timestamp is not None, t.timestamp or 0.0),
        )
        while len(processor.transitions) > WINDOW:
            oldest = active.pop(0)
            processor.remove_transition(oldest.transition_id)

        started = time.perf_counter()
        result = processor.query(monitored_route, K, method="divide-conquer")
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "tick": tick,
                "active_requests": len(processor.transitions),
                "estimated_riders": len(result),
                "query_ms": elapsed * 1000.0,
            }
        )

    print(format_table(rows, title="\ndemand estimate after each batch of updates"))
    print(
        "\nthe index absorbed "
        f"{TICKS * BATCH} arrivals and {TICKS * BATCH} expiries without a rebuild"
    )


if __name__ == "__main__":
    main()
