#!/usr/bin/env python
"""Quickstart: build a small city, run RkNNT queries, plan an optimal route.

This script walks through the library's public API end to end:

1. generate a synthetic city (bus routes + passenger transitions),
2. answer an RkNNT query with each evaluation strategy and compare them
   against the brute-force baseline,
3. plan a MaxRkNNT route between two stops.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import RkNNTProcessor, rknnt_bruteforce
from repro.bench.reporting import format_table
from repro.core.rknnt import METHODS
from repro.data.workloads import QueryWorkload, make_city
from repro.planning import MaxRkNNTPlanner, VertexRkNNTIndex


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: a synthetic city standing in for the paper's LA dataset.
    # ------------------------------------------------------------------
    city, transitions = make_city("mini")
    print(f"city: {city.name!r} with {len(city.routes)} bus routes, "
          f"{len(transitions)} passenger transitions, "
          f"network {city.network.vertex_count} stops / {city.network.edge_count} links")

    processor = RkNNTProcessor(city.routes, transitions)
    workload = QueryWorkload(city, seed=7)

    # ------------------------------------------------------------------
    # 2. RkNNT: which passengers would use a planned route?
    # ------------------------------------------------------------------
    query = workload.random_query_route(length=5, interval=1.0)
    k = 3
    print(f"\nRkNNT query with |Q| = {len(query)} points and k = {k}")

    rows = []
    for method in METHODS:
        started = time.perf_counter()
        result = processor.query(query, k, method=method)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "method": method,
                "results": len(result),
                "seconds": elapsed,
                "candidates": result.stats.candidates,
                "filter_points": result.stats.filter_points,
            }
        )
    oracle = rknnt_bruteforce(city.routes, transitions, query, k)
    rows.append(
        {
            "method": "bruteforce (oracle)",
            "results": len(oracle),
            "seconds": oracle.stats.total_seconds,
            "candidates": oracle.stats.candidates,
            "filter_points": 0,
        }
    )
    print(format_table(rows))
    assert all(row["results"] == len(oracle) for row in rows), "methods disagree!"
    print("all methods agree with the brute-force oracle")

    # ------------------------------------------------------------------
    # 2b. Batched queries: a whole workload through the execution engine.
    # ------------------------------------------------------------------
    # query_batch answers many queries through one shared execution context
    # (vectorized geometry kernels, shared route matrix, memoised
    # sub-queries) and returns element-wise identical results to query().
    workload_queries = workload.query_routes(20, length=5, interval=1.0)

    started = time.perf_counter()
    loop_results = [processor.query(q, k) for q in workload_queries]
    loop_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch_results = processor.query_batch(workload_queries, k)
    batch_seconds = time.perf_counter() - started

    assert all(
        single.confirmed_endpoints == batch.confirmed_endpoints
        for single, batch in zip(loop_results, batch_results)
    ), "batch diverges from single queries!"
    speedup = loop_seconds / batch_seconds if batch_seconds else float("inf")
    print(
        f"\nbatch of {len(workload_queries)} queries: "
        f"loop {loop_seconds * 1000:.0f} ms vs batch {batch_seconds * 1000:.0f} ms "
        f"({speedup:.1f}x, identical answers)"
    )

    # ------------------------------------------------------------------
    # 3. MaxRkNNT: the most attractive route between two stops.
    # ------------------------------------------------------------------
    print("\nPre-computing per-vertex RkNNT sets (Algorithm 5)...")
    vertex_index = VertexRkNNTIndex(city.network, processor, k=k)
    report = vertex_index.build()
    print(
        f"  per-vertex RkNNT: {report.rknnt_seconds:.2f}s, "
        f"all-pairs shortest paths: {report.shortest_path_seconds:.2f}s"
    )

    planner = MaxRkNNTPlanner(city.network, vertex_index)
    start, end = workload.planning_query(straight_distance=4.0, tolerance=0.6)
    shortest = vertex_index.shortest_distance(start, end)
    tau = shortest * 1.4

    best = planner.plan_max(start, end, tau)
    least = planner.plan_min(start, end, tau)
    print(f"\nplanning from stop {start} to stop {end} "
          f"(shortest {shortest:.2f}, budget τ = {tau:.2f})")
    print(format_table(
        [
            {
                "route": "MaxRkNNT",
                "passengers": best.passengers,
                "distance": best.travel_distance,
                "stops": best.stop_count,
            },
            {
                "route": "MinRkNNT",
                "passengers": least.passengers,
                "distance": least.travel_distance,
                "stops": least.stop_count,
            },
        ]
    ))
    print("\ndone — see examples/capacity_estimation.py and "
          "examples/route_planning.py for deeper dives")


if __name__ == "__main__":
    main()
