#!/usr/bin/env python
"""Anti-rot checker for the documentation (README + docs/*.md).

Run from anywhere::

    python tools/check_docs.py

Checks, per markdown file:

1. **Doctests** — every ``>>>`` example is executed (examples in one file
   share a namespace, in order, like a REPL session) and its output must
   match.  This is what keeps the snippets in ``docs/api.md`` and
   ``docs/architecture.md`` honest.
2. **Python fences** — fenced ```` ```python ```` blocks without ``>>>``
   prompts must at least *compile* (catches renamed symbols breaking
   syntax, half-edited snippets, bad indentation).
3. **Relative links** — every ``[text](path)`` pointing into the repo must
   resolve to an existing file.
4. **CLI surface** — every sub-command of ``repro.cli`` must be mentioned
   in the README (so new commands cannot ship undocumented), and the
   README must link both docs pages.
5. **Environment knobs** — every ``RKNNT_*`` variable referenced anywhere
   under ``src/`` must appear (backtick-quoted) in the ``docs/api.md``
   environment table, so a new knob cannot ship undocumented and a renamed
   one cannot leave its stale row behind unnoticed.

Exit status 0 when everything passes; 1 otherwise, with one line per
failure.  The tier-1 suite runs this via ``tests/test_docs.py`` and CI has
a dedicated docs job for it.
"""

from __future__ import annotations

import doctest
import glob
import os
import re
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_KNOB_RE = re.compile(r"\bRKNNT_[A-Z0-9_]+\b")


def doc_files() -> List[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    files.extend(sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))))
    return [path for path in files if os.path.exists(path)]


def extract_fences(text: str) -> List[Tuple[str, int, str]]:
    """``(language, first_line_number, body)`` for every fenced block."""
    fences = []
    language = None
    body: List[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = FENCE_RE.match(line.strip())
        if match and language is None:
            language = match.group(1).lower()
            body = []
            start = number + 1
        elif line.strip() == "```" and language is not None:
            fences.append((language, start, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    return fences


def check_doctests(path: str, failures: List[str]) -> int:
    """Run every ``>>>`` example of the file as one REPL-like session."""
    results = doctest.testfile(
        path,
        module_relative=False,
        verbose=False,
        report=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    if results.failed:
        failures.append(
            f"{os.path.relpath(path, REPO_ROOT)}: "
            f"{results.failed}/{results.attempted} doctest example(s) failed "
            f"(re-run with `python -m doctest {os.path.relpath(path, REPO_ROOT)} -v`)"
        )
    return results.attempted


def check_python_fences(path: str, text: str, failures: List[str]) -> int:
    checked = 0
    for language, line, body in extract_fences(text):
        if language != "python" or ">>>" in body:
            continue  # doctest blocks are executed by check_doctests
        try:
            compile(body, f"{path}:{line}", "exec")
            checked += 1
        except SyntaxError as error:
            failures.append(
                f"{os.path.relpath(path, REPO_ROOT)}:{line + (error.lineno or 1) - 1}: "
                f"python fence does not compile: {error.msg}"
            )
    return checked


def check_links(path: str, text: str, failures: List[str]) -> int:
    checked = 0
    base = os.path.dirname(path)
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        checked += 1
        resolved = os.path.normpath(os.path.join(base, relative))
        if not os.path.exists(resolved):
            failures.append(
                f"{os.path.relpath(path, REPO_ROOT)}: broken link -> {target}"
            )
    return checked


def check_cli_surface(failures: List[str]) -> None:
    readme = os.path.join(REPO_ROOT, "README.md")
    with open(readme, "r", encoding="utf-8") as handle:
        text = handle.read()
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions  # noqa: SLF001 - argparse offers no API
        if hasattr(action, "choices") and action.choices
    )
    for command in subparsers.choices:
        if f"`{command}" not in text and f"cli {command}" not in text:
            failures.append(
                f"README.md: CLI sub-command `{command}` is undocumented"
            )
    for required in ("docs/architecture.md", "docs/api.md"):
        if required not in text:
            failures.append(f"README.md: missing link to {required}")


def check_env_knobs(failures: List[str]) -> int:
    """Every ``RKNNT_*`` knob referenced in ``src/`` must be documented.

    The environment table of ``docs/api.md`` is the single inventory of
    runtime knobs; a knob read by the code but absent there is invisible
    to operators.  Matching is by backtick-quoted name, the way every
    table row renders it.
    """
    api_path = os.path.join(REPO_ROOT, "docs", "api.md")
    with open(api_path, "r", encoding="utf-8") as handle:
        api_text = handle.read()
    knobs = set()
    pattern = os.path.join(SRC_DIR, "**", "*.py")
    for path in glob.glob(pattern, recursive=True):
        with open(path, "r", encoding="utf-8") as handle:
            knobs.update(ENV_KNOB_RE.findall(handle.read()))
    for knob in sorted(knobs):
        if f"`{knob}`" not in api_text:
            failures.append(
                f"docs/api.md: environment knob `{knob}` (referenced in "
                f"src/) is missing from the environment table"
            )
    return len(knobs)


def main() -> int:
    sys.path.insert(0, SRC_DIR)
    failures: List[str] = []
    examples = fences = links = 0
    for path in doc_files():
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        examples += check_doctests(path, failures)
        fences += check_python_fences(path, text, failures)
        links += check_links(path, text, failures)
    check_cli_surface(failures)
    knobs = check_env_knobs(failures)

    name = os.path.basename(sys.argv[0]) or "check_docs.py"
    if failures:
        for failure in failures:
            print(f"{name}: {failure}", file=sys.stderr)
        print(
            f"{name}: FAILED ({len(failures)} problem(s); "
            f"{examples} doctest examples, {fences} compiled fences, "
            f"{links} links, {knobs} env knobs checked)",
            file=sys.stderr,
        )
        return 1
    print(
        f"{name}: OK ({len(doc_files())} files, {examples} doctest examples, "
        f"{fences} compiled fences, {links} links, {knobs} env knobs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
