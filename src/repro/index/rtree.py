"""An in-memory R-tree for planar points.

The paper relies on two R-trees (the RR-tree over route points and the
TR-tree over transition points).  No external R-tree library is assumed, so
this module implements the classic structure from scratch:

* STR (Sort-Tile-Recursive) bulk loading for building an index over an
  existing dataset in one pass,
* dynamic insertion with least-enlargement subtree choice and quadratic node
  splitting (Guttman's R-tree), so the index supports the paper's dynamic
  transition updates,
* deletion with under-full node condensation and re-insertion,
* best-first (MinDist ordered) traversal, the primitive behind the
  ``FilterRoute`` and ``PruneTransition`` algorithms,
* optional maintenance of the union of entry payload sets per node, which the
  route index uses as the paper's ``NList``.

Only point data is stored (every leaf entry is a degenerate rectangle), which
matches how the paper indexes routes and transitions.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import (
    Any,
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.geometry import kernels
from repro.geometry.bbox import BoundingBox

__all__ = ["RTree", "RTreeNode", "RTreeEntry"]


class RTreeEntry:
    """A leaf entry: a point plus an arbitrary payload.

    Attributes
    ----------
    point:
        The indexed ``(x, y)`` location.
    payload:
        Arbitrary application data.  When the owning tree is created with
        ``track_payload_union=True`` the payload must be a set-like of
        hashables (the RR-tree stores the set of route ids covering the
        point, the TR-tree stores ``(transition_id, endpoint)`` tags).
    """

    __slots__ = ("point", "payload")

    def __init__(self, point: Sequence[float], payload: Any):
        self.point = (float(point[0]), float(point[1]))
        self.payload = payload

    @property
    def bbox(self) -> BoundingBox:
        """Degenerate bounding box of the entry's point."""
        return BoundingBox.from_point(self.point)

    def __repr__(self) -> str:
        return f"RTreeEntry(point={self.point}, payload={self.payload!r})"


class RTreeNode:
    """An internal or leaf node of the R-tree."""

    __slots__ = (
        "is_leaf",
        "children",
        "bbox",
        "parent",
        "_payload_union",
        "packed_boxes",
        "packed_union",
    )

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        # Children are RTreeEntry for leaves, RTreeNode for internal nodes.
        self.children: List[Union["RTreeNode", RTreeEntry]] = []
        self.bbox: Optional[BoundingBox] = None
        self.parent: Optional["RTreeNode"] = None
        # Union of the payload sets of every entry below this node (NList).
        # ``None`` means "not materialised yet": trees decoded from columnar
        # pickles defer the frozenset build until someone actually reads it
        # (see the ``payload_union`` property).
        self._payload_union: Optional[FrozenSet[Any]] = frozenset()
        #: Lazily cached packed array of :meth:`child_box_tuples` (see
        #: :meth:`packed_child_boxes`).  Derived state: dropped whenever the
        #: child set changes (every mutation path recomputes the bbox) and
        #: never pickled.  The shared-memory arena pre-populates it with
        #: read-only views so attached workers skip the packing work.
        self.packed_boxes: Optional[Any] = None
        #: Lazily cached sorted int32 id column of :attr:`payload_union`
        #: (RR-tree nodes only — payloads must be integer route ids; see
        #: :meth:`union_ids`).  Derived, never pickled, dropped by
        #: :meth:`recompute_payload_union`; the shared-memory arena
        #: pre-populates it with read-only NList views on attach.
        self.packed_union: Optional[Any] = None

    # ------------------------------------------------------------------
    # Payload union (NList) views
    # ------------------------------------------------------------------
    @property
    def payload_union(self) -> FrozenSet[Any]:
        """Union of the payload sets of every entry below this node.

        Materialised lazily: trees rebuilt from columnar pickles leave it
        unset, and the first read either expands the packed NList column
        (when installed) or recurses into the children bottom-up.
        """
        union = self._payload_union
        if union is None:
            packed = self.packed_union
            if packed is not None:
                union = frozenset(kernels.id_list(packed))
            else:
                union = self._merged_child_union()
            self._payload_union = union
        return union

    def _merged_child_union(self) -> FrozenSet[Any]:
        """Union of the direct children's payloads (one level, not cached)."""
        merged: Set[Any] = set()
        if self.is_leaf:
            for child in self.children:
                merged.update(child.payload)  # type: ignore[union-attr]
        else:
            for child in self.children:
                merged.update(child.payload_union)  # type: ignore[union-attr]
        return frozenset(merged)

    @payload_union.setter
    def payload_union(self, value: FrozenSet[Any]) -> None:
        self._payload_union = value

    def union_ids(self):
        """:attr:`payload_union` as a sorted packed int32 id column.

        Only meaningful for trees whose payloads are integer ids (the
        RR-tree); the verification NList shortcut reads this column instead
        of the frozenset so that attached workers consume the shared-memory
        NList block directly and id iteration order is always sorted.
        """
        packed = self.packed_union
        if packed is None:
            packed = kernels.pack_i32(sorted(self.payload_union))
            self.packed_union = packed
        return packed

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle everything but the derived packed-box cache.

        The cache may hold numpy arrays (or shared-memory views, which must
        never cross a process boundary through a pickle); a receiver repacks
        or re-attaches its own.
        """
        return (
            self.is_leaf,
            self.children,
            self.bbox,
            self.parent,
            self.payload_union,
        )

    def __setstate__(self, state) -> None:
        (
            self.is_leaf,
            self.children,
            self.bbox,
            self.parent,
            self._payload_union,
        ) = state
        self.packed_boxes = None
        self.packed_union = None

    # ------------------------------------------------------------------
    # Maintenance helpers
    # ------------------------------------------------------------------
    def recompute_bbox(self) -> None:
        """Recompute this node's bounding box from its children."""
        # Every mutation that touches the child set runs through here (or
        # through a split, which also ends in recompute calls), so this is
        # the single invalidation point of the packed-box cache.
        self.packed_boxes = None
        if not self.children:
            self.bbox = None
            return
        if self.is_leaf:
            self.bbox = BoundingBox.from_points(
                child.point for child in self.children  # type: ignore[union-attr]
            )
        else:
            self.bbox = BoundingBox.union_all(
                child.bbox for child in self.children  # type: ignore[union-attr]
            )

    def recompute_payload_union(self) -> None:
        """Recompute the union of payload sets of the subtree (one level)."""
        self._payload_union = self._merged_child_union()
        # The packed id column mirrors the frozenset; any union change
        # (dynamic insert/delete) drops it — including arena-attached views,
        # which must never outlive the state they were published against.
        self.packed_union = None

    def entries(self) -> Iterator[RTreeEntry]:
        """Iterate every leaf entry below this node (depth-first)."""
        if self.is_leaf:
            yield from self.children  # type: ignore[misc]
        else:
            for child in self.children:
                yield from child.entries()  # type: ignore[union-attr]

    def child_box_tuples(self) -> List[Tuple[float, float, float, float]]:
        """Bounding boxes of the direct children as plain tuples.

        Leaf entries contribute degenerate boxes.  This is the block view the
        batched execution engine hands to the vectorized geometry kernels so
        that one call prunes (or orders) every child of a node at once.
        """
        boxes: List[Tuple[float, float, float, float]] = []
        for child in self.children:
            if isinstance(child, RTreeNode):
                assert child.bbox is not None
                boxes.append(child.bbox.as_tuple())
            else:
                x, y = child.point
                boxes.append((x, y, x, y))
        return boxes

    def packed_child_boxes(self):
        """:meth:`child_box_tuples` packed for the vectorized kernels, cached.

        The batched execution engine scores / filter-tests all children of a
        node per kernel call; packing the same child boxes on every visit was
        pure overhead, so the packed array (``kernels.pack_boxes`` output —
        a numpy array or a plain tuple list, depending on the backend) is
        cached on the node until its child set changes.  Workers attached to
        a shared-memory arena receive these caches pre-populated with
        read-only views instead of rebuilding them.
        """
        cached = self.packed_boxes
        if cached is None:
            cached = kernels.pack_boxes(self.child_box_tuples())
            self.packed_boxes = cached
        return cached

    def leaf_point_tuples(self) -> List[Tuple[float, float]]:
        """Points of the direct leaf entries (leaf nodes only)."""
        assert self.is_leaf
        return [child.point for child in self.children]  # type: ignore[union-attr]

    def leaf_count(self) -> int:
        """Number of leaf entries below this node."""
        if self.is_leaf:
            return len(self.children)
        return sum(child.leaf_count() for child in self.children)  # type: ignore[union-attr]

    def height(self) -> int:
        """Height of the subtree rooted at this node (leaf = 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.height() for child in self.children)  # type: ignore[union-attr]

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"RTreeNode({kind}, children={len(self.children)})"


class RTree:
    """Dynamic R-tree over planar points.

    Parameters
    ----------
    max_entries:
        Maximum fanout of a node; nodes exceeding it are split.
    min_entries:
        Minimum fill of a node after a split / deletion; defaults to
        ``max_entries // 2``.
    track_payload_union:
        When True every node maintains ``payload_union``: the union of the
        payload sets of all entries in its subtree (the paper's ``NList``).
        Payloads must then be iterables of hashables.
    """

    def __init__(
        self,
        max_entries: int = 16,
        min_entries: Optional[int] = None,
        track_payload_union: bool = False,
    ):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(2, max_entries // 2)
        )
        if self.min_entries * 2 > self.max_entries:
            raise ValueError(
                "min_entries must not exceed half of max_entries "
                f"(got {self.min_entries} vs {self.max_entries})"
            )
        self.track_payload_union = track_payload_union
        self.root = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Size / iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        # An empty tree is falsy; avoids surprising `if tree:` behaviour.
        return self._size > 0

    def entries(self) -> Iterator[RTreeEntry]:
        """Iterate over every leaf entry in the tree."""
        if self._size:
            yield from self.root.entries()

    @property
    def bbox(self) -> Optional[BoundingBox]:
        """Bounding box of the whole tree (None when empty)."""
        return self.root.bbox

    def height(self) -> int:
        """Height of the tree (1 for a tree that is a single leaf)."""
        return self.root.height()

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[RTreeEntry],
        max_entries: int = 16,
        min_entries: Optional[int] = None,
        track_payload_union: bool = False,
    ) -> "RTree":
        """Build a tree over ``entries`` using Sort-Tile-Recursive packing.

        STR produces well-filled, square-ish nodes which keeps MinDist bounds
        tight; it is the standard way to build an R-tree over a known dataset.
        """
        tree = cls(
            max_entries=max_entries,
            min_entries=min_entries,
            track_payload_union=track_payload_union,
        )
        entry_list = list(entries)
        tree._size = len(entry_list)
        if not entry_list:
            return tree

        # Pack leaf level.
        leaves = tree._pack_level_leaf(entry_list)
        # Pack internal levels until a single root remains.
        level: List[RTreeNode] = leaves
        while len(level) > 1:
            level = tree._pack_level_internal(level)
        tree.root = level[0]
        tree.root.parent = None
        return tree

    def _pack_level_leaf(self, entry_list: List[RTreeEntry]) -> List[RTreeNode]:
        groups = _str_partition(
            entry_list, self.max_entries, key=lambda e: e.point
        )
        leaves = []
        for group in groups:
            node = RTreeNode(is_leaf=True)
            node.children = list(group)
            node.recompute_bbox()
            if self.track_payload_union:
                node.recompute_payload_union()
            leaves.append(node)
        return leaves

    def _pack_level_internal(self, nodes: List[RTreeNode]) -> List[RTreeNode]:
        groups = _str_partition(
            nodes, self.max_entries, key=lambda n: n.bbox.center
        )
        parents = []
        for group in groups:
            parent = RTreeNode(is_leaf=False)
            parent.children = list(group)
            for child in group:
                child.parent = parent
            parent.recompute_bbox()
            if self.track_payload_union:
                parent.recompute_payload_union()
            parents.append(parent)
        return parents

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, entry: RTreeEntry) -> None:
        """Insert a single leaf entry (Guttman insertion with quadratic split)."""
        leaf = self._choose_leaf(self.root, entry)
        leaf.children.append(entry)
        self._size += 1
        self._adjust_upwards(leaf, new_entry=entry)

    def insert_point(self, point: Sequence[float], payload: Any) -> RTreeEntry:
        """Convenience wrapper creating and inserting an entry."""
        entry = RTreeEntry(point, payload)
        self.insert(entry)
        return entry

    def _choose_leaf(self, node: RTreeNode, entry: RTreeEntry) -> RTreeNode:
        while not node.is_leaf:
            entry_box = entry.bbox
            best_child = None
            best_enlargement = math.inf
            best_area = math.inf
            for child in node.children:
                assert isinstance(child, RTreeNode)
                enlargement = child.bbox.enlargement(entry_box)
                area = child.bbox.area
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best_child = child
                    best_enlargement = enlargement
                    best_area = area
            assert best_child is not None
            node = best_child
        return node

    def _adjust_upwards(
        self, node: RTreeNode, new_entry: Optional[RTreeEntry] = None
    ) -> None:
        """Propagate bbox/payload updates and splits from ``node`` to the root."""
        while node is not None:
            split_sibling = None
            if len(node.children) > self.max_entries:
                split_sibling = self._split_node(node)
            else:
                node.recompute_bbox()
                if self.track_payload_union:
                    node.recompute_payload_union()

            parent = node.parent
            if split_sibling is not None:
                if parent is None:
                    # Grow the tree: create a new root.
                    new_root = RTreeNode(is_leaf=False)
                    new_root.children = [node, split_sibling]
                    node.parent = new_root
                    split_sibling.parent = new_root
                    new_root.recompute_bbox()
                    if self.track_payload_union:
                        new_root.recompute_payload_union()
                    self.root = new_root
                    return
                parent.children.append(split_sibling)
                split_sibling.parent = parent
            node = parent

    def _split_node(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split: returns the newly created sibling node."""
        children = node.children
        boxes = [
            child.bbox if isinstance(child, RTreeNode) else child.bbox
            for child in children
        ]

        # Pick the two seeds wasting the most area if grouped together.
        seed_a, seed_b = 0, 1
        worst_waste = -math.inf
        for i, j in itertools.combinations(range(len(children)), 2):
            waste = boxes[i].union(boxes[j]).area - boxes[i].area - boxes[j].area
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j

        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        box_a = boxes[seed_a]
        box_b = boxes[seed_b]
        remaining = [
            child for idx, child in enumerate(children) if idx not in (seed_a, seed_b)
        ]

        while remaining:
            # If one group must absorb all remaining entries to reach the
            # minimum fill, assign them wholesale.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                for child in remaining:
                    box_a = box_a.union(_child_bbox(child))
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                for child in remaining:
                    box_b = box_b.union(_child_bbox(child))
                remaining = []
                break

            # Pick the entry with the greatest preference for one group.
            best_idx = 0
            best_diff = -math.inf
            for idx, child in enumerate(remaining):
                child_box = _child_bbox(child)
                d_a = box_a.union(child_box).area - box_a.area
                d_b = box_b.union(child_box).area - box_b.area
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            child = remaining.pop(best_idx)
            child_box = _child_bbox(child)
            d_a = box_a.union(child_box).area - box_a.area
            d_b = box_b.union(child_box).area - box_b.area
            if d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b)):
                group_a.append(child)
                box_a = box_a.union(child_box)
            else:
                group_b.append(child)
                box_b = box_b.union(child_box)

        node.children = group_a
        sibling = RTreeNode(is_leaf=node.is_leaf)
        sibling.children = group_b
        if not node.is_leaf:
            for child in group_b:
                child.parent = sibling  # type: ignore[union-attr]
            for child in group_a:
                child.parent = node  # type: ignore[union-attr]
        node.recompute_bbox()
        sibling.recompute_bbox()
        if self.track_payload_union:
            node.recompute_payload_union()
            sibling.recompute_payload_union()
        return sibling

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def remove(
        self,
        point: Sequence[float],
        match: Optional[Callable[[RTreeEntry], bool]] = None,
    ) -> Optional[RTreeEntry]:
        """Remove one entry located at ``point``.

        Parameters
        ----------
        point:
            The exact location of the entry to remove.
        match:
            Optional predicate narrowing which entry at that location to
            remove (e.g. match on payload).  The first matching entry found
            is removed.

        Returns
        -------
        The removed entry, or ``None`` if no entry matched.
        """
        target = (float(point[0]), float(point[1]))
        found = self._find_leaf(self.root, target, match)
        if found is None:
            return None
        leaf, entry = found
        leaf.children.remove(entry)
        self._size -= 1
        self._condense(leaf)
        return entry

    def _find_leaf(
        self,
        node: RTreeNode,
        point: Tuple[float, float],
        match: Optional[Callable[[RTreeEntry], bool]],
    ) -> Optional[Tuple[RTreeNode, RTreeEntry]]:
        if node.bbox is None or not node.bbox.contains_point(point):
            return None
        if node.is_leaf:
            for entry in node.children:
                assert isinstance(entry, RTreeEntry)
                if entry.point == point and (match is None or match(entry)):
                    return node, entry
            return None
        for child in node.children:
            assert isinstance(child, RTreeNode)
            found = self._find_leaf(child, point, match)
            if found is not None:
                return found
        return None

    def _condense(self, node: RTreeNode) -> None:
        """Handle under-full nodes after a deletion, re-inserting orphans."""
        orphans: List[RTreeEntry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current.children) < self.min_entries:
                parent.children.remove(current)
                orphans.extend(current.entries())
            else:
                current.recompute_bbox()
                if self.track_payload_union:
                    current.recompute_payload_union()
            current = parent
        # Refresh the root.
        self.root.recompute_bbox()
        if self.track_payload_union:
            self.root.recompute_payload_union()
        # Shrink the tree when the root has a single internal child.
        while not self.root.is_leaf and len(self.root.children) == 1:
            only_child = self.root.children[0]
            assert isinstance(only_child, RTreeNode)
            only_child.parent = None
            self.root = only_child
        # Re-insert orphaned entries.
        self._size -= len(orphans)
        for entry in orphans:
            self.insert(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, box: BoundingBox) -> List[RTreeEntry]:
        """All entries whose point lies inside ``box``."""
        results: List[RTreeEntry] = []
        if self._size == 0 or self.root.bbox is None:
            return results
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.bbox is None or not node.bbox.intersects(box):
                continue
            if node.is_leaf:
                for entry in node.children:
                    assert isinstance(entry, RTreeEntry)
                    if box.contains_point(entry.point):
                        results.append(entry)
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return results

    def nearest_neighbors(
        self, point: Sequence[float], k: int = 1
    ) -> List[Tuple[float, RTreeEntry]]:
        """The ``k`` entries nearest to ``point`` as ``(distance, entry)`` pairs."""
        if k <= 0:
            raise ValueError("k must be positive")
        results: List[Tuple[float, RTreeEntry]] = []
        for distance, entry in self.iter_nearest(point):
            results.append((distance, entry))
            if len(results) >= k:
                break
        return results

    def iter_nearest(
        self, point: Sequence[float]
    ) -> Iterator[Tuple[float, RTreeEntry]]:
        """Yield entries in increasing distance from ``point`` (best-first)."""
        if self._size == 0 or self.root.bbox is None:
            return
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (self.root.bbox.min_dist(point), next(counter), self.root)
        ]
        px, py = float(point[0]), float(point[1])
        while heap:
            distance, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeEntry):
                yield distance, item
            else:
                assert isinstance(item, RTreeNode)
                if item.is_leaf:
                    for entry in item.children:
                        assert isinstance(entry, RTreeEntry)
                        d = math.hypot(entry.point[0] - px, entry.point[1] - py)
                        heapq.heappush(heap, (d, next(counter), entry))
                else:
                    for child in item.children:
                        assert isinstance(child, RTreeNode)
                        if child.bbox is None:
                            continue
                        heapq.heappush(
                            heap,
                            (child.bbox.min_dist(point), next(counter), child),
                        )

    def iter_best_first(
        self, query_points: Sequence[Sequence[float]]
    ) -> Iterator[Tuple[float, Union[RTreeNode, RTreeEntry]]]:
        """Best-first traversal ordered by MinDist to a multi-point query.

        Yields both internal nodes and leaf entries, which lets callers prune
        whole subtrees (the consumer simply does not descend into a pruned
        node — descent happens lazily via ``send``-free generator protocol:
        the caller receives nodes before their children are expanded and can
        skip expansion by calling :meth:`RTree.expand` itself).  For the
        filter-refine algorithms the simpler contract below is used instead:
        the caller receives every node/entry and decides what to do; children
        of a node are only pushed when the caller re-offers the node through
        the ``expand`` callback.

        In practice the RkNNT algorithms use :meth:`traverse_prunable`; this
        iterator is kept for completeness and testing.
        """
        if self._size == 0 or self.root.bbox is None:
            return
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (self.root.bbox.min_dist_to_query(query_points), next(counter), self.root)
        ]
        while heap:
            distance, _, item = heapq.heappop(heap)
            yield distance, item  # type: ignore[misc]
            if isinstance(item, RTreeNode):
                for child in item.children:
                    if isinstance(child, RTreeNode):
                        if child.bbox is None:
                            continue
                        d = child.bbox.min_dist_to_query(query_points)
                    else:
                        d = child.bbox.min_dist_to_query(query_points)
                    heapq.heappush(heap, (d, next(counter), child))


def _child_bbox(child: Union[RTreeNode, RTreeEntry]) -> BoundingBox:
    box = child.bbox
    assert box is not None
    return box


def _str_partition(items: List[Any], capacity: int, key: Callable[[Any], Tuple[float, float]]) -> List[List[Any]]:
    """Sort-Tile-Recursive grouping of ``items`` into runs of ``capacity``.

    Items are sorted by x, cut into vertical slices, each slice sorted by y
    and cut into groups of at most ``capacity`` items.
    """
    n = len(items)
    if n <= capacity:
        return [list(items)]
    leaf_count = math.ceil(n / capacity)
    slice_count = math.ceil(math.sqrt(leaf_count))
    slice_size = slice_count * capacity

    by_x = sorted(items, key=lambda item: key(item)[0])
    groups: List[List[Any]] = []
    for slice_start in range(0, n, slice_size):
        vertical_slice = by_x[slice_start : slice_start + slice_size]
        vertical_slice.sort(key=lambda item: key(item)[1])
        for group_start in range(0, len(vertical_slice), capacity):
            groups.append(vertical_slice[group_start : group_start + capacity])
    return groups
