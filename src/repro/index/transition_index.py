"""The TR-tree: the R-tree over transition endpoints (Section 4.1.2).

Besides the spatial index itself, this module is the source of the typed
mutation stream that powers delta maintenance: every dynamic update emits a
:class:`TransitionDelta` to the registered listeners *after* the tree has
been updated, so a listener observing a delta always sees the post-mutation
index state.  The continuous-query layer (:mod:`repro.engine.continuous`)
and the execution context's delta-aware sub-query cache patching
(:mod:`repro.engine.context`) both consume this stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

from repro.geometry.bbox import BoundingBox
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.model.dataset import TransitionDataset
from repro.model.transition import Transition

ORIGIN = "o"
DESTINATION = "d"

#: Kinds of :class:`TransitionDelta` events.
DELTA_INSERT = "insert"
DELTA_DELETE = "delete"


@dataclass(frozen=True)
class TransitionDelta:
    """One dynamic update of the transition set, as seen by listeners.

    Attributes
    ----------
    kind:
        ``"insert"`` or ``"delete"``.
    transition:
        The transition that was added to / removed from the index.
    version:
        The index's :attr:`TransitionIndex.version` *after* this mutation.
        Deltas from one index form a contiguous version sequence, which is
        what lets consumers prove that a stream of deltas fully covers a
        version gap (see ``engine/context.py``).
    """

    kind: str
    transition: Transition
    version: int

    def __post_init__(self) -> None:
        if self.kind not in (DELTA_INSERT, DELTA_DELETE):
            raise ValueError(f"kind must be '{DELTA_INSERT}' or '{DELTA_DELETE}'")


#: Signature of a mutation listener.
DeltaListener = Callable[[TransitionDelta], None]


@dataclass(frozen=True)
class TransitionEntry:
    """Payload of a TR-tree leaf entry: which endpoint of which transition."""

    transition_id: int
    endpoint: str  # ORIGIN or DESTINATION

    def __post_init__(self) -> None:
        if self.endpoint not in (ORIGIN, DESTINATION):
            raise ValueError(f"endpoint must be '{ORIGIN}' or '{DESTINATION}'")


class TransitionIndex:
    """Spatial index over a :class:`~repro.model.dataset.TransitionDataset`.

    Each transition contributes two leaf entries to the TR-tree (origin and
    destination), tagged with :class:`TransitionEntry` payloads so that the
    verification step can recover the owning transition.

    The index supports the dynamic workflow of the paper: transitions can be
    added as new passenger requests arrive and removed once they expire.
    """

    def __init__(self, transitions: TransitionDataset, max_entries: int = 16):
        self.transitions = transitions
        self.max_entries = max_entries
        self.tree = self._build_tree()
        #: Monotonic counter bumped on every dynamic update; the execution
        #: engine keys its per-dataset caches on it (see ``engine/context.py``).
        self.version = 0
        #: Cached columnar encoding keyed by (index version, dataset
        #: version); see :meth:`to_columns`.  Never pickled.
        self._columns_cache = None
        #: Mutation listeners notified (post-mutation) with a
        #: :class:`TransitionDelta` per dynamic update.  Never pickled: a
        #: listener usually closes over engine state that must stay private
        #: to its process (see :meth:`__getstate__`).
        self._listeners: List[DeltaListener] = []

    # ------------------------------------------------------------------
    # Mutation listeners (delta maintenance)
    # ------------------------------------------------------------------
    def add_listener(self, listener: DeltaListener) -> None:
        """Register a callable invoked after every dynamic update.

        Parameters
        ----------
        listener:
            Called as ``listener(delta)`` with a :class:`TransitionDelta`
            once the mutation has been applied to the tree.  Listeners run
            synchronously, in registration order.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: DeltaListener) -> None:
        """Unregister a listener previously added (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, kind: str, transition: Transition) -> None:
        delta = TransitionDelta(kind, transition, self.version)
        for listener in list(self._listeners):
            listener(delta)

    def _build_tree(self) -> RTree:
        entries: List[RTreeEntry] = []
        for transition in self.transitions:
            entries.append(
                RTreeEntry(
                    transition.origin,
                    frozenset({TransitionEntry(transition.transition_id, ORIGIN)}),
                )
            )
            entries.append(
                RTreeEntry(
                    transition.destination,
                    frozenset(
                        {TransitionEntry(transition.transition_id, DESTINATION)}
                    ),
                )
            )
        return RTree.bulk_load(
            entries, max_entries=self.max_entries, track_payload_union=True
        )

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def add_transition(self, transition: Transition) -> None:
        """Index a transition appended to the dataset after construction."""
        self.version += 1
        self.tree.insert(
            RTreeEntry(
                transition.origin,
                frozenset({TransitionEntry(transition.transition_id, ORIGIN)}),
            )
        )
        self.tree.insert(
            RTreeEntry(
                transition.destination,
                frozenset(
                    {TransitionEntry(transition.transition_id, DESTINATION)}
                ),
            )
        )
        self._emit(DELTA_INSERT, transition)

    def remove_transition(self, transition: Transition) -> int:
        """Remove a transition's endpoints from the index.

        Returns the number of entries removed (2 when both endpoints were
        indexed).
        """
        self.version += 1
        removed = 0
        for point, endpoint in (
            (transition.origin, ORIGIN),
            (transition.destination, DESTINATION),
        ):
            tag = TransitionEntry(transition.transition_id, endpoint)
            entry = self.tree.remove(point, match=lambda e: tag in e.payload)
            if entry is not None:
                removed += 1
        self._emit(DELTA_DELETE, transition)
        return removed

    # ------------------------------------------------------------------
    # Columnar boundary + pickling
    # ------------------------------------------------------------------
    def to_columns(self):
        """This index as packed columns (``TransitionIndexColumns``), cached.

        The TR-tree leaf **payload tags** are re-encoded as flattened
        ``(transition id, endpoint code)`` int32 pairs behind a per-entry
        offset table — the packed tag blocks of the columnar dataset core.
        Cache keyed by ``(index version, dataset version)``.
        """
        from repro.engine.columnar import encode_transition_index

        lazy = self.__dict__.get("_lazy_columns")
        if lazy is not None:
            # Store-backed and still unmaterialised: nothing can have
            # mutated, so the store's own columns are current by definition.
            return lazy
        key = (self.version, self.transitions.version)
        cached = self._columns_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = encode_transition_index(self)
        self._columns_cache = (key, columns)
        return columns

    @classmethod
    def from_columns(cls, columns) -> "TransitionIndex":
        """Rebuild an index from packed columns (structure-exact decode)."""
        from repro.engine.columnar import decode_transitions, decode_tree

        index = cls.__new__(cls)
        index.transitions = decode_transitions(columns.transitions)
        index.max_entries = columns.max_entries
        index.tree = decode_tree(columns.tree)
        index.version = columns.version
        index._listeners = []
        index._columns_cache = ((columns.version, index.transitions.version), columns)
        return index

    @classmethod
    def from_store(cls, columns) -> "TransitionIndex":
        """Build an index over store-backed columns, installing them lazily.

        O(1) in dataset size — ``transitions`` and ``tree`` stay un-decoded
        until first touched (see :meth:`__getattr__`); the mirror of
        :meth:`RouteIndex.from_store <repro.index.route_index.RouteIndex
        .from_store>`.
        """
        index = cls.__new__(cls)
        index.max_entries = columns.max_entries
        index.version = columns.version
        index._columns_cache = (
            (columns.version, columns.transitions.version),
            columns,
        )
        index._listeners = []
        index._lazy_columns = columns
        return index

    def __getattr__(self, name):
        # Only reached when an attribute is missing: a store-backed index
        # (from_store) defers decoding transitions/tree until first use.
        if name in ("transitions", "tree"):
            if self.__dict__.get("_lazy_columns") is not None:
                self._materialise_columns()
                return self.__dict__[name]
        raise AttributeError(name)

    def _materialise_columns(self) -> None:
        from repro.engine.columnar import decode_transitions, decode_tree

        columns = self.__dict__["_lazy_columns"]
        self.transitions = decode_transitions(columns.transitions)
        self.tree = decode_tree(columns.tree)
        self._lazy_columns = None

    def __getstate__(self) -> dict:
        """Pickle as packed columns (default) or the legacy object graph.

        Either way the listeners never travel: they are process-local
        observers (subscriptions, execution contexts); shipping an index to
        a shard worker must not drag them along — the worker re-attaches
        its own listeners as needed.  ``RKNNT_COLUMNAR=0`` keeps the
        object-graph pickle.
        """
        from repro.engine.columnar import columnar_enabled

        if columnar_enabled():
            return {"__columnar__": self.to_columns()}
        state = self.__dict__.copy()
        state["_listeners"] = []
        state["_columns_cache"] = None
        return state

    def __setstate__(self, state) -> None:
        columns = state.get("__columnar__")
        if columns is not None:
            rebuilt = type(self).from_columns(columns)
            self.__dict__.update(rebuilt.__dict__)
            return
        self.__dict__.update(state)
        self.__dict__.setdefault("_listeners", [])
        self.__dict__.setdefault("_columns_cache", None)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        """Root of the TR-tree."""
        return self.tree.root

    def endpoint_count(self) -> int:
        """Number of indexed endpoints (2 × the number of transitions)."""
        return len(self.tree)

    def transition(self, transition_id: int) -> Transition:
        """Resolve a transition id back to the transition object."""
        return self.transitions.get(transition_id)

    def endpoints_in_box(
        self, box: BoundingBox
    ) -> Iterator[Tuple[Tuple[float, float], TransitionEntry]]:
        """Yield ``(location, tag)`` for every endpoint inside ``box``."""
        for entry in self.tree.range_search(box):
            for tag in entry.payload:
                yield entry.point, tag

    def __repr__(self) -> str:
        return (
            f"TransitionIndex(transitions={len(self.transitions)}, "
            f"endpoints={len(self.tree)})"
        )
