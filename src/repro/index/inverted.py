"""Inverted lists used alongside the R-trees (Section 4.1.2).

* :class:`PointList` (the paper's *PList*) maps each distinct route-point
  location to the set of route ids covering it.  In a bus network many routes
  share stops, so a single filtering point can rule out several routes at
  once (its *crossover route set*, Definition 7).
* :class:`NodeList` (the paper's *NList*) maps every RR-tree node to the set
  of route ids that have at least one point inside the node; it is used
  during verification to add many "closer" routes at once without opening
  the node.

Both lists expose a **columnar boundary** (``to_columns()`` /
``from_columns()``, encodings in :mod:`repro.engine.columnar`): sorted
packed id arrays with offset tables instead of hash-ordered dicts of sets.
Iteration surfaces (:meth:`PointList.points`, :meth:`PointList
.sorted_items`) are sorted as well, so every serialised form — pickles,
reseed payloads, delta replays — is byte-deterministic across runs and
interpreters.  A :class:`PointList` rebuilt ``from_columns`` stays in
*columnar mode* (reads answered by binary search over the packed arrays,
which may be read-only shared-memory views) until the first mutation
materialises a private dict.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.index.rtree import RTreeNode

PointKey = Tuple[float, float]


def point_key(point: Sequence[float]) -> PointKey:
    """Canonical dictionary key for a point location."""
    return (float(point[0]), float(point[1]))


class PointList:
    """Inverted list from route-point location to covering route ids (PList)."""

    def __init__(self) -> None:
        self._routes_by_point: Optional[Dict[PointKey, Set[int]]] = {}
        #: Columnar backing (``repro.engine.columnar.PListColumns``) when in
        #: columnar mode; reads go through its binary search, the dict above
        #: is ``None`` until a mutation materialises it.
        self._columns = None

    # ------------------------------------------------------------------
    # Columnar boundary
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, columns) -> "PointList":
        """Wrap packed PList columns without materialising a dict.

        The columns may be private arrays (columnar pickle) or read-only
        views of a shared-memory arena segment; either way lookups bisect
        the sorted point column, and the first mutation copies out into a
        private dict (shared views are never written to).
        """
        point_list = cls()
        point_list._columns = columns
        point_list._routes_by_point = None
        return point_list

    def to_columns(self):
        """This PList as packed sorted columns (encoded on demand)."""
        if self._routes_by_point is None:
            return self._columns
        from repro.engine.columnar import encode_plist

        return encode_plist(self.sorted_items())

    def install_columns(self, columns) -> None:
        """Switch to (fresh) columnar backing, dropping any private dict.

        Used by the shared-memory arena attach: the installed columns hold
        read-only views of the segment, replacing the private arrays the
        pickle carried.  Only call with columns encoding the same logical
        state — the arena guards this with its version counters.
        """
        self._columns = columns
        self._routes_by_point = None

    def _mapping(self) -> Dict[PointKey, Set[int]]:
        """The mutable dict form, materialised from columns on first need."""
        mapping = self._routes_by_point
        if mapping is None:
            columns = self._columns
            mapping = {key: set(ids) for key, ids in columns.items()}
            self._routes_by_point = mapping
            self._columns = None
        return mapping

    def sorted_items(self) -> List[Tuple[PointKey, Tuple[int, ...]]]:
        """``(point, sorted route ids)`` pairs, sorted by point location.

        The canonical deterministic iteration: encoders and pickles consume
        this instead of hash-ordered dict iteration.
        """
        if self._routes_by_point is None:
            return [
                (key, tuple(ids)) for key, ids in self._columns.items()
            ]
        return [
            (key, tuple(sorted(ids)))
            for key, ids in sorted(self._routes_by_point.items())
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, point: Sequence[float], route_id: int) -> None:
        """Register that ``route_id`` passes through ``point``."""
        self._mapping().setdefault(point_key(point), set()).add(route_id)

    def discard(self, point: Sequence[float], route_id: int) -> None:
        """Remove a route from a point's crossover set (no-op if absent)."""
        key = point_key(point)
        mapping = self._mapping()
        routes = mapping.get(key)
        if routes is None:
            return
        routes.discard(route_id)
        if not routes:
            del mapping[key]

    # ------------------------------------------------------------------
    # Reads (dict or columnar mode)
    # ------------------------------------------------------------------
    def crossover_routes(self, point: Sequence[float]) -> FrozenSet[int]:
        """Crossover route set ``C(r)`` of a point (Definition 7)."""
        key = point_key(point)
        if self._routes_by_point is None:
            return self._columns.crossover(key)
        return frozenset(self._routes_by_point.get(key, frozenset()))

    def crossover_degree(self, point: Sequence[float]) -> int:
        """``|C(r)|``: number of routes covering the point."""
        key = point_key(point)
        if self._routes_by_point is None:
            return self._columns.degree(key)
        return len(self._routes_by_point.get(key, ()))

    def points(self) -> Iterator[PointKey]:
        """Iterate all distinct point locations, sorted by ``(x, y)``."""
        if self._routes_by_point is None:
            return self._columns.keys()
        return iter(sorted(self._routes_by_point))

    def __len__(self) -> int:
        if self._routes_by_point is None:
            return len(self._columns)
        return len(self._routes_by_point)

    def __contains__(self, point: Sequence[float]) -> bool:
        key = point_key(point)
        if self._routes_by_point is None:
            return self._columns.contains(key)
        return key in self._routes_by_point

    def __repr__(self) -> str:
        mode = "columnar" if self._routes_by_point is None else "dict"
        return f"PointList(points={len(self)}, mode={mode})"


class NodeList:
    """Per-node route-id sets for an RR-tree (NList).

    The generic R-tree already maintains ``payload_union`` per node when
    constructed with ``track_payload_union=True``; this class is a thin
    façade exposing that information under the paper's terminology and adds
    the bottom-up construction for trees built without tracking.  The
    packed per-node form of the same information (sorted id arrays with an
    offset table, shareable through the arena) lives in
    :mod:`repro.engine.columnar` (``encode_nlist`` / ``install_nlist``) and
    on the nodes themselves (:meth:`repro.index.rtree.RTreeNode.union_ids`).
    """

    def __init__(self) -> None:
        self._routes_by_node: Dict[int, FrozenSet[int]] = {}

    @classmethod
    def build(cls, root: RTreeNode) -> "NodeList":
        """Build the NList bottom-up from an RR-tree root."""
        node_list = cls()
        node_list._collect(root)
        return node_list

    def _collect(self, node: RTreeNode) -> FrozenSet[int]:
        merged: Set[int] = set()
        if node.is_leaf:
            for entry in node.children:
                merged.update(entry.payload)  # type: ignore[union-attr]
        else:
            for child in node.children:
                merged.update(self._collect(child))  # type: ignore[arg-type]
        frozen = frozenset(merged)
        self._routes_by_node[id(node)] = frozen
        return frozen

    def routes_in_node(self, node: RTreeNode) -> FrozenSet[int]:
        """Route ids with at least one point inside ``node``.

        Falls back to the node's live ``payload_union`` when the node was
        created after this NList was built (dynamic insertions).
        """
        cached = self._routes_by_node.get(id(node))
        if cached is not None:
            return cached
        return node.payload_union

    def sorted_routes_in_node(self, node: RTreeNode) -> Tuple[int, ...]:
        """Deterministic (sorted) id tuple of :meth:`routes_in_node`."""
        return tuple(sorted(self.routes_in_node(node)))

    def __len__(self) -> int:
        return len(self._routes_by_node)

    def __repr__(self) -> str:
        return f"NodeList(nodes={len(self)})"
