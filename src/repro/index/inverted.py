"""Inverted lists used alongside the R-trees (Section 4.1.2).

* :class:`PointList` (the paper's *PList*) maps each distinct route-point
  location to the set of route ids covering it.  In a bus network many routes
  share stops, so a single filtering point can rule out several routes at
  once (its *crossover route set*, Definition 7).
* :class:`NodeList` (the paper's *NList*) maps every RR-tree node to the set
  of route ids that have at least one point inside the node; it is used
  during verification to add many "closer" routes at once without opening
  the node.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Sequence, Set, Tuple

from repro.index.rtree import RTreeNode

PointKey = Tuple[float, float]


def point_key(point: Sequence[float]) -> PointKey:
    """Canonical dictionary key for a point location."""
    return (float(point[0]), float(point[1]))


class PointList:
    """Inverted list from route-point location to covering route ids (PList)."""

    def __init__(self) -> None:
        self._routes_by_point: Dict[PointKey, Set[int]] = {}

    def add(self, point: Sequence[float], route_id: int) -> None:
        """Register that ``route_id`` passes through ``point``."""
        self._routes_by_point.setdefault(point_key(point), set()).add(route_id)

    def discard(self, point: Sequence[float], route_id: int) -> None:
        """Remove a route from a point's crossover set (no-op if absent)."""
        key = point_key(point)
        routes = self._routes_by_point.get(key)
        if routes is None:
            return
        routes.discard(route_id)
        if not routes:
            del self._routes_by_point[key]

    def crossover_routes(self, point: Sequence[float]) -> FrozenSet[int]:
        """Crossover route set ``C(r)`` of a point (Definition 7)."""
        return frozenset(self._routes_by_point.get(point_key(point), frozenset()))

    def crossover_degree(self, point: Sequence[float]) -> int:
        """``|C(r)|``: number of routes covering the point."""
        return len(self._routes_by_point.get(point_key(point), ()))

    def points(self) -> Iterator[PointKey]:
        """Iterate all distinct point locations."""
        return iter(self._routes_by_point)

    def __len__(self) -> int:
        return len(self._routes_by_point)

    def __contains__(self, point: Sequence[float]) -> bool:
        return point_key(point) in self._routes_by_point

    def __repr__(self) -> str:
        return f"PointList(points={len(self)})"


class NodeList:
    """Per-node route-id sets for an RR-tree (NList).

    The generic R-tree already maintains ``payload_union`` per node when
    constructed with ``track_payload_union=True``; this class is a thin
    façade exposing that information under the paper's terminology and adds
    the bottom-up construction for trees built without tracking.
    """

    def __init__(self) -> None:
        self._routes_by_node: Dict[int, FrozenSet[int]] = {}

    @classmethod
    def build(cls, root: RTreeNode) -> "NodeList":
        """Build the NList bottom-up from an RR-tree root."""
        node_list = cls()
        node_list._collect(root)
        return node_list

    def _collect(self, node: RTreeNode) -> FrozenSet[int]:
        merged: Set[int] = set()
        if node.is_leaf:
            for entry in node.children:
                merged.update(entry.payload)  # type: ignore[union-attr]
        else:
            for child in node.children:
                merged.update(self._collect(child))  # type: ignore[arg-type]
        frozen = frozenset(merged)
        self._routes_by_node[id(node)] = frozen
        return frozen

    def routes_in_node(self, node: RTreeNode) -> FrozenSet[int]:
        """Route ids with at least one point inside ``node``.

        Falls back to the node's live ``payload_union`` when the node was
        created after this NList was built (dynamic insertions).
        """
        cached = self._routes_by_node.get(id(node))
        if cached is not None:
            return cached
        return node.payload_union

    def __len__(self) -> int:
        return len(self._routes_by_node)

    def __repr__(self) -> str:
        return f"NodeList(nodes={len(self)})"
