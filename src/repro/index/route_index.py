"""The RR-tree: the R-tree over route points plus PList/NList (Section 4.1.2)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.geometry.bbox import BoundingBox
from repro.index.inverted import PointList, point_key
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.model.dataset import RouteDataset
from repro.model.route import Route


class RouteIndex:
    """Spatial index over a :class:`~repro.model.dataset.RouteDataset`.

    The index consists of:

    * the **RR-tree**: an R-tree whose leaf entries are distinct route-point
      locations, each carrying the set of route ids covering it;
    * the **PList**: point location → crossover route set;
    * the **NList**: per RR-tree node, the set of route ids below the node,
      maintained automatically through the tree's payload-union tracking.

    The index is dynamic: routes can be added and removed after construction,
    matching the paper's requirement of supporting continuously arriving
    data.

    Parameters
    ----------
    routes:
        The dataset to index.
    max_entries:
        R-tree fanout.
    exclude_route_ids:
        Optional set of route ids to leave out of the index.  The experiments
        with "real route queries" remove the query route's own points from
        the RR-tree before searching; this parameter supports that without
        mutating the underlying dataset.
    """

    def __init__(
        self,
        routes: RouteDataset,
        max_entries: int = 16,
        exclude_route_ids: Optional[Iterable[int]] = None,
    ):
        self.routes = routes
        self.max_entries = max_entries
        self._excluded: Set[int] = set(exclude_route_ids or ())
        self.plist = PointList()
        self.tree = self._build_tree()
        #: Monotonic counter bumped on every dynamic update; the execution
        #: engine keys its per-dataset caches on it (see ``engine/context.py``).
        self.version = 0
        #: Cached columnar encoding keyed by (index version, dataset
        #: version); shared by pickling and arena publishing so one reseed
        #: encodes at most once.  Never pickled.
        self._columns_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tree(self) -> RTree:
        routes_by_point: Dict[Tuple[float, float], Set[int]] = {}
        for route in self.routes:
            if route.route_id in self._excluded:
                continue
            for point in route.points:
                key = point_key(point)
                routes_by_point.setdefault(key, set()).add(route.route_id)
                self.plist.add(point, route.route_id)
        entries = [
            RTreeEntry(location, frozenset(route_ids))
            for location, route_ids in routes_by_point.items()
        ]
        return RTree.bulk_load(
            entries,
            max_entries=self.max_entries,
            track_payload_union=True,
        )

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def add_route(self, route: Route) -> None:
        """Index a route that was appended to the dataset after construction."""
        if route.route_id in self._excluded:
            return
        self.version += 1
        for point in route.points:
            key = point_key(point)
            existing = self._find_entry(key)
            if existing is not None:
                # Replace the payload with an enlarged crossover set.
                self.tree.remove(key, match=lambda e: e is existing)
                new_ids = frozenset(set(existing.payload) | {route.route_id})
                self.tree.insert(RTreeEntry(key, new_ids))
            else:
                self.tree.insert(RTreeEntry(key, frozenset({route.route_id})))
            self.plist.add(point, route.route_id)

    def remove_route(self, route: Route) -> None:
        """Remove a route's points from the index."""
        self.version += 1
        for point in route.points:
            key = point_key(point)
            existing = self._find_entry(key)
            if existing is None:
                continue
            remaining = set(existing.payload) - {route.route_id}
            self.tree.remove(key, match=lambda e: e is existing)
            if remaining:
                self.tree.insert(RTreeEntry(key, frozenset(remaining)))
            self.plist.discard(point, route.route_id)

    def _find_entry(self, key: Tuple[float, float]) -> Optional[RTreeEntry]:
        box = BoundingBox.from_point(key)
        for entry in self.tree.range_search(box):
            if entry.point == key:
                return entry
        return None

    # ------------------------------------------------------------------
    # Columnar boundary (pickling + arena publishing)
    # ------------------------------------------------------------------
    def to_columns(self):
        """This index as packed columns (``RouteIndexColumns``), cached.

        The cache key is ``(index version, dataset version)``: any dynamic
        update invalidates it, and a reseed that both pickles the index and
        publishes an arena encodes exactly once.
        """
        from repro.engine.columnar import encode_route_index

        lazy = self.__dict__.get("_lazy_columns")
        if lazy is not None:
            # Store-backed and still unmaterialised: nothing can have
            # mutated, so the store's own columns are current by definition.
            return lazy
        key = (self.version, self.routes.version)
        cached = self._columns_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = encode_route_index(self)
        self._columns_cache = (key, columns)
        return columns

    @classmethod
    def from_columns(cls, columns) -> "RouteIndex":
        """Rebuild an index from packed columns (no STR re-packing).

        The decoded tree is structure-identical to the encoded one (see
        :func:`repro.engine.columnar.decode_tree`), the PList stays in
        columnar mode until first mutation, and every node carries its
        packed NList union — the verification shortcut reads those id
        arrays directly.
        """
        from repro.engine.columnar import decode_routes, decode_tree, install_nlist

        index = cls.__new__(cls)
        index.routes = decode_routes(columns.routes)
        index.max_entries = columns.max_entries
        index._excluded = set(columns.excluded)
        index.plist = PointList.from_columns(columns.plist)
        index.tree = decode_tree(columns.tree)
        install_nlist(index.tree, columns.nlist)
        index.version = columns.version
        index._columns_cache = ((columns.version, index.routes.version), columns)
        return index

    @classmethod
    def from_store(cls, columns) -> "RouteIndex":
        """Build an index over store-backed columns, installing them lazily.

        O(1) in dataset size: only scalars are read here.  ``routes``,
        ``plist`` and ``tree`` stay un-decoded until first touched (see
        :meth:`__getattr__`), so a worker booting from a
        :class:`~repro.engine.store.StoreHandle` attaches in constant time
        and the OS pages column bytes in on demand.
        """
        index = cls.__new__(cls)
        index.max_entries = columns.max_entries
        index._excluded = set(columns.excluded)
        index.version = columns.version
        index._columns_cache = ((columns.version, columns.routes.version), columns)
        index._lazy_columns = columns
        return index

    def __getattr__(self, name):
        # Only reached when an attribute is missing: a store-backed index
        # (from_store) defers decoding routes/plist/tree until first use.
        if name in ("routes", "plist", "tree"):
            if self.__dict__.get("_lazy_columns") is not None:
                self._materialise_columns()
                return self.__dict__[name]
        raise AttributeError(name)

    def _materialise_columns(self) -> None:
        from repro.engine.columnar import decode_routes, decode_tree, install_nlist

        columns = self.__dict__["_lazy_columns"]
        self.routes = decode_routes(columns.routes)
        self.plist = PointList.from_columns(columns.plist)
        tree = decode_tree(columns.tree)
        install_nlist(tree, columns.nlist)
        self.tree = tree
        self._lazy_columns = None

    def __getstate__(self):
        """Pickle as packed columns (default) or the legacy object graph.

        ``RKNNT_COLUMNAR=0`` keeps the object-graph pickle; either way the
        derived columns cache never travels redundantly (on the columnar
        path it *is* the payload, on the legacy path it is dropped).
        """
        from repro.engine.columnar import columnar_enabled

        if columnar_enabled():
            return {"__columnar__": self.to_columns()}
        state = self.__dict__.copy()
        state["_columns_cache"] = None
        return state

    def __setstate__(self, state) -> None:
        columns = state.get("__columnar__")
        if columns is not None:
            rebuilt = type(self).from_columns(columns)
            self.__dict__.update(rebuilt.__dict__)
            return
        self.__dict__.update(state)
        # Legacy pickles predating the columns cache.
        self.__dict__.setdefault("_columns_cache", None)

    # ------------------------------------------------------------------
    # Accessors used by the search algorithms
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        """Root of the RR-tree."""
        return self.tree.root

    @property
    def excluded_route_ids(self) -> FrozenSet[int]:
        """Route ids excluded from the index at construction time."""
        return frozenset(self._excluded)

    def crossover_routes(self, point: Sequence[float]) -> FrozenSet[int]:
        """Crossover route set ``C(r)`` of a route point (Definition 7)."""
        return self.plist.crossover_routes(point)

    def routes_in_node(self, node: RTreeNode) -> FrozenSet[int]:
        """NList lookup: route ids having at least one point inside ``node``."""
        return node.payload_union

    def route_points(self, route_id: int) -> Tuple[Tuple[float, float], ...]:
        """Point locations of a route (as indexed)."""
        return tuple(point_key(p) for p in self.routes.get(route_id).points)

    def distinct_point_count(self) -> int:
        """Number of distinct route-point locations in the RR-tree."""
        return len(self.tree)

    def __repr__(self) -> str:
        return (
            f"RouteIndex(routes={len(self.routes)}, "
            f"points={len(self.tree)}, excluded={len(self._excluded)})"
        )
