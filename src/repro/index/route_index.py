"""The RR-tree: the R-tree over route points plus PList/NList (Section 4.1.2)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry.bbox import BoundingBox
from repro.index.inverted import PointList, point_key
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.model.dataset import RouteDataset
from repro.model.route import Route


class RouteIndex:
    """Spatial index over a :class:`~repro.model.dataset.RouteDataset`.

    The index consists of:

    * the **RR-tree**: an R-tree whose leaf entries are distinct route-point
      locations, each carrying the set of route ids covering it;
    * the **PList**: point location → crossover route set;
    * the **NList**: per RR-tree node, the set of route ids below the node,
      maintained automatically through the tree's payload-union tracking.

    The index is dynamic: routes can be added and removed after construction,
    matching the paper's requirement of supporting continuously arriving
    data.

    Parameters
    ----------
    routes:
        The dataset to index.
    max_entries:
        R-tree fanout.
    exclude_route_ids:
        Optional set of route ids to leave out of the index.  The experiments
        with "real route queries" remove the query route's own points from
        the RR-tree before searching; this parameter supports that without
        mutating the underlying dataset.
    """

    def __init__(
        self,
        routes: RouteDataset,
        max_entries: int = 16,
        exclude_route_ids: Optional[Iterable[int]] = None,
    ):
        self.routes = routes
        self.max_entries = max_entries
        self._excluded: Set[int] = set(exclude_route_ids or ())
        self.plist = PointList()
        self.tree = self._build_tree()
        #: Monotonic counter bumped on every dynamic update; the execution
        #: engine keys its per-dataset caches on it (see ``engine/context.py``).
        self.version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tree(self) -> RTree:
        routes_by_point: Dict[Tuple[float, float], Set[int]] = {}
        for route in self.routes:
            if route.route_id in self._excluded:
                continue
            for point in route.points:
                key = point_key(point)
                routes_by_point.setdefault(key, set()).add(route.route_id)
                self.plist.add(point, route.route_id)
        entries = [
            RTreeEntry(location, frozenset(route_ids))
            for location, route_ids in routes_by_point.items()
        ]
        return RTree.bulk_load(
            entries,
            max_entries=self.max_entries,
            track_payload_union=True,
        )

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def add_route(self, route: Route) -> None:
        """Index a route that was appended to the dataset after construction."""
        if route.route_id in self._excluded:
            return
        self.version += 1
        for point in route.points:
            key = point_key(point)
            existing = self._find_entry(key)
            if existing is not None:
                # Replace the payload with an enlarged crossover set.
                self.tree.remove(key, match=lambda e: e is existing)
                new_ids = frozenset(set(existing.payload) | {route.route_id})
                self.tree.insert(RTreeEntry(key, new_ids))
            else:
                self.tree.insert(RTreeEntry(key, frozenset({route.route_id})))
            self.plist.add(point, route.route_id)

    def remove_route(self, route: Route) -> None:
        """Remove a route's points from the index."""
        self.version += 1
        for point in route.points:
            key = point_key(point)
            existing = self._find_entry(key)
            if existing is None:
                continue
            remaining = set(existing.payload) - {route.route_id}
            self.tree.remove(key, match=lambda e: e is existing)
            if remaining:
                self.tree.insert(RTreeEntry(key, frozenset(remaining)))
            self.plist.discard(point, route.route_id)

    def _find_entry(self, key: Tuple[float, float]) -> Optional[RTreeEntry]:
        box = BoundingBox.from_point(key)
        for entry in self.tree.range_search(box):
            if entry.point == key:
                return entry
        return None

    # ------------------------------------------------------------------
    # Accessors used by the search algorithms
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        """Root of the RR-tree."""
        return self.tree.root

    @property
    def excluded_route_ids(self) -> FrozenSet[int]:
        """Route ids excluded from the index at construction time."""
        return frozenset(self._excluded)

    def crossover_routes(self, point: Sequence[float]) -> FrozenSet[int]:
        """Crossover route set ``C(r)`` of a route point (Definition 7)."""
        return self.plist.crossover_routes(point)

    def routes_in_node(self, node: RTreeNode) -> FrozenSet[int]:
        """NList lookup: route ids having at least one point inside ``node``."""
        return node.payload_union

    def route_points(self, route_id: int) -> Tuple[Tuple[float, float], ...]:
        """Point locations of a route (as indexed)."""
        return tuple(point_key(p) for p in self.routes.get(route_id).points)

    def distinct_point_count(self) -> int:
        """Number of distinct route-point locations in the RR-tree."""
        return len(self.tree)

    def __repr__(self) -> str:
        return (
            f"RouteIndex(routes={len(self.routes)}, "
            f"points={len(self.tree)}, excluded={len(self._excluded)})"
        )
