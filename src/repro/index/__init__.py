"""Spatial indexes: generic R-tree, RR-tree, TR-tree and inverted lists."""

from repro.index.rtree import RTree, RTreeNode, RTreeEntry
from repro.index.inverted import PointList, NodeList
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex, TransitionEntry

__all__ = [
    "RTree",
    "RTreeNode",
    "RTreeEntry",
    "PointList",
    "NodeList",
    "RouteIndex",
    "TransitionIndex",
    "TransitionEntry",
]
