"""Spatial density grids (text heatmaps) for Figure 8.

Figure 8 of the paper shows heatmaps of the route and transition datasets for
both cities.  Without a plotting stack we reproduce the same information as a
2-D density grid rendered with a character ramp, which is enough to verify
that transitions concentrate along the route corridors (the structural
property the generators must preserve).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

#: Characters from empty to dense used when rendering the grid.
DENSITY_RAMP = " .:-=+*#%@"


def density_grid(
    points: Iterable[Sequence[float]],
    bounds: Tuple[float, float, float, float],
    rows: int = 20,
    columns: int = 40,
) -> List[List[int]]:
    """Count points per cell of a ``rows × columns`` grid over ``bounds``.

    Points outside the bounds are clamped to the border cells so no data is
    silently dropped.
    """
    if rows <= 0 or columns <= 0:
        raise ValueError("rows and columns must be positive")
    min_x, min_y, max_x, max_y = bounds
    if max_x <= min_x or max_y <= min_y:
        raise ValueError("bounds must span a non-empty rectangle")
    grid = [[0] * columns for _ in range(rows)]
    x_span = max_x - min_x
    y_span = max_y - min_y
    for point in points:
        column = int((point[0] - min_x) / x_span * columns)
        row = int((point[1] - min_y) / y_span * rows)
        column = min(max(column, 0), columns - 1)
        row = min(max(row, 0), rows - 1)
        grid[row][column] += 1
    return grid


def format_density_grid(grid: List[List[int]], title: str | None = None) -> str:
    """Render a density grid with a character ramp (denser = darker)."""
    peak = max((cell for row in grid for cell in row), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    if peak == 0:
        lines.append("(no points)")
        return "\n".join(lines)
    levels = len(DENSITY_RAMP) - 1
    # Render top row last so that north is up.
    for row in reversed(grid):
        characters = []
        for cell in row:
            level = 0 if cell == 0 else 1 + int((levels - 1) * cell / peak)
            characters.append(DENSITY_RAMP[level])
        lines.append("".join(characters))
    return "\n".join(lines)
