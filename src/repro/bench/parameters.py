"""The experiment parameter grid (Table 4 of the paper) and benchmark scaling.

The paper sweeps five parameters; default values (underlined in Table 4) are
exposed as module constants.  Distances are in map units (km-equivalent in the
synthetic cities).

Because the reproduction runs on a laptop in pure Python rather than on the
paper's C++/Xeon testbed, every benchmark accepts a *scale* that shrinks the
datasets and the number of repetitions.  The scale is chosen through the
``REPRO_BENCH_SCALE`` environment variable (``smoke``, ``small`` — the
default — or ``full``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

# ----------------------------------------------------------------------
# Table 4: parameter values (defaults underlined in the paper)
# ----------------------------------------------------------------------
#: Query lengths |Q| swept in Figures 11-13 (default 5).
QUERY_LENGTH_VALUES = (3, 4, 5, 6, 7, 8, 9, 10)
DEFAULT_QUERY_LENGTH = 5

#: k values swept in Figures 9-10 and 13 (default 10).
K_VALUES = (1, 5, 10, 15, 20, 25)
DEFAULT_K = 10

#: Interval I (km) between adjacent query points, Figures 14-15 (default 3).
INTERVAL_VALUES = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
DEFAULT_INTERVAL = 3.0

#: Straight-line start/end distance ψ(se) (km) for planning queries,
#: Figure 18 (default 20 in the paper; scaled to the synthetic city size).
PSI_SE_VALUES = (10.0, 20.0, 30.0, 40.0, 50.0)
DEFAULT_PSI_SE = 20.0

#: Ratio τ / ψ(se), Figure 19 (default 1.4).
TAU_RATIO_VALUES = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
DEFAULT_TAU_RATIO = 1.4


# ----------------------------------------------------------------------
# Benchmark scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkScale:
    """How much of the full experiment each benchmark runs.

    Attributes
    ----------
    name:
        Scale label (``smoke``/``small``/``full``).
    city_scale:
        Multiplier on the city presets' route/transition counts.
    queries_per_point:
        Number of queries averaged per parameter value (the paper uses
        1,000).
    synthetic_transitions:
        Size of the large synthetic transition set (Figure 13; the paper uses
        10 million).
    planning_queries:
        Number of planning (start, end) pairs per parameter value.
    real_query_limit:
        Number of existing routes used as real queries (Figures 16 and 20).
    """

    name: str
    city_scale: float
    queries_per_point: int
    synthetic_transitions: int
    planning_queries: int
    real_query_limit: int

    #: Factor applied to ψ(se) / I values so they fit inside the scaled city.
    distance_scale: float = 0.5


_SCALES = {
    # Fast enough for CI and `pytest benchmarks/ --benchmark-only` runs.
    "smoke": BenchmarkScale(
        name="smoke",
        city_scale=0.25,
        queries_per_point=2,
        synthetic_transitions=4000,
        planning_queries=1,
        real_query_limit=4,
        distance_scale=0.3,
    ),
    # Default: minutes, shapes clearly visible.
    "small": BenchmarkScale(
        name="small",
        city_scale=0.5,
        queries_per_point=5,
        synthetic_transitions=20000,
        planning_queries=2,
        real_query_limit=10,
        distance_scale=0.4,
    ),
    # Closest to the paper that is still practical in pure Python.
    "full": BenchmarkScale(
        name="full",
        city_scale=1.0,
        queries_per_point=20,
        synthetic_transitions=100000,
        planning_queries=5,
        real_query_limit=40,
        distance_scale=0.5,
    ),
}


def get_scale(name: str | None = None) -> BenchmarkScale:
    """Resolve the benchmark scale.

    Order of precedence: explicit ``name`` argument, the
    ``REPRO_BENCH_SCALE`` environment variable, then ``"smoke"`` (so that the
    benchmark suite is quick by default; export ``REPRO_BENCH_SCALE=small``
    or ``full`` for more faithful runs).
    """
    if name is None:
        name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark scale {name!r}; expected one of {sorted(_SCALES)}"
        ) from None
