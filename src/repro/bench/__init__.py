"""Benchmark support: parameter grids, sweep harness and plain-text reporting.

The modules here are shared by every script in ``benchmarks/``: they own the
paper's parameter grid (Table 4), provide the sweep/timing helpers that the
per-figure benchmarks call, and render results as aligned text tables and
ASCII histograms so the benchmark output can be compared with the paper's
figures side by side.
"""

from repro.bench.parameters import (
    DEFAULT_K,
    DEFAULT_QUERY_LENGTH,
    DEFAULT_INTERVAL,
    K_VALUES,
    QUERY_LENGTH_VALUES,
    INTERVAL_VALUES,
    PSI_SE_VALUES,
    TAU_RATIO_VALUES,
    DEFAULT_PSI_SE,
    DEFAULT_TAU_RATIO,
    BenchmarkScale,
    get_scale,
)
from repro.bench.harness import (
    MethodTiming,
    SweepResult,
    time_rknnt_methods,
    sweep_parameter,
    build_benchmark_city,
)
from repro.bench.reporting import (
    format_table,
    format_histogram,
    format_series,
    summarize_distribution,
)
from repro.bench.heatmap import density_grid, format_density_grid

__all__ = [
    "DEFAULT_K",
    "DEFAULT_QUERY_LENGTH",
    "DEFAULT_INTERVAL",
    "K_VALUES",
    "QUERY_LENGTH_VALUES",
    "INTERVAL_VALUES",
    "PSI_SE_VALUES",
    "TAU_RATIO_VALUES",
    "DEFAULT_PSI_SE",
    "DEFAULT_TAU_RATIO",
    "BenchmarkScale",
    "get_scale",
    "MethodTiming",
    "SweepResult",
    "time_rknnt_methods",
    "sweep_parameter",
    "build_benchmark_city",
    "format_table",
    "format_histogram",
    "format_series",
    "summarize_distribution",
    "density_grid",
    "format_density_grid",
]
