"""Sweep harness shared by the per-figure benchmark scripts.

The paper's RkNNT experiments all have the same shape: fix every parameter at
its default, sweep one of them, and report the average running time of the
three methods (Filter-Refine, Voronoi, Divide-Conquer), optionally broken
down into filtering and verification phases.  :func:`sweep_parameter`
implements that loop once so each ``benchmarks/bench_figure*.py`` script only
declares what varies.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.parameters import BenchmarkScale, get_scale
from repro.core.rknnt import (
    DIVIDE_CONQUER,
    FILTER_REFINE,
    METHODS,
    RkNNTProcessor,
    VORONOI,
)
from repro.data.synthetic import SyntheticCity
from repro.data.workloads import QueryWorkload, make_city
from repro.model.dataset import TransitionDataset

#: Short labels used in the paper's figures.
METHOD_LABELS = {
    FILTER_REFINE: "FR",
    VORONOI: "VO",
    DIVIDE_CONQUER: "DC",
}


@dataclass
class MethodTiming:
    """Average timings and counters of one method at one parameter value."""

    method: str
    total_seconds: float
    filtering_seconds: float
    verification_seconds: float
    result_size: float
    #: Average number of transition endpoints surviving the pruning phase
    #: (the work the verification phase has to do) — a deterministic proxy
    #: for pruning power that the benchmark shape checks rely on.
    candidates: float = 0.0
    #: Average number of R-tree nodes pruned during the query.
    nodes_pruned: float = 0.0

    @property
    def label(self) -> str:
        return METHOD_LABELS.get(self.method, self.method)

    def as_row(self) -> Dict[str, float | str]:
        return {
            "method": self.label,
            "total_s": self.total_seconds,
            "filter_s": self.filtering_seconds,
            "verify_s": self.verification_seconds,
            "candidates": self.candidates,
            "avg_results": self.result_size,
        }


@dataclass
class SweepResult:
    """Result of sweeping one parameter over a set of methods."""

    parameter: str
    values: List[float]
    timings: Dict[float, List[MethodTiming]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, float | str]]:
        """Flat rows (one per parameter value × method) for table rendering."""
        rows: List[Dict[str, float | str]] = []
        for value in self.values:
            for timing in self.timings.get(value, []):
                row: Dict[str, float | str] = {self.parameter: value}
                row.update(timing.as_row())
                rows.append(row)
        return rows

    def series(self, method: str) -> List[Tuple[float, float]]:
        """(parameter value, total seconds) series for one method."""
        label = METHOD_LABELS.get(method, method)
        series = []
        for value in self.values:
            for timing in self.timings.get(value, []):
                if timing.label == label or timing.method == method:
                    series.append((value, timing.total_seconds))
        return series


def build_benchmark_city(
    preset: str, scale: Optional[BenchmarkScale] = None, seed: Optional[int] = None
) -> Tuple[SyntheticCity, TransitionDataset, RkNNTProcessor, QueryWorkload]:
    """Build the city, transition set, processor and workload for a benchmark."""
    scale = scale or get_scale()
    city, transitions = make_city(preset, scale=scale.city_scale, seed=seed)
    processor = RkNNTProcessor(city.routes, transitions)
    workload = QueryWorkload(city, seed=1234)
    return city, transitions, processor, workload


def time_rknnt_methods(
    processor: RkNNTProcessor,
    queries: Sequence[Sequence[Sequence[float]]],
    k: int,
    methods: Sequence[str] = METHODS,
) -> List[MethodTiming]:
    """Average each method's running time over a batch of queries.

    The per-query phase breakdown comes from the query statistics (so the
    divide & conquer timing is the sum over its sub-queries, matching how the
    paper reports it).
    """
    timings: List[MethodTiming] = []
    for method in methods:
        total = 0.0
        filtering = 0.0
        verification = 0.0
        results = 0.0
        candidates = 0.0
        nodes_pruned = 0.0
        for query in queries:
            started = time.perf_counter()
            result = processor.query(query, k, method=method)
            total += time.perf_counter() - started
            filtering += result.stats.filtering_seconds
            verification += result.stats.verification_seconds
            results += len(result)
            candidates += result.stats.candidates
            nodes_pruned += result.stats.nodes_pruned
        count = max(1, len(queries))
        timings.append(
            MethodTiming(
                method=method,
                total_seconds=total / count,
                filtering_seconds=filtering / count,
                verification_seconds=verification / count,
                result_size=results / count,
                candidates=candidates / count,
                nodes_pruned=nodes_pruned / count,
            )
        )
    return timings


@dataclass
class BatchThroughput:
    """Loop-of-single vs. batched (vs. sharded) execution of one workload.

    ``loop_seconds`` measures one :meth:`~repro.core.rknnt.RkNNTProcessor
    .query` call per query (the scalar path); ``batch_seconds`` measures one
    :meth:`~repro.core.rknnt.RkNNTProcessor.query_batch` call over the same
    workload (shared execution context + vectorized kernels); when
    ``workers > 0``, ``sharded_seconds`` measures the same batch call
    sharded across that many worker processes.  Every measured result list
    is checked element-wise identical before timings are reported.
    """

    method: str
    backend: str
    queries: int
    k: int
    loop_seconds: float
    batch_seconds: float
    result_size: float
    #: Worker processes of the sharded measurement (0 = not measured).
    workers: int = 0
    #: Wall-clock of the sharded batch (``inf`` when not measured).
    sharded_seconds: float = math.inf

    @property
    def speedup(self) -> float:
        """Loop time over batch time (> 1 means batching wins)."""
        if self.batch_seconds == 0.0:
            return float("inf")
        return self.loop_seconds / self.batch_seconds

    @property
    def sharded_speedup(self) -> float:
        """Single-process batch time over sharded time (> 1: sharding wins)."""
        if not self.workers or math.isinf(self.sharded_seconds):
            return 0.0
        if self.sharded_seconds == 0.0:
            return float("inf")
        return self.batch_seconds / self.sharded_seconds

    @property
    def loop_qps(self) -> float:
        return self.queries / self.loop_seconds if self.loop_seconds else 0.0

    @property
    def batch_qps(self) -> float:
        return self.queries / self.batch_seconds if self.batch_seconds else 0.0

    @property
    def sharded_qps(self) -> float:
        if not self.workers or not self.sharded_seconds:
            return 0.0
        if math.isinf(self.sharded_seconds):
            return 0.0
        return self.queries / self.sharded_seconds

    def as_row(self) -> Dict[str, float | str]:
        row: Dict[str, float | str] = {
            "method": METHOD_LABELS.get(self.method, self.method),
            "backend": self.backend,
            "queries": self.queries,
            "loop_s": self.loop_seconds,
            "batch_s": self.batch_seconds,
            "loop_qps": self.loop_qps,
            "batch_qps": self.batch_qps,
            "speedup": self.speedup,
            "avg_results": self.result_size,
        }
        if self.workers:
            row["workers"] = self.workers
            row["sharded_s"] = self.sharded_seconds
            row["sharded_qps"] = self.sharded_qps
            row["sharded_speedup"] = self.sharded_speedup
        return row


def time_batch_throughput(
    processor: RkNNTProcessor,
    queries: Sequence[Sequence[Sequence[float]]],
    k: int,
    method: str = VORONOI,
    backend: str = "auto",
    repeats: int = 1,
    workers: int = 0,
) -> BatchThroughput:
    """Time a workload as a loop of single queries and as one batch.

    Raises ``AssertionError`` if the batch answers differ from the
    per-query answers anywhere — throughput numbers for wrong answers are
    meaningless, so the check is unconditional.  With ``workers > 0`` the
    sharded batch path is additionally timed (and checked) over the same
    workload.

    ``repeats`` re-times each side that many times and keeps the fastest
    observation (the standard way to damp GC pauses and scheduler noise on
    shared machines; CI uses 3).  The engine caches are cleared before
    every batch repeat so each one measures the same cold-cache work —
    otherwise divide & conquer repeats would be served from the memoised
    sub-queries and the "speedup" would measure the cache, not the batch
    execution.  The sharded path pays its pool start-up inside the timed
    region on every repeat, so its speedup is end-to-end honest.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    loop_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        singles = [processor.query(query, k, method=method) for query in queries]
        loop_seconds = min(loop_seconds, time.perf_counter() - started)

    batch_seconds = math.inf
    for _ in range(repeats):
        processor.engine_context.clear_caches()
        started = time.perf_counter()
        batched = processor.query_batch(
            queries, k, method=method, backend=backend
        )
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

    for index, (single, batch) in enumerate(zip(singles, batched)):
        assert single.confirmed_endpoints == batch.confirmed_endpoints, (
            f"batch result diverges from single query at index {index}"
        )

    sharded_seconds = math.inf
    if workers:
        for _ in range(repeats):
            processor.engine_context.clear_caches()
            started = time.perf_counter()
            sharded = processor.query_batch(
                queries, k, method=method, backend=backend, workers=workers
            )
            sharded_seconds = min(
                sharded_seconds, time.perf_counter() - started
            )
        for index, (single, shard) in enumerate(zip(singles, sharded)):
            assert single.confirmed_endpoints == shard.confirmed_endpoints, (
                f"sharded result diverges from single query at index {index}"
            )

    from repro.geometry.kernels import resolve_backend

    return BatchThroughput(
        method=method,
        backend=resolve_backend(backend),
        queries=len(queries),
        k=k,
        loop_seconds=loop_seconds,
        batch_seconds=batch_seconds,
        result_size=(
            sum(len(result) for result in batched) / len(batched)
            if batched
            else 0.0
        ),
        workers=workers,
        sharded_seconds=sharded_seconds,
    )


def sweep_parameter(
    processor: RkNNTProcessor,
    workload: QueryWorkload,
    parameter: str,
    values: Sequence[float],
    queries_per_value: int,
    k: int,
    query_length: int,
    interval: float,
    methods: Sequence[str] = METHODS,
) -> SweepResult:
    """Sweep ``parameter`` over ``values`` keeping the other parameters fixed.

    ``parameter`` is one of ``"k"``, ``"query_length"`` or ``"interval"``;
    the corresponding fixed argument is ignored for that sweep.
    """
    if parameter not in ("k", "query_length", "interval"):
        raise ValueError(
            "parameter must be one of 'k', 'query_length', 'interval'"
        )
    result = SweepResult(parameter=parameter, values=list(values))
    for value in values:
        current_k = int(value) if parameter == "k" else k
        current_length = int(value) if parameter == "query_length" else query_length
        current_interval = float(value) if parameter == "interval" else interval
        queries = workload.query_routes(
            queries_per_value, current_length, current_interval
        )
        result.timings[value] = time_rknnt_methods(
            processor, queries, current_k, methods=methods
        )
    return result
