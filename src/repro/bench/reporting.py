"""Plain-text rendering of benchmark results (tables, series, histograms).

The paper's figures are line charts, stacked bars and frequency histograms.
The benchmark scripts print text equivalents so the shape of each result (who
wins, how cost grows, where the mass of a distribution sits) can be compared
against the paper without a plotting stack.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import tempfile
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def git_commit(cwd: Optional[str] = None) -> str:
    """Short hash of the current commit (``"unknown"`` outside a checkout)."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=cwd,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_trajectory(path: str, entry: Mapping[str, object]) -> None:
    """Append one benchmark entry to a JSON trajectory artifact.

    The artifact accumulates one entry per benchmark run (CI appends on
    every PR), so perf numbers form a history next to the code.  A missing,
    corrupt or foreign file restarts the trajectory instead of failing the
    benchmark.

    The append is **atomic**: the updated history is written to a
    temporary file in the same directory and renamed over the target
    (``os.replace``), so a reader — or one of the four CI matrix legs
    appending concurrently — never observes a half-written file.  Two
    truly simultaneous appends still last-writer-win on the rename (one
    entry is lost, the file stays valid), which is the right trade for a
    best-effort history artifact.

    Parameters
    ----------
    path:
        The trajectory file (e.g. the repo-root ``BENCH_batch.json``).
    entry:
        The run's payload; should carry at least ``benchmark``, ``commit``
        and ``timestamp`` keys so entries from different benchmarks can be
        told apart.
    """
    history: Dict[str, object] = {"benchmark": "trajectory", "entries": []}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("entries"), list
            ):
                history = loaded
        except (OSError, ValueError):
            pass  # corrupt or foreign file: restart the trajectory
    history["entries"].append(dict(entry))
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {column: _format_value(row.get(column, ""), precision) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered:
        lines.append(
            " | ".join(row[column].rjust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render several (x, y) series side by side, one row per x value."""
    xs: List[float] = sorted({x for points in series.values() for x, _ in points})
    rows = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            if x in lookup:
                row[f"{name} {y_label}"] = lookup[x]
        rows.append(row)
    return format_table(rows, precision=precision, title=title)


def format_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a frequency histogram of ``values`` with ASCII bars."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no values)")
        return "\n".join(lines)
    low = min(values)
    high = max(values)
    if math.isclose(low, high):
        lines.append(f"all {len(values)} values ≈ {low:.{precision}f}")
        return "\n".join(lines)
    bin_width = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / bin_width))
        counts[index] += 1
    peak = max(counts)
    for index, count in enumerate(counts):
        start = low + index * bin_width
        end = start + bin_width
        bar = "#" * (0 if peak == 0 else int(round(width * count / peak)))
        lines.append(
            f"[{start:8.{precision}f}, {end:8.{precision}f}) "
            f"{count:6d} {bar}"
        )
    return "\n".join(lines)


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics (count/min/median/mean/p90/max) of a distribution."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    count = len(ordered)

    def percentile(fraction: float) -> float:
        if count == 1:
            return ordered[0]
        position = fraction * (count - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        weight = position - lower
        return ordered[lower] * (1 - weight) + ordered[upper] * weight

    return {
        "count": count,
        "min": ordered[0],
        "median": percentile(0.5),
        "mean": sum(ordered) / count,
        "p90": percentile(0.9),
        "max": ordered[-1],
    }
