"""Brute-force and pre-computation-only MaxRkNNT baselines (Section 6.1/6.2).

Two baselines frame the evaluation of the pruned planner:

* **BF** (:func:`maxrknnt_bruteforce`) — enumerate every loopless candidate
  route whose travel distance does not exceed ``τ`` (the paper does this by
  looping Yen's k shortest paths; we enumerate them directly with a
  distance-bounded DFS which yields the identical candidate set), run an
  on-the-fly RkNNT query for each candidate, and keep the best.
* **Pre** (:func:`maxrknnt_pre`) — same candidate enumeration, but the
  on-the-fly RkNNT query is replaced by a union of pre-computed per-vertex
  RkNNT sets (Lemma 3), which removes the dominant cost of BF but still
  explores every candidate route.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.rknnt import RkNNTProcessor, VORONOI
from repro.planning.graph import BusNetwork
from repro.planning.maxrknnt import (
    MAXIMIZE,
    MINIMIZE,
    OBJECTIVES,
    PlannedRoute,
    PlanningStatistics,
)
from repro.planning.precompute import VertexRkNNTIndex
from repro.planning.shortest_path import enumerate_paths_within_distance


def maxrknnt_bruteforce(
    network: BusNetwork,
    processor: RkNNTProcessor,
    start: int,
    destination: int,
    distance_threshold: float,
    k: int,
    objective: str = MAXIMIZE,
    method: str = VORONOI,
    max_candidates: Optional[int] = None,
) -> Optional[PlannedRoute]:
    """The BF baseline: one full RkNNT query per candidate route.

    Parameters
    ----------
    max_candidates:
        Optional safety cap on the number of candidate routes evaluated (the
        candidate count grows combinatorially with ``τ``); ``None`` evaluates
        every candidate.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    stats = PlanningStatistics()
    started = time.perf_counter()

    best: Optional[PlannedRoute] = None
    best_value = -math.inf if objective == MAXIMIZE else math.inf
    for distance, path in enumerate_paths_within_distance(
        network, start, destination, distance_threshold, max_paths=max_candidates
    ):
        stats.complete_routes += 1
        query_points = network.path_points(path)
        result = processor.query(query_points, k, method=method)
        value = len(result.transition_ids)
        is_better = value > best_value if objective == MAXIMIZE else value < best_value
        if is_better or (
            value == best_value
            and best is not None
            and distance < best.travel_distance
        ):
            best_value = value
            best = PlannedRoute(
                vertices=path,
                travel_distance=distance,
                transition_ids=result.transition_ids,
                objective=objective,
                stats=stats,
            )
    stats.seconds = time.perf_counter() - started
    if best is not None:
        best.stats = stats
    return best


def maxrknnt_pre(
    network: BusNetwork,
    vertex_index: VertexRkNNTIndex,
    start: int,
    destination: int,
    distance_threshold: float,
    objective: str = MAXIMIZE,
    max_candidates: Optional[int] = None,
) -> Optional[PlannedRoute]:
    """The Pre baseline: candidate enumeration + pre-computed RkNNT unions.

    Identical candidate set to :func:`maxrknnt_bruteforce`; the per-candidate
    RkNNT query is replaced by a union of the pre-computed per-vertex sets
    (Lemma 3), so the running time reduces to the path enumeration itself.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    stats = PlanningStatistics()
    started = time.perf_counter()

    best: Optional[PlannedRoute] = None
    best_value = -math.inf if objective == MAXIMIZE else math.inf
    for distance, path in enumerate_paths_within_distance(
        network, start, destination, distance_threshold, max_paths=max_candidates
    ):
        stats.complete_routes += 1
        endpoints = vertex_index.route_endpoints(path)
        transition_ids = VertexRkNNTIndex.exists_ids(endpoints)
        value = len(transition_ids)
        is_better = value > best_value if objective == MAXIMIZE else value < best_value
        if is_better or (
            value == best_value
            and best is not None
            and distance < best.travel_distance
        ):
            best_value = value
            best = PlannedRoute(
                vertices=path,
                travel_distance=distance,
                transition_ids=transition_ids,
                objective=objective,
                stats=stats,
            )
    stats.seconds = time.perf_counter() - started
    if best is not None:
        best.stats = stats
    return best
