"""MaxRkNNT / MinRkNNT route planning with pruning (Algorithm 6).

Given a start vertex, an end vertex and a travel-distance threshold ``τ``,
find the loopless route through the bus network that attracts the most (or
fewest) passengers — i.e. maximises (minimises) ``|RkNNT(R)|`` subject to
``ψ(R) ≤ τ`` (Definition 10).

The planner expands partial routes best-first (shortest travel distance
first) and applies the paper's two pruning rules:

* **checkReachability** — a partial route ending at ``v`` is discarded when
  ``ψ(R*) + M_ψ[v][destination] > τ`` (it can no longer reach the destination
  within budget);
* **checkDominance** (Lemma 4) — a partial route ``R2`` ending at ``v`` is
  discarded when another partial route ``R1`` ending at ``v`` satisfies
  ``ψ(R1) < ψ(R2)`` and ``|∀RkNNT(R1)| > |∃RkNNT(R2)|``; for MinRkNNT the
  roles are swapped.

MinRkNNT additionally applies the **checkBounds** rule: since the RkNNT set
only grows as a route is extended, a partial route whose ∃-count already
exceeds the best complete route found so far can never improve the minimum.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.planning.graph import BusNetwork
from repro.planning.precompute import EndpointTag, VertexRkNNTIndex

MAXIMIZE = "max"
MINIMIZE = "min"
OBJECTIVES = (MAXIMIZE, MINIMIZE)


@dataclass
class PlanningStatistics:
    """Counters describing one MaxRkNNT / MinRkNNT search."""

    #: Partial routes popped from the priority queue.
    expansions: int = 0
    #: Extensions rejected by the reachability check.
    pruned_by_reachability: int = 0
    #: Extensions rejected by the dominance check.
    pruned_by_dominance: int = 0
    #: Extensions rejected by the bound check (MinRkNNT only).
    pruned_by_bound: int = 0
    #: Complete routes reaching the destination within budget.
    complete_routes: int = 0
    #: Wall-clock seconds of the search (excludes pre-computation).
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "expansions": self.expansions,
            "pruned_by_reachability": self.pruned_by_reachability,
            "pruned_by_dominance": self.pruned_by_dominance,
            "pruned_by_bound": self.pruned_by_bound,
            "complete_routes": self.complete_routes,
            "seconds": self.seconds,
        }


@dataclass
class PlannedRoute:
    """Result of an optimal route planning query."""

    #: Vertex ids from start to destination.
    vertices: Tuple[int, ...]
    #: Travel distance ``ψ(R)`` of the route.
    travel_distance: float
    #: Transition ids of the route's RkNNT set (∃ semantics).
    transition_ids: FrozenSet[int]
    #: The objective that produced the route (``"max"`` or ``"min"``).
    objective: str
    #: Search statistics.
    stats: PlanningStatistics = field(default_factory=PlanningStatistics)

    @property
    def passengers(self) -> int:
        """``|ω(R)|``: number of attracted passengers (the paper's NP column)."""
        return len(self.transition_ids)

    @property
    def stop_count(self) -> int:
        """Number of stops on the route."""
        return len(self.vertices)

    def __repr__(self) -> str:
        return (
            f"PlannedRoute(objective={self.objective}, stops={self.stop_count}, "
            f"distance={self.travel_distance:.3f}, passengers={self.passengers})"
        )


#: Exact dominance: compares the ∃-transition-id *sets* of the two partial
#: routes (subset/superset), which is sound by Lemma 3 and never discards an
#: optimal continuation.
DOMINANCE_SUBSET = "subset"
#: The paper's Lemma 4 rule, comparing ``|∀RkNNT|`` against ``|∃RkNNT|``
#: counts.  Cheaper but heuristic; kept for fidelity and for the ablation
#: benchmarks.
DOMINANCE_LEMMA4 = "lemma4"
DOMINANCE_MODES = (DOMINANCE_SUBSET, DOMINANCE_LEMMA4)


@dataclass
class _TableEntry:
    distance: float
    exists_ids: FrozenSet[int]
    exists_count: int
    forall_count: int


class _DominanceTable:
    """Per-vertex table of non-dominated partial routes (the paper's DT)."""

    def __init__(self, objective: str, mode: str = DOMINANCE_SUBSET):
        if mode not in DOMINANCE_MODES:
            raise ValueError(
                f"unknown dominance mode {mode!r}; expected one of {DOMINANCE_MODES}"
            )
        self.objective = objective
        self.mode = mode
        self._entries: Dict[int, List[_TableEntry]] = {}

    def _dominates(self, first: _TableEntry, second: _TableEntry) -> bool:
        """True when ``first`` dominates ``second`` under the current objective."""
        if self.mode == DOMINANCE_SUBSET:
            # Sound rule: first is no longer and its result set is provably no
            # worse for every feasible continuation (superset for Max, subset
            # for Min) — see DESIGN.md.
            if first.distance > second.distance:
                return False
            if self.objective == MAXIMIZE:
                return first.exists_ids >= second.exists_ids
            return first.exists_ids <= second.exists_ids
        # Lemma 4 (count-based) rule.
        if self.objective == MAXIMIZE:
            return (
                first.distance < second.distance
                and first.forall_count > second.exists_count
            )
        return (
            first.distance < second.distance
            and first.exists_count < second.forall_count
        )

    def is_dominated(self, vertex: int, candidate: _TableEntry) -> bool:
        """True when an existing partial route at ``vertex`` dominates ``candidate``."""
        return any(
            self._dominates(existing, candidate)
            for existing in self._entries.get(vertex, ())
        )

    def insert(self, vertex: int, candidate: _TableEntry) -> None:
        """Record a non-dominated partial route and drop entries it dominates."""
        entries = self._entries.get(vertex, [])
        survivors = [
            entry for entry in entries if not self._dominates(candidate, entry)
        ]
        survivors.append(candidate)
        self._entries[vertex] = survivors


class MaxRkNNTPlanner:
    """Optimal route planner over a bus network (Section 6.2).

    Parameters
    ----------
    network:
        The bus-network graph ``G``.
    vertex_index:
        Pre-computed per-vertex RkNNT sets and shortest-distance matrix
        (Algorithm 5).  Build it once per ``k`` and reuse it for every
        planning query.
    """

    def __init__(self, network: BusNetwork, vertex_index: VertexRkNNTIndex):
        self.network = network
        self.vertex_index = vertex_index

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self,
        start: int,
        destination: int,
        distance_threshold: float,
        objective: str = MAXIMIZE,
        use_dominance: bool = True,
        use_reachability: bool = True,
        dominance_mode: str = DOMINANCE_SUBSET,
    ) -> Optional[PlannedRoute]:
        """Find the optimal loopless route from ``start`` to ``destination``.

        Returns ``None`` when no route satisfies the distance threshold.

        Parameters
        ----------
        distance_threshold:
            The travel-distance budget ``τ``.
        objective:
            ``"max"`` (MaxRkNNT, the default) or ``"min"`` (MinRkNNT).
        use_dominance, use_reachability:
            Disable individual pruning rules; used by the ablation benchmarks
            to quantify each rule's contribution.
        dominance_mode:
            ``"subset"`` (default, set-containment dominance) or ``"lemma4"``
            (the paper's count-based rule).  Dominance pruning — in either
            mode — is a heuristic on loopless paths: in rare graphs the best
            continuation of a dominated route collides with the dominating
            route's vertices, so disable it when a certified optimum is
            required.
        """
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
            )
        if start not in self.network or destination not in self.network:
            raise KeyError("start and destination must be vertices of the network")

        stats = PlanningStatistics()
        started = time.perf_counter()
        best = self._search(
            start,
            destination,
            distance_threshold,
            objective,
            use_dominance,
            use_reachability,
            dominance_mode,
            stats,
        )
        stats.seconds = time.perf_counter() - started
        if best is None:
            return None
        vertices, distance, endpoints = best
        return PlannedRoute(
            vertices=vertices,
            travel_distance=distance,
            transition_ids=VertexRkNNTIndex.exists_ids(endpoints),
            objective=objective,
            stats=stats,
        )

    def plan_max(self, start: int, destination: int, distance_threshold: float) -> Optional[PlannedRoute]:
        """Convenience wrapper for the MaxRkNNT objective."""
        return self.plan(start, destination, distance_threshold, objective=MAXIMIZE)

    def plan_min(self, start: int, destination: int, distance_threshold: float) -> Optional[PlannedRoute]:
        """Convenience wrapper for the MinRkNNT objective."""
        return self.plan(start, destination, distance_threshold, objective=MINIMIZE)

    # ------------------------------------------------------------------
    # Algorithm 6
    # ------------------------------------------------------------------
    def _search(
        self,
        start: int,
        destination: int,
        tau: float,
        objective: str,
        use_dominance: bool,
        use_reachability: bool,
        dominance_mode: str,
        stats: PlanningStatistics,
    ) -> Optional[Tuple[Tuple[int, ...], float, FrozenSet[EndpointTag]]]:
        index = self.vertex_index
        # Reachability of the query itself.
        if use_reachability and index.shortest_distance(start, destination) > tau:
            return None

        maximise = objective == MAXIMIZE
        dominance = _DominanceTable(objective, mode=dominance_mode)
        counter = itertools.count()

        start_endpoints = index.vertex_endpoints(start)
        heap: List[Tuple[float, int, Tuple[int, ...], FrozenSet[EndpointTag]]] = [
            (0.0, next(counter), (start,), start_endpoints)
        ]

        best_route: Optional[Tuple[Tuple[int, ...], float, FrozenSet[EndpointTag]]] = None
        best_value = -math.inf if maximise else math.inf

        def exists_count(tags: FrozenSet[EndpointTag]) -> int:
            return VertexRkNNTIndex.exists_count(tags)

        def forall_count(tags: FrozenSet[EndpointTag]) -> int:
            return VertexRkNNTIndex.forall_count(tags)

        if start == destination:
            return (start,), 0.0, start_endpoints

        while heap:
            distance, _, path, endpoints = heapq.heappop(heap)
            stats.expansions += 1
            tail = path[-1]

            for neighbor in self.network.neighbors(tail):
                if neighbor in path:
                    continue
                new_distance = distance + self.network.edge_weight(tail, neighbor)
                if new_distance > tau:
                    stats.pruned_by_reachability += 1
                    continue
                if use_reachability:
                    remaining = index.shortest_distance(neighbor, destination)
                    if new_distance + remaining > tau:
                        stats.pruned_by_reachability += 1
                        continue

                new_endpoints = endpoints | index.vertex_endpoints(neighbor)
                new_exists = exists_count(new_endpoints)
                new_forall = forall_count(new_endpoints)

                if not maximise and new_exists > best_value:
                    # checkBounds: ω only grows, so this branch cannot beat
                    # the best complete route found so far.
                    stats.pruned_by_bound += 1
                    continue

                if use_dominance and neighbor != destination:
                    candidate = _TableEntry(
                        distance=new_distance,
                        exists_ids=VertexRkNNTIndex.exists_ids(new_endpoints),
                        exists_count=new_exists,
                        forall_count=new_forall,
                    )
                    if dominance.is_dominated(neighbor, candidate):
                        stats.pruned_by_dominance += 1
                        continue
                    dominance.insert(neighbor, candidate)

                new_path = path + (neighbor,)
                if neighbor == destination:
                    stats.complete_routes += 1
                    value = new_exists
                    is_better = (
                        value > best_value if maximise else value < best_value
                    )
                    if is_better or (
                        value == best_value
                        and best_route is not None
                        and new_distance < best_route[1]
                    ):
                        best_value = value
                        best_route = (new_path, new_distance, new_endpoints)
                    # A complete route can still be extended only through the
                    # destination, which a loopless path cannot revisit, so do
                    # not re-enqueue it.
                    continue

                heapq.heappush(
                    heap, (new_distance, next(counter), new_path, new_endpoints)
                )
        return best_route
