"""Shortest-path machinery for the bus network.

MaxRkNNT needs three ingredients from classical graph search:

* single-source Dijkstra (:func:`dijkstra`) — reachability bounds and the
  seed path of Yen's algorithm;
* all-pairs shortest distances (:func:`all_pairs_shortest_distances`) — the
  matrix ``M_ψ`` of Algorithm 5 used by the ``checkReachability`` pruning;
  a textbook Floyd–Warshall (:func:`floyd_warshall`) is provided as the
  paper's reference algorithm, with repeated Dijkstra as the default because
  bus networks are sparse;
* loopless path enumeration — Yen's k shortest paths
  (:func:`yen_k_shortest_paths`) and the threshold-bounded variant
  (:func:`enumerate_paths_within_distance`) that the brute-force MaxRkNNT
  baseline uses to collect every candidate route with ``ψ(R) ≤ τ``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.planning.graph import BusNetwork

Path = Tuple[int, ...]


def dijkstra(
    network: BusNetwork,
    source: int,
    target: Optional[int] = None,
    forbidden_vertices: Optional[Set[int]] = None,
    forbidden_edges: Optional[Set[Tuple[int, int]]] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Single-source shortest distances and predecessors.

    Parameters
    ----------
    source:
        Start vertex.
    target:
        Optional early-exit vertex: the search stops once the target is
        settled.
    forbidden_vertices / forbidden_edges:
        Vertices and (directed) edges the search must avoid; used by Yen's
        algorithm when computing spur paths.

    Returns
    -------
    (distances, predecessors)
        ``distances`` maps every settled vertex to its shortest distance from
        ``source``; ``predecessors`` maps each settled vertex (except the
        source) to the previous vertex on one shortest path.
    """
    if source not in network:
        raise KeyError(f"source vertex {source} not in network")
    forbidden_vertices = forbidden_vertices or set()
    forbidden_edges = forbidden_edges or set()
    if source in forbidden_vertices:
        return {}, {}

    distances: Dict[int, float] = {}
    predecessors: Dict[int, int] = {}
    tentative: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if vertex in distances:
            continue
        distances[vertex] = dist
        if target is not None and vertex == target:
            break
        for neighbor in network.neighbors(vertex):
            if neighbor in distances or neighbor in forbidden_vertices:
                continue
            if (vertex, neighbor) in forbidden_edges:
                continue
            candidate = dist + network.edge_weight(vertex, neighbor)
            if candidate < tentative.get(neighbor, math.inf):
                tentative[neighbor] = candidate
                predecessors[neighbor] = vertex
                heapq.heappush(heap, (candidate, neighbor))
    # Drop predecessor entries of unsettled vertices.
    predecessors = {v: p for v, p in predecessors.items() if v in distances}
    return distances, predecessors


def shortest_path(
    network: BusNetwork, source: int, target: int
) -> Tuple[float, Path]:
    """Shortest distance and one shortest vertex path from source to target.

    Returns ``(inf, ())`` when the target is unreachable.
    """
    distances, predecessors = dijkstra(network, source, target=target)
    if target not in distances:
        return math.inf, ()
    path: List[int] = [target]
    while path[-1] != source:
        path.append(predecessors[path[-1]])
    path.reverse()
    return distances[target], tuple(path)


def all_pairs_shortest_distances(
    network: BusNetwork, sources: Optional[Sequence[int]] = None
) -> Dict[int, Dict[int, float]]:
    """All-pairs shortest distances ``M_ψ`` (Algorithm 5).

    Runs one Dijkstra per source, which is the right complexity class for
    sparse bus networks; :func:`floyd_warshall` is provided separately as the
    paper's reference algorithm for small graphs.

    Parameters
    ----------
    sources:
        Restrict the computation to these source vertices (all by default).
    """
    matrix: Dict[int, Dict[int, float]] = {}
    vertices = list(sources) if sources is not None else list(network.vertices())
    for source in vertices:
        distances, _ = dijkstra(network, source)
        matrix[source] = distances
    return matrix


def floyd_warshall(network: BusNetwork) -> Dict[int, Dict[int, float]]:
    """Classic Floyd–Warshall all-pairs shortest distances (O(V^3)).

    Intended for small graphs and for cross-checking
    :func:`all_pairs_shortest_distances` in the test suite.
    """
    vertices = list(network.vertices())
    dist: Dict[int, Dict[int, float]] = {
        u: {v: (0.0 if u == v else math.inf) for v in vertices} for u in vertices
    }
    for u, v, weight in network.edges():
        if weight < dist[u][v]:
            dist[u][v] = weight
            dist[v][u] = weight
    for mid in vertices:
        dist_mid = dist[mid]
        for u in vertices:
            du_mid = dist[u][mid]
            if du_mid is math.inf:
                continue
            dist_u = dist[u]
            for v in vertices:
                candidate = du_mid + dist_mid[v]
                if candidate < dist_u[v]:
                    dist_u[v] = candidate
    return dist


def _path_distance(network: BusNetwork, path: Sequence[int]) -> float:
    return network.path_distance(path)


def yen_k_shortest_paths(
    network: BusNetwork, source: int, target: int, k: int
) -> List[Tuple[float, Path]]:
    """Yen's algorithm: the k shortest loopless paths from source to target.

    Returns at most ``k`` paths sorted by increasing travel distance.  Used by
    the brute-force MaxRkNNT baseline, which keeps requesting the next
    shortest path until the distance threshold ``τ`` is exceeded.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    best_distance, best_path = shortest_path(network, source, target)
    if not best_path:
        return []
    results: List[Tuple[float, Path]] = [(best_distance, best_path)]
    candidates: List[Tuple[float, Path]] = []
    seen_candidates: Set[Path] = {best_path}

    while len(results) < k:
        _, previous_path = results[-1]
        for spur_index in range(len(previous_path) - 1):
            spur_vertex = previous_path[spur_index]
            root_path = previous_path[: spur_index + 1]

            forbidden_edges: Set[Tuple[int, int]] = set()
            for _, accepted_path in results:
                if accepted_path[: spur_index + 1] == root_path and len(
                    accepted_path
                ) > spur_index + 1:
                    forbidden_edges.add(
                        (accepted_path[spur_index], accepted_path[spur_index + 1])
                    )
            forbidden_vertices = set(root_path[:-1])

            spur_distances, spur_predecessors = dijkstra(
                network,
                spur_vertex,
                target=target,
                forbidden_vertices=forbidden_vertices,
                forbidden_edges=forbidden_edges,
            )
            if target not in spur_distances:
                continue
            spur_path: List[int] = [target]
            while spur_path[-1] != spur_vertex:
                spur_path.append(spur_predecessors[spur_path[-1]])
            spur_path.reverse()
            total_path = root_path[:-1] + tuple(spur_path)
            if total_path in seen_candidates:
                continue
            seen_candidates.add(total_path)
            heapq.heappush(
                candidates, (_path_distance(network, total_path), total_path)
            )
        if not candidates:
            break
        results.append(heapq.heappop(candidates))
    return results


def enumerate_paths_within_distance(
    network: BusNetwork,
    source: int,
    target: int,
    max_distance: float,
    max_paths: Optional[int] = None,
) -> Iterator[Tuple[float, Path]]:
    """Every loopless path from source to target with ``ψ(path) ≤ max_distance``.

    This is the candidate generator of the brute-force MaxRkNNT baseline:
    "find all the candidate routes which meet the travel distance threshold
    constraint".  The enumeration is a depth-first search pruned by the
    shortest remaining distance to the target, so a prefix is abandoned as
    soon as it provably cannot reach the target within budget.

    Paths are yielded in depth-first order (not sorted by distance).

    Parameters
    ----------
    max_paths:
        Optional safety cap on the number of yielded paths.
    """
    if source not in network or target not in network:
        raise KeyError("source and target must be vertices of the network")
    if max_distance < 0:
        return
    # Lower bounds to the target prune hopeless prefixes.
    to_target, _ = dijkstra(network, target)
    if source not in to_target or to_target[source] > max_distance:
        return

    yielded = 0
    stack: List[Tuple[int, Tuple[int, ...], float]] = [(source, (source,), 0.0)]
    while stack:
        vertex, path, distance = stack.pop()
        if vertex == target:
            yield distance, path
            yielded += 1
            if max_paths is not None and yielded >= max_paths:
                return
            continue
        for neighbor in network.neighbors(vertex):
            if neighbor in path:
                continue
            new_distance = distance + network.edge_weight(vertex, neighbor)
            remaining = to_target.get(neighbor, math.inf)
            if new_distance + remaining > max_distance:
                continue
            stack.append((neighbor, path + (neighbor,), new_distance))
