"""Per-vertex RkNNT pre-computation (Algorithm 5).

The optimised MaxRkNNT search relies on Lemma 3: the RkNNT set of any route
through the bus network is the union of the RkNNT sets of its vertices.  The
:class:`VertexRkNNTIndex` therefore stores, for every vertex ``v``:

* the set of *(transition id, endpoint)* pairs confirmed by ``RkNNT(v)``
  (from which both the ∃ and ∀ counts of any partial route can be derived);
* the all-pairs shortest-distance matrix ``M_ψ`` used by the reachability
  pruning.

Pre-computation time is reported per phase (Table 5 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.rknnt import RkNNTProcessor
from repro.engine.executor import run_stages
from repro.engine.plan import QueryPlan, VORONOI
from repro.geometry.kernels import BACKEND_AUTO
from repro.planning.graph import BusNetwork
from repro.planning.shortest_path import all_pairs_shortest_distances

EndpointTag = Tuple[int, str]


@dataclass
class PrecomputationReport:
    """Timing breakdown of Algorithm 5 (reproduces Table 5)."""

    #: Seconds spent answering one RkNNT query per vertex.
    rknnt_seconds: float = 0.0
    #: Seconds spent computing the all-pairs shortest-distance matrix.
    shortest_path_seconds: float = 0.0
    #: Number of vertices processed.
    vertices: int = 0
    #: The k used for the per-vertex queries.
    k: int = 0

    @property
    def total_seconds(self) -> float:
        return self.rknnt_seconds + self.shortest_path_seconds

    def as_dict(self) -> dict:
        return {
            "k": self.k,
            "vertices": self.vertices,
            "rknnt_seconds": self.rknnt_seconds,
            "shortest_path_seconds": self.shortest_path_seconds,
            "total_seconds": self.total_seconds,
        }


class VertexRkNNTIndex:
    """Pre-computed per-vertex RkNNT sets plus the shortest-distance matrix.

    Parameters
    ----------
    network:
        The bus-network graph ``G``.
    processor:
        RkNNT processor over the route and transition datasets.
    k:
        The (fixed) ``k`` used for every per-vertex query.  As the paper
        notes, several indexes with representative ``k`` values can be built
        in advance to serve different requirements.
    use_voronoi:
        Filtering variant used for the per-vertex queries.
    """

    def __init__(
        self,
        network: BusNetwork,
        processor: RkNNTProcessor,
        k: int,
        use_voronoi: bool = True,
    ):
        self.network = network
        self.processor = processor
        self.k = k
        self.use_voronoi = use_voronoi
        self._endpoints_by_vertex: Dict[int, FrozenSet[EndpointTag]] = {}
        self._shortest: Dict[int, Dict[int, float]] = {}
        self.report = PrecomputationReport(k=k)

    # ------------------------------------------------------------------
    # Algorithm 5
    # ------------------------------------------------------------------
    def build(
        self,
        vertices: Optional[Iterable[int]] = None,
        backend: str = BACKEND_AUTO,
        workers: int = 0,
    ) -> PrecomputationReport:
        """Run the pre-computation (per-vertex RkNNT + all-pairs shortest).

        The per-vertex queries are the bulk-expansion path of the MaxRkNNT
        pipeline: every vertex is a single-point RkNNT query answered through
        the processor's shared execution context, so the whole sweep reuses
        one route matrix, runs on the vectorized geometry kernels (when
        numpy is available) and memoises its answers — which later divide &
        conquer queries over the same stop locations hit for free.

        Parameters
        ----------
        vertices:
            Restrict the per-vertex RkNNT queries and the shortest-distance
            sources to a subset (all vertices by default).
        backend:
            Geometry-kernel backend for the sweep (``"auto"`` by default).
        workers:
            ``0`` (default) runs the sweep in-process; ``workers >= 1``
            shards the per-vertex queries across that many worker processes
            (:class:`~repro.engine.parallel.ShardedExecutor`).  Per-vertex
            answers are identical either way; the sharded sweep's memoised
            sub-queries stay inside the workers, so later lazy lookups
            recompute in the parent instead of hitting the shared cache.
        """
        vertex_list = (
            list(vertices) if vertices is not None else list(self.network.vertices())
        )
        started = time.perf_counter()
        if workers:
            self._build_sharded(vertex_list, backend, workers)
        else:
            for vertex in vertex_list:
                self._endpoints_by_vertex[vertex] = self._query_vertex(
                    vertex, backend=backend
                )
        self.report.rknnt_seconds = time.perf_counter() - started

        started = time.perf_counter()
        self._shortest = all_pairs_shortest_distances(self.network)
        self.report.shortest_path_seconds = time.perf_counter() - started
        self.report.vertices = len(vertex_list)
        return self.report

    def _build_sharded(
        self, vertex_list: List[int], backend: str, workers: int
    ) -> None:
        """Shard the per-vertex RkNNT sweep across worker processes.

        A live serving pool on the processor (see
        :meth:`repro.core.rknnt.RkNNTProcessor.serving_pool`) is reused —
        its workers are already warm and attached to the dataset arena;
        otherwise a per-call pool is spawned for this build only.
        """
        from repro.engine.parallel import ShardedExecutor

        jobs = [
            ([tuple(self.network.position(vertex))], frozenset())
            for vertex in vertex_list
        ]
        pool = getattr(self.processor, "active_serving_pool", None)
        if pool is not None:
            results = pool.run(jobs, self.k, self._bulk_plan(backend))
        else:
            with ShardedExecutor(
                self.processor.engine_context, workers=workers
            ) as sharded:
                results = sharded.run(jobs, self.k, self._bulk_plan(backend))
        for vertex, result in zip(vertex_list, results):
            self._endpoints_by_vertex[vertex] = frozenset(
                (transition_id, endpoint)
                for transition_id, endpoints in result.confirmed_endpoints.items()
                for endpoint in endpoints
            )

    def _bulk_plan(self, backend: str) -> QueryPlan:
        """Single-point plan sharing the processor's sub-query cache."""
        return QueryPlan(
            method=VORONOI if self.use_voronoi else "filter-refine",
            use_voronoi=self.use_voronoi,
            decompose=True,
            backend=backend,
            share_subquery_cache=True,
        )

    def _query_vertex(
        self, vertex: int, backend: str = BACKEND_AUTO
    ) -> FrozenSet[EndpointTag]:
        position = tuple(self.network.position(vertex))
        confirmed, _ = run_stages(
            self.processor.engine_context,
            [position],
            self.k,
            self._bulk_plan(backend),
        )
        tags: Set[EndpointTag] = set()
        for transition_id, endpoints in confirmed.items():
            for endpoint in endpoints:
                tags.add((transition_id, endpoint))
        return frozenset(tags)

    # ------------------------------------------------------------------
    # Lookups used by the planners
    # ------------------------------------------------------------------
    def vertex_endpoints(self, vertex: int) -> FrozenSet[EndpointTag]:
        """Confirmed (transition id, endpoint) pairs of ``RkNNT(vertex)``.

        Vertices that were not pre-computed are computed lazily and cached,
        so the planners keep working after dynamic updates to the network.
        """
        cached = self._endpoints_by_vertex.get(vertex)
        if cached is None:
            cached = self._query_vertex(vertex)
            self._endpoints_by_vertex[vertex] = cached
        return cached

    def route_endpoints(self, vertices: Sequence[int]) -> FrozenSet[EndpointTag]:
        """Union of per-vertex endpoint sets along a route (Lemma 3)."""
        merged: Set[EndpointTag] = set()
        for vertex in vertices:
            merged.update(self.vertex_endpoints(vertex))
        return frozenset(merged)

    def shortest_distance(self, source: int, target: int) -> float:
        """``M_ψ[source][target]``; ``inf`` when unreachable."""
        row = self._shortest.get(source)
        if row is None:
            return float("inf")
        return row.get(target, float("inf"))

    # ------------------------------------------------------------------
    # Aggregation helpers (∃ / ∀ counts of a set of endpoint tags)
    # ------------------------------------------------------------------
    @staticmethod
    def exists_count(endpoints: Iterable[EndpointTag]) -> int:
        """``|∃RkNNT|``: transitions with at least one confirmed endpoint."""
        return len({transition_id for transition_id, _ in endpoints})

    @staticmethod
    def forall_count(endpoints: Iterable[EndpointTag]) -> int:
        """``|∀RkNNT|``: transitions with both endpoints confirmed."""
        seen: Dict[int, Set[str]] = {}
        for transition_id, endpoint in endpoints:
            seen.setdefault(transition_id, set()).add(endpoint)
        return sum(1 for endpoints_seen in seen.values() if len(endpoints_seen) == 2)

    @staticmethod
    def exists_ids(endpoints: Iterable[EndpointTag]) -> FrozenSet[int]:
        """Transition ids under ∃ semantics for a set of endpoint tags."""
        return frozenset(transition_id for transition_id, _ in endpoints)

    def __repr__(self) -> str:
        return (
            f"VertexRkNNTIndex(k={self.k}, vertices={len(self._endpoints_by_vertex)})"
        )
