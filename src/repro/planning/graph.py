"""The bus-network weighted graph ``G`` (Definition 9)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point, euclidean
from repro.model.dataset import RouteDataset
from repro.model.route import Route


class BusNetwork:
    """Weighted graph of bus stops.

    Vertices are identified by integer ids and carry a planar position.
    Edges are undirected (buses run both ways on the same street in the
    paper's formulation) and weighted by Euclidean distance between their
    endpoints unless an explicit weight is supplied.

    The network is typically built from a :class:`~repro.model.dataset.RouteDataset`
    with :meth:`from_routes`: every distinct stop location becomes a vertex
    and every pair of consecutive stops of a route becomes an edge.
    """

    def __init__(self) -> None:
        self._positions: Dict[int, Point] = {}
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._vertex_by_location: Dict[Tuple[float, float], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int, position: Sequence[float]) -> None:
        """Add a vertex; raises if the id already exists."""
        if vertex_id in self._positions:
            raise ValueError(f"duplicate vertex id {vertex_id}")
        point = Point(float(position[0]), float(position[1]))
        self._positions[vertex_id] = point
        self._adjacency[vertex_id] = {}
        self._vertex_by_location[(point.x, point.y)] = vertex_id

    def add_edge(
        self, u: int, v: int, weight: Optional[float] = None
    ) -> None:
        """Add an undirected edge; the weight defaults to Euclidean distance.

        Adding the same edge twice keeps the smaller weight (parallel street
        segments collapse to the cheaper one).
        """
        if u == v:
            raise ValueError("self-loops are not allowed in the bus network")
        if u not in self._positions or v not in self._positions:
            raise KeyError(f"both endpoints must be vertices: {u}, {v}")
        if weight is None:
            weight = euclidean(self._positions[u], self._positions[v])
        if weight < 0:
            raise ValueError("edge weights must be non-negative")
        current = self._adjacency[u].get(v)
        if current is None or weight < current:
            self._adjacency[u][v] = weight
            self._adjacency[v][u] = weight

    @classmethod
    def from_routes(cls, routes: RouteDataset | Iterable[Route]) -> "BusNetwork":
        """Build the network from bus routes.

        Stops at identical coordinates are merged into a single vertex, which
        is how crossover points arise (Definition 7).
        """
        network = cls()
        next_id = 0
        for route in routes:
            previous_vertex: Optional[int] = None
            for point in route.points:
                key = (float(point[0]), float(point[1]))
                vertex = network._vertex_by_location.get(key)
                if vertex is None:
                    vertex = next_id
                    network.add_vertex(vertex, key)
                    next_id += 1
                if previous_vertex is not None and previous_vertex != vertex:
                    network.add_edge(previous_vertex, vertex)
                previous_vertex = vertex
        return network

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def vertex_count(self) -> int:
        """``|G.V|``."""
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        """``|G.E|`` counting each undirected edge once."""
        return sum(len(neigh) for neigh in self._adjacency.values()) // 2

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(self._positions)

    def position(self, vertex_id: int) -> Point:
        """Planar position of a vertex."""
        return self._positions[vertex_id]

    def vertex_at(self, position: Sequence[float]) -> Optional[int]:
        """Vertex id at an exact location, or None."""
        return self._vertex_by_location.get(
            (float(position[0]), float(position[1]))
        )

    def neighbors(self, vertex_id: int) -> Iterator[int]:
        """Adjacent vertices."""
        return iter(self._adjacency[vertex_id])

    def degree(self, vertex_id: int) -> int:
        return len(self._adjacency[vertex_id])

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``(u, v)``; raises KeyError if absent."""
        return self._adjacency[u][v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency.get(u, {})

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate undirected edges once as ``(u, v, weight)`` with ``u < v``."""
        for u, neighbours in self._adjacency.items():
            for v, weight in neighbours.items():
                if u < v:
                    yield u, v, weight

    # ------------------------------------------------------------------
    # Route helpers
    # ------------------------------------------------------------------
    def path_distance(self, vertices: Sequence[int]) -> float:
        """Travel distance ``ψ(R)`` of a vertex path (Equation 6).

        Uses edge weights when consecutive vertices are adjacent and falls
        back to Euclidean distance otherwise (useful for evaluating routes
        imported from outside the network).
        """
        total = 0.0
        for u, v in zip(vertices, vertices[1:]):
            weight = self._adjacency.get(u, {}).get(v)
            if weight is None:
                weight = euclidean(self._positions[u], self._positions[v])
            total += weight
        return total

    def path_points(self, vertices: Sequence[int]) -> List[Tuple[float, float]]:
        """Planar points of a vertex path (for issuing RkNNT queries)."""
        return [tuple(self._positions[v]) for v in vertices]

    def path_to_route(self, route_id: int, vertices: Sequence[int]) -> Route:
        """Materialise a vertex path as a :class:`~repro.model.route.Route`."""
        return Route(route_id, self.path_points(vertices))

    def nearest_vertex(self, point: Sequence[float]) -> int:
        """Vertex closest to an arbitrary point (linear scan).

        Convenience for examples that plan a route between two raw GPS
        coordinates rather than known stop ids.
        """
        if not self._positions:
            raise ValueError("the network has no vertices")
        return min(
            self._positions,
            key=lambda vid: euclidean(self._positions[vid], point),
        )

    def __repr__(self) -> str:
        return f"BusNetwork(vertices={self.vertex_count}, edges={self.edge_count})"
