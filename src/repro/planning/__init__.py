"""Optimal route planning over a bus network (Section 6 of the paper).

This sub-package provides:

* :class:`repro.planning.graph.BusNetwork` — the weighted graph ``G`` built
  from a set of bus routes (vertices are stops, edges connect consecutive
  stops, weights are Euclidean distances);
* shortest-path machinery (Dijkstra, all-pairs matrices, Yen's k shortest
  loopless paths) in :mod:`repro.planning.shortest_path`;
* per-vertex RkNNT pre-computation (:mod:`repro.planning.precompute`,
  Algorithm 5);
* the MaxRkNNT / MinRkNNT planners: the brute-force and Pre baselines in
  :mod:`repro.planning.bruteforce` and the pruned search (Algorithm 6,
  reachability + dominance) in :mod:`repro.planning.maxrknnt`.
"""

from repro.planning.graph import BusNetwork
from repro.planning.shortest_path import (
    dijkstra,
    shortest_path,
    all_pairs_shortest_distances,
    floyd_warshall,
    yen_k_shortest_paths,
    enumerate_paths_within_distance,
)
from repro.planning.precompute import VertexRkNNTIndex, PrecomputationReport
from repro.planning.maxrknnt import (
    MaxRkNNTPlanner,
    PlannedRoute,
    PlanningStatistics,
    MAXIMIZE,
    MINIMIZE,
)
from repro.planning.bruteforce import maxrknnt_bruteforce, maxrknnt_pre

__all__ = [
    "BusNetwork",
    "dijkstra",
    "shortest_path",
    "all_pairs_shortest_distances",
    "floyd_warshall",
    "yen_k_shortest_paths",
    "enumerate_paths_within_distance",
    "VertexRkNNTIndex",
    "PrecomputationReport",
    "MaxRkNNTPlanner",
    "PlannedRoute",
    "PlanningStatistics",
    "MAXIMIZE",
    "MINIMIZE",
    "maxrknnt_bruteforce",
    "maxrknnt_pre",
]
