"""Command-line interface for the RkNNT library.

Eight sub-commands cover the typical workflows without writing any Python:

``generate``
    Build a synthetic city (routes + transitions) and save it as CSV files.
``pack``
    Build both indexes from saved CSV datasets and write them to a single
    persistent store file (:mod:`repro.engine.store`); ``query``, ``serve``
    and ``server`` then boot from it in O(1) via ``--store``.
``query``
    Run one RkNNT query (or a ``--batch-file`` workload) against saved
    datasets and print the matching transitions.
``serve``
    Long-running serving loop: stream query batches (and interleaved
    transition updates) from a file or stdin through one persistent worker
    pool with shared-memory dataset arenas.
``server``
    Network serving front-end: a TCP server speaking the newline-framed
    JSON protocol of :mod:`repro.engine.protocol`, coalescing queries
    from many concurrent client connections into micro-batches over one
    persistent pool (:mod:`repro.engine.server`).
``watch``
    Register a standing query and replay a transition update log against
    it, printing the incremental result deltas (the continuous-query
    subsystem).
``capacity``
    Estimate the demand of every route in a saved dataset (the capacity
    estimation use case).
``plan``
    Run a MaxRkNNT / MinRkNNT planning query between two stops of the
    saved network.

Example session::

    python -m repro.cli generate --preset mini --output-dir ./data
    python -m repro.cli pack --data-dir ./data --output ./data/city.store
    python -m repro.cli query --data-dir ./data --k 5 \\
        --point 3.0 4.0 --point 5.0 4.5
    python -m repro.cli serve --store ./data/city.store --k 5 \\
        --input queries.txt --workers 4
    python -m repro.cli server --store ./data/city.store --k 5 \\
        --port 8765 --workers 4
    python -m repro.cli watch --data-dir ./data --k 5 \\
        --point 3.0 4.0 --updates updates.log
    python -m repro.cli capacity --data-dir ./data --k 5 --top 10
    python -m repro.cli plan --data-dir ./data --k 5 --start 0 --end 17 --ratio 1.4

The module also ships :class:`LineClient`, the reference client for the
``server`` wire protocol (used by the test suite and ``bench_server.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.rknnt import METHODS, RkNNTProcessor, VORONOI
from repro.data.gtfs import (
    load_routes_csv,
    load_transitions_csv,
    save_routes_csv,
    save_transitions_csv,
)
from repro.data.workloads import CITY_PRESETS, make_city
from repro.engine.resilience import DeadlineExceeded, UpdateStreamError
from repro.planning.graph import BusNetwork
from repro.planning.maxrknnt import MAXIMIZE, MINIMIZE, MaxRkNNTPlanner
from repro.planning.precompute import VertexRkNNTIndex

ROUTES_FILE = "routes.csv"
TRANSITIONS_FILE = "transitions.csv"


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reverse k Nearest Neighbor Search over Trajectories (RkNNT)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic city and save it as CSV"
    )
    generate.add_argument(
        "--preset",
        choices=sorted(CITY_PRESETS),
        default="mini",
        help="city preset to generate (default: mini)",
    )
    generate.add_argument("--scale", type=float, default=1.0, help="size multiplier")
    generate.add_argument("--seed", type=int, default=None, help="random seed override")
    generate.add_argument(
        "--output-dir", required=True, help="directory for routes.csv / transitions.csv"
    )

    pack = subparsers.add_parser(
        "pack",
        help="pack saved datasets into a persistent store file (mmap boot)",
    )
    pack.add_argument(
        "--data-dir",
        required=True,
        help="directory containing routes.csv and transitions.csv",
    )
    pack.add_argument(
        "--output",
        required=True,
        help="store file to write (atomic, byte-deterministic)",
    )
    pack.add_argument(
        "--max-entries",
        type=int,
        default=16,
        help="R-tree fanout of the packed indexes (default 16)",
    )

    query = subparsers.add_parser(
        "query", help="run one RkNNT query (or a batch of them)"
    )
    _add_data_arguments(query, store=True)
    query.add_argument(
        "--point",
        dest="points",
        type=float,
        nargs=2,
        action="append",
        metavar=("X", "Y"),
        help="query point; repeat for multi-point queries",
    )
    query.add_argument(
        "--batch-file",
        help=(
            "file with one query per line (whitespace-separated "
            "'x1 y1 x2 y2 ...'; blank lines and #-comments ignored); the "
            "whole workload is answered through the batched execution "
            "engine and per-query plus aggregate throughput is reported"
        ),
    )
    query.add_argument(
        "--method", choices=METHODS, default=VORONOI, help="evaluation strategy"
    )
    query.add_argument(
        "--semantics", choices=("exists", "forall"), default="exists"
    )
    query.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "shard a --batch-file workload across N worker processes "
            "(0 = in-process; results are identical either way)"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="serving loop: stream query batches through a persistent pool",
    )
    _add_data_arguments(serve, store=True)
    serve.add_argument(
        "--input",
        default="-",
        help=(
            "query/update stream ('-' = stdin, the default): one query per "
            "line as whitespace-separated 'x1 y1 x2 y2 ...' coordinates, "
            "interleaved with transition updates '+ ID OX OY DX DY' "
            "(insert) or '- ID' (delete); blank lines and #-comments "
            "ignored"
        ),
    )
    serve.add_argument(
        "--method", choices=METHODS, default=VORONOI, help="evaluation strategy"
    )
    serve.add_argument(
        "--semantics", choices=("exists", "forall"), default="exists"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "size of the persistent serving pool (kept alive across every "
            "dispatched batch; 0 = answer in-process without a pool)"
        ),
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help=(
            "queries buffered per dispatch (a pending batch is also "
            "flushed before any update is applied, preserving stream "
            "order; default 8)"
        ),
    )
    serve.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help=(
            "multiprocessing start method of the serving pool (default: "
            "RKNNT_START_METHOD, else fork on Linux / platform default; "
            "answers are identical either way — the columnar context "
            "pickle is start-method-agnostic)"
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "per-batch time budget in milliseconds: a batch that misses it "
            "is dropped with a typed error (hung workers are terminated, "
            "the pool reseeds) and serving continues; default: "
            "RKNNT_DEADLINE_MS, unset = no deadline"
        ),
    )

    server = subparsers.add_parser(
        "server",
        help="network front-end: serve many clients over one pool (TCP)",
    )
    _add_data_arguments(server, store=True)
    server.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    server.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound port is printed on startup)",
    )
    server.add_argument(
        "--method", choices=METHODS, default=VORONOI, help="default query method"
    )
    server.add_argument(
        "--semantics", choices=("exists", "forall"), default="exists"
    )
    server.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "size of the persistent serving pool batches dispatch through "
            "(0 = answer in-process, still micro-batched)"
        ),
    )
    server.add_argument(
        "--window-ms",
        type=float,
        default=None,
        help=(
            "micro-batch coalescing window in milliseconds (default: "
            "RKNNT_SERVER_WINDOW_MS, else 2)"
        ),
    )
    server.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help=(
            "max queries per coalesced batch (default: "
            "RKNNT_SERVER_MAX_BATCH, else 64)"
        ),
    )
    server.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "per-batch time budget; queries of a batch that misses it get "
            "typed deadline_exceeded replies (default: RKNNT_DEADLINE_MS)"
        ),
    )
    server.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help=(
            "max admitted-but-unanswered queries; past it clients get "
            "immediate typed pool_saturated replies instead of unbounded "
            "buffering (default: RKNNT_QUEUE_LIMIT, 0 = unbounded)"
        ),
    )
    server.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method of the serving pool",
    )

    watch = subparsers.add_parser(
        "watch",
        help="maintain a standing query over a replayed update log",
    )
    _add_data_arguments(watch)
    watch.add_argument(
        "--point",
        dest="points",
        type=float,
        nargs=2,
        action="append",
        metavar=("X", "Y"),
        required=True,
        help="standing query point; repeat for multi-point queries",
    )
    watch.add_argument(
        "--updates",
        required=True,
        help=(
            "update log replayed against the standing query: one operation "
            "per line, either '+ ID OX OY DX DY' (insert a transition) or "
            "'- ID' (delete it); blank lines and #-comments ignored"
        ),
    )
    watch.add_argument(
        "--method", choices=METHODS, default=VORONOI, help="evaluation strategy"
    )
    watch.add_argument(
        "--semantics", choices=("exists", "forall"), default="exists"
    )

    capacity = subparsers.add_parser(
        "capacity", help="estimate the demand of every route"
    )
    _add_data_arguments(capacity)
    capacity.add_argument(
        "--top", type=int, default=10, help="print only the busiest N routes"
    )

    plan = subparsers.add_parser(
        "plan", help="plan the optimal route between two stops (MaxRkNNT)"
    )
    _add_data_arguments(plan)
    plan.add_argument("--start", type=int, required=True, help="start vertex id")
    plan.add_argument("--end", type=int, required=True, help="destination vertex id")
    plan.add_argument(
        "--ratio",
        type=float,
        default=1.4,
        help="distance budget as a multiple of the shortest path (default 1.4)",
    )
    plan.add_argument(
        "--objective", choices=(MAXIMIZE, MINIMIZE), default=MAXIMIZE
    )
    plan.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "shard the per-vertex RkNNT pre-computation across N worker "
            "processes (0 = in-process)"
        ),
    )
    return parser


def _add_data_arguments(
    parser: argparse.ArgumentParser, store: bool = False
) -> None:
    parser.add_argument(
        "--data-dir",
        required=not store,
        default=None,
        help="directory containing routes.csv and transitions.csv",
    )
    if store:
        parser.add_argument(
            "--store",
            default=None,
            metavar="PATH",
            help=(
                "boot from a persistent store file written by `pack` "
                "instead of CSV datasets (O(1) startup, mmap-shared "
                "between workers); mutually exclusive with --data-dir"
            ),
        )
    parser.add_argument("--k", type=int, default=10, help="k of the RkNNT query")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _load_datasets(data_dir: str):
    routes_path = os.path.join(data_dir, ROUTES_FILE)
    transitions_path = os.path.join(data_dir, TRANSITIONS_FILE)
    for path in (routes_path, transitions_path):
        if not os.path.exists(path):
            raise SystemExit(f"error: missing dataset file {path}; run `generate` first")
    return load_routes_csv(routes_path), load_transitions_csv(transitions_path)


def _boot_processor(args: argparse.Namespace) -> RkNNTProcessor:
    """Build the processor from ``--data-dir`` CSVs or a ``--store`` file."""
    store_path = getattr(args, "store", None)
    if store_path is not None:
        if args.data_dir is not None:
            raise SystemExit("error: --data-dir and --store are mutually exclusive")
        from repro.engine.resilience import StoreError

        try:
            return RkNNTProcessor.from_store(store_path)
        except StoreError as error:
            raise SystemExit(f"error: {error}")
    if args.data_dir is None:
        raise SystemExit("error: provide --data-dir or --store")
    routes, transitions = _load_datasets(args.data_dir)
    return RkNNTProcessor(routes, transitions)


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------
def command_generate(args: argparse.Namespace) -> int:
    city, transitions = make_city(args.preset, scale=args.scale, seed=args.seed)
    os.makedirs(args.output_dir, exist_ok=True)
    routes_path = os.path.join(args.output_dir, ROUTES_FILE)
    transitions_path = os.path.join(args.output_dir, TRANSITIONS_FILE)
    save_routes_csv(city.routes, routes_path)
    save_transitions_csv(transitions, transitions_path)
    print(
        f"generated preset {args.preset!r}: {len(city.routes)} routes -> {routes_path}, "
        f"{len(transitions)} transitions -> {transitions_path}"
    )
    print(
        f"bus network: {city.network.vertex_count} stops, "
        f"{city.network.edge_count} links"
    )
    return 0


def _load_batch_file(path: str) -> List[List[tuple]]:
    """Parse a batch file: one query per line, whitespace-separated floats."""
    if not os.path.exists(path):
        raise SystemExit(f"error: batch file {path} does not exist")
    queries: List[List[tuple]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            values = text.replace(",", " ").split()
            if len(values) % 2 != 0:
                raise SystemExit(
                    f"error: {path}:{line_number}: expected an even number "
                    f"of coordinates, got {len(values)}"
                )
            try:
                floats = [float(value) for value in values]
            except ValueError:
                raise SystemExit(
                    f"error: {path}:{line_number}: non-numeric coordinate"
                )
            queries.append(
                [(floats[i], floats[i + 1]) for i in range(0, len(floats), 2)]
            )
    if not queries:
        raise SystemExit(f"error: batch file {path} contains no queries")
    return queries


def command_pack(args: argparse.Namespace) -> int:
    """Pack saved datasets into one persistent store file."""
    from repro.engine import store as store_module
    from repro.engine.resilience import StoreError

    routes, transitions = _load_datasets(args.data_dir)
    processor = RkNNTProcessor(routes, transitions, max_entries=args.max_entries)
    try:
        handle = store_module.save_indexes(
            args.output, processor.route_index, processor.transition_index
        )
    except StoreError as error:
        raise SystemExit(f"error: {error}")
    print(
        f"packed {len(routes)} routes and {len(transitions)} transitions -> "
        f"{handle.path} ({handle.nbytes} bytes, {len(handle.columns)} columns)"
    )
    print(
        "boot with `--store` on query/serve/server: attaches by mmap in O(1), "
        "workers reseed from the file instead of a pickle"
    )
    return 0


def command_query(args: argparse.Namespace) -> int:
    if args.batch_file is None and not args.points:
        raise SystemExit("error: provide --point (repeatable) or --batch-file")
    if args.batch_file is not None and args.points:
        raise SystemExit("error: --point and --batch-file are mutually exclusive")
    if args.workers < 0:
        raise SystemExit("error: --workers must be non-negative")
    if args.workers and args.batch_file is None:
        raise SystemExit("error: --workers requires --batch-file")
    processor = _boot_processor(args)
    transitions = processor.transitions
    if args.batch_file is not None:
        return _run_query_batch(args, processor, transitions)
    query_points = [tuple(point) for point in args.points]
    result = processor.query(
        query_points, args.k, method=args.method, semantics=args.semantics
    )
    print(
        f"RkNNT(|Q|={len(query_points)}, k={args.k}, method={args.method}, "
        f"semantics={args.semantics}): {len(result)} transitions"
    )
    rows = []
    for transition_id in sorted(result.transition_ids):
        transition = transitions.get(transition_id)
        rows.append(
            {
                "transition": transition_id,
                "origin": f"({transition.origin.x:.3f}, {transition.origin.y:.3f})",
                "destination": (
                    f"({transition.destination.x:.3f}, {transition.destination.y:.3f})"
                ),
                "endpoints": "".join(sorted(result.confirmed_endpoints[transition_id])),
            }
        )
    if rows:
        print(format_table(rows))
    print(
        f"filtering {result.stats.filtering_seconds * 1000:.1f} ms, "
        f"verification {result.stats.verification_seconds * 1000:.1f} ms, "
        f"{result.stats.candidates} candidates"
    )
    return 0


def _reuse_stats_line(context) -> str:
    """One-line summary of the context's cross-query reuse counters."""
    return (
        f"subquery cache: {context.subquery_hits} hits, "
        f"{context.subquery_misses} misses, "
        f"{context.subquery_patches} patches; "
        f"locality: {context.locality_clusters} clusters, "
        f"{context.locality_seeded} seeded, "
        f"{context.locality_retested} re-tested; "
        f"shard fallbacks: {context.shard_fallbacks}"
    )


def _run_query_batch(args, processor, transitions) -> int:
    """Answer every query of ``--batch-file`` through the batched engine."""
    import time

    queries = _load_batch_file(args.batch_file)
    started = time.perf_counter()
    results = processor.query_batch(
        queries,
        args.k,
        method=args.method,
        semantics=args.semantics,
        workers=args.workers,
    )
    elapsed = time.perf_counter() - started

    rows = []
    for index, (query, result) in enumerate(zip(queries, results)):
        rows.append(
            {
                "query": index,
                "points": len(query),
                "results": len(result),
                "candidates": result.stats.candidates,
                "ms": result.stats.total_seconds * 1000.0,
            }
        )
    print(
        f"RkNNT batch of {len(queries)} queries (k={args.k}, "
        f"method={args.method}, semantics={args.semantics}, "
        f"workers={args.workers})"
    )
    print(format_table(rows, precision=2))
    throughput = len(queries) / elapsed if elapsed else 0.0
    print(
        f"total {elapsed * 1000:.1f} ms, {throughput:.1f} queries/s, "
        f"{sum(len(result) for result in results)} transitions matched"
    )
    print(_reuse_stats_line(processor.engine_context))
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """Serving loop: stream queries (and updates) through a persistent pool.

    Unlike ``query --batch-file`` — which answers one workload and exits,
    spawning a fresh worker pool per invocation — ``serve`` keeps one pool
    (and its shared-memory dataset arena) alive for the whole stream:
    every flushed batch dispatches to already-warm workers, and transition
    updates are delta-synced into them instead of forcing respawns.
    """
    import time

    from repro.model.transition import Transition

    if args.workers < 0:
        raise SystemExit("error: --workers must be non-negative")
    if args.batch_size <= 0:
        raise SystemExit("error: --batch-size must be positive")
    processor = _boot_processor(args)
    transitions = processor.transitions

    if args.input == "-":
        stream = sys.stdin
        close_stream = False
    else:
        if not os.path.exists(args.input):
            raise SystemExit(f"error: input stream {args.input} does not exist")
        stream = open(args.input, "r", encoding="utf-8")
        close_stream = True

    stats = {
        "batches": 0,
        "queries": 0,
        "matched": 0,
        "updates": 0,
        "rejected": 0,
        "deadline_misses": 0,
        "dropped": 0,
    }
    latencies: List[float] = []
    batch: List[List[tuple]] = []

    def reject(where: str, error: UpdateStreamError) -> None:
        # A malformed line must never tear the loop (or its pool) down:
        # log the typed rejection to stderr and keep serving.
        stats["rejected"] += 1
        print(f"warning: {where}: rejected line ({error})", file=sys.stderr)

    def flush() -> None:
        if not batch:
            return
        started = time.perf_counter()
        try:
            results = processor.query_batch(
                batch,
                args.k,
                method=args.method,
                semantics=args.semantics,
                workers=args.workers,
                deadline_ms=args.deadline_ms,
            )
        except DeadlineExceeded as error:
            # The budget is a promise to the caller: the batch is dropped
            # with a typed error (any hung workers were terminated; the
            # next flush reseeds the pool) and the stream continues.
            stats["deadline_misses"] += 1
            stats["dropped"] += len(batch)
            print(
                f"warning: batch of {len(batch)} queries dropped: {error}",
                file=sys.stderr,
            )
            batch.clear()
            return
        elapsed = time.perf_counter() - started
        latencies.append(elapsed)
        matched = sum(len(result) for result in results)
        stats["batches"] += 1
        stats["queries"] += len(batch)
        stats["matched"] += matched
        print(
            f"batch {stats['batches']}: {len(batch)} queries -> "
            f"{matched} transitions in {elapsed * 1000:.1f} ms "
            f"({len(batch) / elapsed:.1f} q/s)"
            if elapsed
            else f"batch {stats['batches']}: {len(batch)} queries -> {matched}"
        )
        batch.clear()

    def apply_update(fields: Sequence[str], where: str) -> None:
        # Stream order matters: answer everything buffered so far against
        # the pre-update dataset before mutating it.
        flush()
        try:
            if fields[0] == "+" and len(fields) == 6:
                transition_id = int(fields[1])
                if transition_id in transitions:
                    raise UpdateStreamError(
                        f"transition id {transition_id} already present"
                    )
                processor.add_transition(
                    Transition(
                        transition_id,
                        (float(fields[2]), float(fields[3])),
                        (float(fields[4]), float(fields[5])),
                    )
                )
            elif fields[0] == "-" and len(fields) == 2:
                transition_id = int(fields[1])
                if transition_id not in transitions:
                    raise UpdateStreamError(
                        f"transition id {transition_id} not in dataset"
                    )
                processor.remove_transition(transition_id)
            else:
                raise UpdateStreamError("expected '+ ID OX OY DX DY' or '- ID'")
        except UpdateStreamError:
            raise  # already typed (a ValueError subclass — re-raise first)
        except ValueError:
            raise UpdateStreamError("non-numeric field") from None
        stats["updates"] += 1

    def consume_stream() -> None:
        for line_number, line in enumerate(stream, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            fields = text.replace(",", " ").split()
            where = f"{args.input}:{line_number}"
            if fields[0] in ("+", "-"):
                try:
                    apply_update(fields, where)
                except UpdateStreamError as error:
                    reject(where, error)
                continue
            if len(fields) % 2 != 0:
                reject(
                    where,
                    UpdateStreamError(
                        f"expected an even number of coordinates, got {len(fields)}"
                    ),
                )
                continue
            try:
                floats = [float(value) for value in fields]
            except ValueError:
                reject(where, UpdateStreamError("non-numeric coordinate"))
                continue
            batch.append(
                [(floats[i], floats[i + 1]) for i in range(0, len(floats), 2)]
            )
            if len(batch) >= args.batch_size:
                flush()
        flush()

    try:
        if args.workers:
            with processor.serving_pool(
                workers=args.workers, start_method=args.start_method
            ) as pool:
                consume_stream()
                arena = pool.arena
                pool_line = (
                    f"pool: {pool.workers} workers (persistent, "
                    f"seeded {pool.pools_spawned}x), arena "
                    + (f"{arena.nbytes} bytes shared" if arena else "off")
                )
        else:
            consume_stream()
            pool_line = "pool: in-process (workers=0)"
    finally:
        processor.close()
        if close_stream:
            stream.close()

    if not stats["queries"] and not stats["updates"] and not stats["dropped"]:
        raise SystemExit(f"error: input stream {args.input} contains no work")
    total = sum(latencies)
    mean_ms = (total / len(latencies) * 1000.0) if latencies else 0.0
    print(
        f"served {stats['queries']} queries in {stats['batches']} batches "
        f"({stats['matched']} transitions matched, {stats['updates']} "
        f"updates applied)"
    )
    if stats["rejected"]:
        print(f"rejected {stats['rejected']} malformed lines (see stderr)")
    if stats["deadline_misses"]:
        print(
            f"dropped {stats['dropped']} queries in {stats['deadline_misses']} "
            f"batches that missed the {args.deadline_ms} ms deadline"
        )
    print(
        f"dispatch: {total * 1000:.1f} ms total, {mean_ms:.1f} ms/batch mean; "
        f"{pool_line}"
    )
    return 0


class LineClient:
    """Reference client for the ``server`` wire protocol.

    A deliberately boring, dependency-free *blocking* socket client — it
    demonstrates that the protocol needs nothing beyond a line reader
    and a JSON parser.  One instance per connection; safe to use from
    one thread at a time.  Unsolicited ``watch`` events arriving between
    replies are buffered and drained via :meth:`events`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        import socket

        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._events: List[dict] = []

    # -- plumbing ------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request and block for its reply (buffering events)."""
        import json

        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line.decode("utf-8"))
            if "event" in message:
                self._events.append(message)
                continue
            if message.get("id") not in (request_id, None):
                raise ConnectionError(
                    f"out-of-order reply: sent id {request_id}, "
                    f"got {message.get('id')}"
                )
            return message

    def events(self) -> List[dict]:
        """Drain the buffered unsolicited events (oldest first)."""
        drained = self._events
        self._events = []
        return drained

    def pump_events(self, minimum: int = 1, attempts: int = 50) -> List[dict]:
        """Ping until at least ``minimum`` events arrived, then drain them.

        Event pushes race the reply stream; a ``ping`` round-trip after
        each check gives the server a serialization point to flush them.
        """
        for _ in range(attempts):
            if len(self._events) >= minimum:
                break
            self.request("ping")
        return self.events()

    # -- typed helpers -------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def query(self, points, **fields) -> dict:
        return self.request("query", points=[list(p) for p in points], **fields)

    def insert(self, transition_id: int, origin, destination) -> dict:
        return self.request(
            "insert",
            transition={
                "id": transition_id,
                "origin": list(origin),
                "destination": list(destination),
            },
        )

    def delete(self, transition_id: int) -> dict:
        return self.request("delete", transition_id=transition_id)

    def watch(self, points, **fields) -> dict:
        return self.request("watch", points=[list(p) for p in points], **fields)

    def unwatch(self, watch_id: int) -> dict:
        return self.request("unwatch", watch=watch_id)

    def send_raw(self, line: str) -> dict:
        """Send a raw protocol line verbatim and read one reply."""
        import json

        self._file.write((line.rstrip("\n") + "\n").encode("utf-8"))
        self._file.flush()
        while True:
            raw = self._file.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            message = json.loads(raw.decode("utf-8"))
            if "event" in message:
                self._events.append(message)
                continue
            return message

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def command_server(args: argparse.Namespace) -> int:
    """Network serving front-end (see :mod:`repro.engine.server`)."""
    import asyncio
    import signal

    from repro.engine.server import RkNNTServer

    if args.workers < 0:
        raise SystemExit("error: --workers must be non-negative")
    processor = _boot_processor(args)
    server = RkNNTServer(
        processor,
        host=args.host,
        port=args.port,
        k=args.k,
        method=args.method,
        semantics=args.semantics,
        workers=args.workers,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        deadline_ms=args.deadline_ms,
        queue_limit=args.queue_limit,
        start_method=args.start_method,
    )

    async def _main() -> None:
        await server.start()
        print(
            f"serving RkNNT on {server.host}:{server.port} "
            f"(workers={server.workers}, window={server.window_ms} ms, "
            f"max-batch={server.max_batch}); stop with SIGINT/SIGTERM",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers
        try:
            await stop.wait()
        finally:
            await server.aclose()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        processor.close()
    stats = server.stats
    print(
        f"served {stats['queries']} queries in {stats['batches']} batches "
        f"(largest {stats['max_batch_coalesced']}), {stats['updates']} updates, "
        f"{stats['events_pushed']} events pushed, "
        f"{stats['connections']} connections"
    )
    rejected = (
        stats["rejected_protocol"]
        + stats["rejected_updates"]
        + stats["rejected_saturated"]
    )
    if rejected:
        print(
            f"rejected: {stats['rejected_protocol']} malformed requests, "
            f"{stats['rejected_updates']} bad updates, "
            f"{stats['rejected_saturated']} saturated"
        )
    return 0


def _load_update_log(path: str):
    """Parse an update log: ``+ ID OX OY DX DY`` inserts, ``- ID`` deletes.

    Malformed lines (bad op code, non-numeric fields, truncated tuples)
    are rejected with a typed warning on stderr and the rest of the log
    still replays; a log with *no* valid operation is an error.
    """
    if not os.path.exists(path):
        raise SystemExit(f"error: update log {path} does not exist")
    operations = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            fields = text.replace(",", " ").split()
            where = f"{path}:{line_number}"
            try:
                if fields[0] == "+" and len(fields) == 6:
                    operations.append(
                        (
                            "insert",
                            int(fields[1]),
                            (float(fields[2]), float(fields[3])),
                            (float(fields[4]), float(fields[5])),
                        )
                    )
                elif fields[0] == "-" and len(fields) == 2:
                    operations.append(("delete", int(fields[1]), None, None))
                else:
                    raise UpdateStreamError(
                        "expected '+ ID OX OY DX DY' or '- ID'"
                    )
            except ValueError:
                print(
                    f"warning: {where}: rejected line (non-numeric field)",
                    file=sys.stderr,
                )
            except UpdateStreamError as error:
                print(
                    f"warning: {where}: rejected line ({error})", file=sys.stderr
                )
    if not operations:
        raise SystemExit(f"error: update log {path} contains no operations")
    return operations


def command_watch(args: argparse.Namespace) -> int:
    from repro.model.transition import Transition

    routes, transitions = _load_datasets(args.data_dir)
    operations = _load_update_log(args.updates)
    processor = RkNNTProcessor(routes, transitions)
    query_points = [tuple(point) for point in args.points]
    subscription = processor.watch(
        query_points, args.k, method=args.method, semantics=args.semantics
    )
    print(
        f"watching RkNNT(|Q|={len(query_points)}, k={args.k}, "
        f"method={args.method}, semantics={args.semantics}): "
        f"{len(subscription.transition_ids)} transitions initially"
    )
    rows = []
    for step, (kind, transition_id, origin, destination) in enumerate(operations):
        # Semantically invalid operations are rejected like malformed
        # lines: a typed warning, and the replay continues.
        if kind == "insert":
            if transition_id in transitions:
                print(
                    f"warning: update {step}: rejected (transition id "
                    f"{transition_id} already present)",
                    file=sys.stderr,
                )
                continue
            processor.add_transition(Transition(transition_id, origin, destination))
        else:
            if transition_id not in transitions:
                print(
                    f"warning: update {step}: rejected (transition id "
                    f"{transition_id} not in dataset)",
                    file=sys.stderr,
                )
                continue
            processor.remove_transition(transition_id)
        for delta in subscription.poll():
            rows.append(
                {
                    "step": step,
                    "op": f"{'+' if kind == 'insert' else '-'}{transition_id}",
                    "cause": delta.cause,
                    "added": ",".join(str(t) for t in sorted(delta.added)) or "-",
                    "removed": (
                        ",".join(str(t) for t in sorted(delta.removed)) or "-"
                    ),
                }
            )
    if rows:
        print(format_table(rows, title="result deltas"))
    else:
        print("(no result deltas: the standing result never changed)")

    standing = subscription.result()
    fresh = processor.query(
        query_points, args.k, method=args.method, semantics=args.semantics
    )
    if standing.transition_ids != fresh.transition_ids:
        print("error: standing result diverged from a fresh query", file=sys.stderr)
        return 1
    stats = subscription.delta_stats
    print(
        f"replayed {len(operations)} updates: "
        f"{stats.inserts_seen} inserts, {stats.deletes_seen} deletes; "
        f"{stats.endpoints_filtered} endpoints rejected by the filter test, "
        f"{stats.endpoints_verified} verified exactly, "
        f"{stats.rebuilds} rebuilds"
    )
    print(
        f"standing result: {len(standing)} transitions "
        f"(verified against a fresh query)"
    )
    return 0


def command_capacity(args: argparse.Namespace) -> int:
    routes, transitions = _load_datasets(args.data_dir)
    processor = RkNNTProcessor(routes, transitions)
    rows = []
    route_list = list(routes)
    # One batch over all routes: the queries share the engine context's
    # caches and the vectorized kernels instead of running in isolation.
    results = processor.query_batch(route_list, args.k, method=VORONOI)
    for route, result in zip(route_list, results):
        rows.append(
            {
                "route": route.route_id,
                "name": route.name or "",
                "stops": len(route),
                "length": route.travel_distance,
                "riders_exists": len(result.exists_ids()),
                "riders_forall": len(result.forall_ids()),
            }
        )
    rows.sort(key=lambda row: -row["riders_exists"])
    print(
        format_table(
            rows[: args.top],
            title=f"estimated demand per route (top {min(args.top, len(rows))}, k={args.k})",
        )
    )
    return 0


def command_plan(args: argparse.Namespace) -> int:
    routes, transitions = _load_datasets(args.data_dir)
    processor = RkNNTProcessor(routes, transitions)
    network = BusNetwork.from_routes(routes)
    if args.start not in network or args.end not in network:
        raise SystemExit(
            f"error: start/end must be vertex ids in [0, {network.vertex_count})"
        )
    if args.workers < 0:
        raise SystemExit("error: --workers must be non-negative")
    vertex_index = VertexRkNNTIndex(network, processor, k=args.k)
    vertex_index.build(workers=args.workers)
    shortest = vertex_index.shortest_distance(args.start, args.end)
    if shortest == float("inf"):
        raise SystemExit("error: destination is not reachable from the start vertex")
    tau = shortest * args.ratio
    planner = MaxRkNNTPlanner(network, vertex_index)
    planned = planner.plan(args.start, args.end, tau, objective=args.objective)
    if planned is None:
        raise SystemExit("error: no route satisfies the distance budget")
    print(
        f"{args.objective}RkNNT route from {args.start} to {args.end} "
        f"(shortest {shortest:.3f}, budget {tau:.3f}):"
    )
    print(f"  stops:       {' -> '.join(str(v) for v in planned.vertices)}")
    print(f"  distance:    {planned.travel_distance:.3f}")
    print(f"  passengers:  {planned.passengers}")
    print(
        f"  search:      {planned.stats.seconds * 1000:.1f} ms, "
        f"{planned.stats.expansions} expansions"
    )
    print(f"  {_reuse_stats_line(processor.engine_context)}")
    return 0


COMMANDS = {
    "generate": command_generate,
    "pack": command_pack,
    "query": command_query,
    "serve": command_serve,
    "server": command_server,
    "watch": command_watch,
    "capacity": command_capacity,
    "plan": command_plan,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
