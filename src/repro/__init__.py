"""repro — Reverse k Nearest Neighbor Search over Trajectories (RkNNT).

A from-scratch Python reproduction of the query-processing system described
in *Reverse k Nearest Neighbor Search over Trajectories* (Wang, Bao,
Culpepper, Sellis, Cong; ICDE 2018 / arXiv:1704.03978).

Quick start
-----------
>>> from repro import Route, Transition, RouteDataset, TransitionDataset, RkNNTProcessor
>>> routes = RouteDataset([Route(0, [(0, 0), (1, 0), (2, 0)]),
...                        Route(1, [(0, 2), (1, 2), (2, 2)])])
>>> transitions = TransitionDataset([Transition(0, (0.5, 0.2), (1.5, 0.1))])
>>> processor = RkNNTProcessor(routes, transitions)
>>> result = processor.query([(0, 0.5), (2, 0.5)], k=2)
>>> sorted(result.transition_ids)
[0]
>>> [sorted(r.transition_ids) for r in processor.query_batch(
...     [[(0, 0.5), (2, 0.5)], [(1, 1.8)]], k=2)]
[[0], [0]]

Batch workloads go through :meth:`RkNNTProcessor.query_batch`, which shares
the execution engine's per-dataset caches and (when numpy is installed) the
vectorized geometry kernels across all queries — with answers element-wise
identical to per-query :meth:`RkNNTProcessor.query` calls.

The sub-packages mirror the paper's structure:

* :mod:`repro.core` — the RkNNT filter-refine framework, its Voronoi and
  divide & conquer optimisations, and the brute-force baseline;
* :mod:`repro.engine` — the unified query-execution engine behind all three
  strategies (query plans, shared execution contexts, the staged
  filter → prune → verify executor);
* :mod:`repro.planning` — the MaxRkNNT / MinRkNNT optimal route planning
  query over a bus-network graph;
* :mod:`repro.data` — synthetic city / check-in generators and a GTFS-like
  loader that stand in for the paper's NYC / LA datasets.
"""

from repro.model import Route, Transition, RouteDataset, TransitionDataset
from repro.core import (
    EXISTS,
    FORALL,
    RkNNTProcessor,
    RkNNTResult,
    rknnt_query,
    rknnt_bruteforce,
    rknnt_divide_conquer,
)

# Imported after repro.core: the engine's executor and core's strategy
# wrappers reference each other's submodules, and core resolves the cycle
# when it initialises first.
from repro.engine import (
    ContinuousRkNNT,
    DeadlineExceeded,
    ExecutionContext,
    PoolSaturated,
    QueryPlan,
    ResultDelta,
    RkNNTError,
    Subscription,
)
from repro.index import RouteIndex, TransitionIndex, RTree
from repro.planning import (
    BusNetwork,
    MaxRkNNTPlanner,
    PlannedRoute,
    maxrknnt_bruteforce,
)
from repro.data import CityGenerator, TransitionGenerator, SyntheticCity

__version__ = "1.6.0"

__all__ = [
    "ContinuousRkNNT",
    "DeadlineExceeded",
    "ExecutionContext",
    "PoolSaturated",
    "QueryPlan",
    "ResultDelta",
    "RkNNTError",
    "Subscription",
    "Route",
    "Transition",
    "RouteDataset",
    "TransitionDataset",
    "RkNNTProcessor",
    "RkNNTResult",
    "rknnt_query",
    "rknnt_bruteforce",
    "rknnt_divide_conquer",
    "RouteIndex",
    "TransitionIndex",
    "RTree",
    "EXISTS",
    "FORALL",
    "BusNetwork",
    "MaxRkNNTPlanner",
    "PlannedRoute",
    "maxrknnt_bruteforce",
    "CityGenerator",
    "TransitionGenerator",
    "SyntheticCity",
    "__version__",
]
