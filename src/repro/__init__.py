"""repro — Reverse k Nearest Neighbor Search over Trajectories (RkNNT).

A from-scratch Python reproduction of the query-processing system described
in *Reverse k Nearest Neighbor Search over Trajectories* (Wang, Bao,
Culpepper, Sellis, Cong; ICDE 2018 / arXiv:1704.03978).

Quick start
-----------
>>> from repro import Route, Transition, RouteDataset, TransitionDataset, RkNNTProcessor
>>> routes = RouteDataset([Route(0, [(0, 0), (1, 0), (2, 0)]),
...                        Route(1, [(0, 2), (1, 2), (2, 2)])])
>>> transitions = TransitionDataset([Transition(0, (0.5, 0.2), (1.5, 0.1))])
>>> processor = RkNNTProcessor(routes, transitions)
>>> result = processor.query([(0, 0.5), (2, 0.5)], k=1)
>>> sorted(result.transition_ids)
[0]

The three sub-packages mirror the paper's structure:

* :mod:`repro.core` — the RkNNT filter-refine framework, its Voronoi and
  divide & conquer optimisations, and the brute-force baseline;
* :mod:`repro.planning` — the MaxRkNNT / MinRkNNT optimal route planning
  query over a bus-network graph;
* :mod:`repro.data` — synthetic city / check-in generators and a GTFS-like
  loader that stand in for the paper's NYC / LA datasets.
"""

from repro.model import Route, Transition, RouteDataset, TransitionDataset
from repro.core import (
    EXISTS,
    FORALL,
    RkNNTProcessor,
    RkNNTResult,
    rknnt_query,
    rknnt_bruteforce,
    rknnt_divide_conquer,
)
from repro.index import RouteIndex, TransitionIndex, RTree
from repro.planning import (
    BusNetwork,
    MaxRkNNTPlanner,
    PlannedRoute,
    maxrknnt_bruteforce,
)
from repro.data import CityGenerator, TransitionGenerator, SyntheticCity

__version__ = "1.0.0"

__all__ = [
    "Route",
    "Transition",
    "RouteDataset",
    "TransitionDataset",
    "RkNNTProcessor",
    "RkNNTResult",
    "rknnt_query",
    "rknnt_bruteforce",
    "rknnt_divide_conquer",
    "RouteIndex",
    "TransitionIndex",
    "RTree",
    "EXISTS",
    "FORALL",
    "BusNetwork",
    "MaxRkNNTPlanner",
    "PlannedRoute",
    "maxrknnt_bruteforce",
    "CityGenerator",
    "TransitionGenerator",
    "SyntheticCity",
    "__version__",
]
