"""Transitions: origin/destination pairs of passengers (Definition 2)."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point, euclidean


class Transition:
    """A passenger transition ``T = {t_o, t_d}`` (Definition 2 of the paper).

    A transition models a single passenger movement as an origin point and a
    destination point (e.g. home → office, or two consecutive check-ins).

    Parameters
    ----------
    transition_id:
        Unique identifier of the transition inside its dataset.
    origin, destination:
        ``(x, y)`` pairs.
    timestamp:
        Optional arrival time of the transition; used by the dynamic-update
        examples to expire old transitions.
    """

    __slots__ = ("transition_id", "origin", "destination", "timestamp")

    def __init__(
        self,
        transition_id: int,
        origin: Sequence[float],
        destination: Sequence[float],
        timestamp: Optional[float] = None,
    ):
        self.transition_id = int(transition_id)
        self.origin = Point(float(origin[0]), float(origin[1]))
        self.destination = Point(float(destination[0]), float(destination[1]))
        self.timestamp = timestamp

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def points(self) -> Tuple[Point, Point]:
        """The two endpoints ``(t_o, t_d)``."""
        return (self.origin, self.destination)

    @property
    def bbox(self) -> BoundingBox:
        """Minimum bounding rectangle of the two endpoints."""
        return BoundingBox.from_points(self.points)

    def coordinates(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """The endpoint coordinates as plain ``((ox, oy), (dx, dy))`` tuples.

        Geometric identity, independent of the transition id — convenient
        for reinserting a transition at the same location under a new id
        (``Transition(new_id, *old.coordinates())``); the continuous-query
        differential tests rely on this to assert that a
        delete-then-reinsert converges to the same standing result
        whichever id the reinserted transition carries.

        Returns
        -------
        tuple
            ``((origin.x, origin.y), (destination.x, destination.y))``.
        """
        return (
            (self.origin.x, self.origin.y),
            (self.destination.x, self.destination.y),
        )

    @property
    def length(self) -> float:
        """Straight-line distance between origin and destination."""
        return euclidean(self.origin, self.destination)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return 2

    def __iter__(self) -> Iterator[Point]:
        yield self.origin
        yield self.destination

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transition):
            return NotImplemented
        return (
            self.transition_id == other.transition_id
            and self.origin == other.origin
            and self.destination == other.destination
        )

    def __hash__(self) -> int:
        return hash((self.transition_id, self.origin, self.destination))

    def __repr__(self) -> str:
        return (
            f"Transition(id={self.transition_id}, "
            f"origin={tuple(self.origin)}, destination={tuple(self.destination)})"
        )
