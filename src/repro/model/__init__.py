"""Data model: routes, transitions and their dynamic datasets."""

from repro.model.route import Route
from repro.model.transition import Transition
from repro.model.dataset import RouteDataset, TransitionDataset

__all__ = [
    "Route",
    "Transition",
    "RouteDataset",
    "TransitionDataset",
]
