"""Dynamic route and transition datasets.

The paper stresses that transition data is highly dynamic (new Uber requests
arrive continuously, old ones expire).  The datasets below therefore support
cheap incremental ``add`` / ``remove`` while keeping the auxiliary spatial
indexes (built lazily by the search layer) in sync through simple versioning.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.geometry.bbox import BoundingBox
from repro.model.route import Route
from repro.model.transition import Transition


class RouteDataset:
    """A collection ``DR`` of :class:`~repro.model.route.Route` objects.

    Routes are addressable by id, iteration order is insertion order, and the
    dataset exposes a monotonically increasing ``version`` so dependent
    indexes can detect staleness.
    """

    def __init__(self, routes: Optional[Iterable[Route]] = None):
        self._routes: Dict[int, Route] = {}
        self.version = 0
        if routes is not None:
            for route in routes:
                self.add(route)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, route: Route) -> None:
        """Add a route; raises if the id is already present."""
        if route.route_id in self._routes:
            raise ValueError(f"duplicate route id {route.route_id}")
        self._routes[route.route_id] = route
        self.version += 1

    def remove(self, route_id: int) -> Route:
        """Remove and return the route with ``route_id``."""
        try:
            route = self._routes.pop(route_id)
        except KeyError:
            raise KeyError(f"route id {route_id} not in dataset") from None
        self.version += 1
        return route

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, route_id: int) -> Route:
        return self._routes[route_id]

    def __contains__(self, route_id: int) -> bool:
        return route_id in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    @property
    def route_ids(self) -> List[int]:
        return list(self._routes.keys())

    def next_id(self) -> int:
        """Smallest id not yet used (convenience for generators/examples)."""
        return max(self._routes.keys(), default=-1) + 1

    # ------------------------------------------------------------------
    # Statistics used by the experiment harness (Tables 2 and 3, Figure 17)
    # ------------------------------------------------------------------
    @property
    def bbox(self) -> BoundingBox:
        """Bounding box of every route point in the dataset."""
        return BoundingBox.union_all(route.bbox for route in self)

    def total_points(self) -> int:
        """Total number of route points across all routes."""
        return sum(len(route) for route in self)

    def travel_distances(self) -> List[float]:
        """``ψ(R)`` for every route."""
        return [route.travel_distance for route in self]

    def detour_ratios(self) -> List[float]:
        """``ψ(R)/ψ(se)`` for every route (Figure 6)."""
        return [route.detour_ratio for route in self]

    def intervals(self) -> List[float]:
        """Average point spacing ``I`` for every route (Figure 17)."""
        return [route.interval for route in self]

    def stop_counts(self) -> List[int]:
        """Number of stops per route (Figure 17)."""
        return [len(route) for route in self]

    def __repr__(self) -> str:
        return f"RouteDataset(routes={len(self)}, version={self.version})"


class TransitionDataset:
    """A collection ``DT`` of :class:`~repro.model.transition.Transition`.

    Supports the dynamic-update workflow of the paper: transitions can be
    appended as passengers issue new requests and expired transitions can be
    removed, either individually or by timestamp.
    """

    def __init__(self, transitions: Optional[Iterable[Transition]] = None):
        self._transitions: Dict[int, Transition] = {}
        self.version = 0
        if transitions is not None:
            for transition in transitions:
                self.add(transition)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, transition: Transition) -> None:
        """Add a transition; raises if the id is already present."""
        if transition.transition_id in self._transitions:
            raise ValueError(f"duplicate transition id {transition.transition_id}")
        self._transitions[transition.transition_id] = transition
        self.version += 1

    def remove(self, transition_id: int) -> Transition:
        """Remove and return the transition with ``transition_id``."""
        try:
            transition = self._transitions.pop(transition_id)
        except KeyError:
            raise KeyError(f"transition id {transition_id} not in dataset") from None
        self.version += 1
        return transition

    def expire_before(self, timestamp: float) -> List[Transition]:
        """Remove every transition whose timestamp is older than ``timestamp``.

        Transitions without a timestamp are kept.  Returns the removed
        transitions (oldest first).
        """
        expired = [
            t
            for t in self._transitions.values()
            if t.timestamp is not None and t.timestamp < timestamp
        ]
        expired.sort(key=lambda t: t.timestamp)
        for t in expired:
            del self._transitions[t.transition_id]
        if expired:
            self.version += 1
        return expired

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, transition_id: int) -> Transition:
        return self._transitions[transition_id]

    def __contains__(self, transition_id: int) -> bool:
        return transition_id in self._transitions

    def __len__(self) -> int:
        return len(self._transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions.values())

    @property
    def transition_ids(self) -> List[int]:
        return list(self._transitions.keys())

    def next_id(self) -> int:
        """Smallest id not yet used (convenience for generators/examples)."""
        return max(self._transitions.keys(), default=-1) + 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def bbox(self) -> BoundingBox:
        """Bounding box of every transition endpoint (Table 3)."""
        points: List[Sequence[float]] = []
        for t in self:
            points.append(t.origin)
            points.append(t.destination)
        return BoundingBox.from_points(points)

    def total_points(self) -> int:
        """Total number of transition endpoints (2 per transition)."""
        return 2 * len(self)

    def __repr__(self) -> str:
        return (
            f"TransitionDataset(transitions={len(self)}, version={self.version})"
        )


def split_trajectory_into_transitions(
    points: Sequence[Sequence[float]],
    start_id: int = 0,
    timestamp: Optional[float] = None,
) -> List[Transition]:
    """Split an n-point trajectory into ``n - 1`` consecutive transitions.

    This mirrors the paper's data cleaning of Foursquare check-ins: "a
    trajectory with n points can be divided into n-1 transitions".

    Parameters
    ----------
    points:
        The trajectory's ordered check-in points.
    start_id:
        Id assigned to the first produced transition; subsequent transitions
        use consecutive ids.
    timestamp:
        Optional timestamp copied onto every produced transition.
    """
    if len(points) < 2:
        return []
    transitions = []
    for offset, (origin, destination) in enumerate(zip(points, points[1:])):
        transitions.append(
            Transition(start_id + offset, origin, destination, timestamp=timestamp)
        )
    return transitions
