"""Routes: multi-point trajectories of vehicles (Definition 1)."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import (
    Point,
    euclidean,
    point_to_points_distance,
    point_to_points_distance_sq,
)


class Route:
    """A route ``R = (r1, ..., rn)``, ``n >= 2`` (Definition 1 of the paper).

    Routes are immutable once created.  Each point is stored as a
    :class:`~repro.geometry.point.Point` so it can be treated as an ``(x, y)``
    tuple everywhere.

    Parameters
    ----------
    route_id:
        Unique identifier of the route inside its dataset.
    points:
        Ordered sequence of at least two ``(x, y)`` pairs.
    name:
        Optional human-readable name (e.g. a GTFS route short name).
    """

    __slots__ = ("route_id", "points", "name", "_bbox", "_length")

    def __init__(
        self,
        route_id: int,
        points: Sequence[Sequence[float]],
        name: Optional[str] = None,
    ):
        if len(points) < 2:
            raise ValueError(
                f"a route needs at least 2 points, got {len(points)} "
                f"(route_id={route_id})"
            )
        self.route_id = int(route_id)
        self.points: Tuple[Point, ...] = tuple(
            Point(float(p[0]), float(p[1])) for p in points
        )
        self.name = name
        self._bbox: Optional[BoundingBox] = None
        self._length: Optional[float] = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def bbox(self) -> BoundingBox:
        """Minimum bounding rectangle of the route's points."""
        if self._bbox is None:
            self._bbox = BoundingBox.from_points(self.points)
        return self._bbox

    @property
    def travel_distance(self) -> float:
        """``ψ(R)``: sum of consecutive point distances (Equation 6)."""
        if self._length is None:
            total = 0.0
            for a, b in zip(self.points, self.points[1:]):
                total += euclidean(a, b)
            self._length = total
        return self._length

    @property
    def straight_line_distance(self) -> float:
        """Euclidean distance between the first and last point, ``ψ(se)``."""
        return euclidean(self.points[0], self.points[-1])

    @property
    def detour_ratio(self) -> float:
        """``ψ(R) / ψ(se)``: travel distance over straight-line distance.

        The paper observes (Figure 6) that this ratio rarely exceeds 2 for
        real bus routes, which motivates the distance threshold ``τ`` in
        MaxRkNNT.  Returns ``inf`` for loop routes whose endpoints coincide.
        """
        straight = self.straight_line_distance
        if straight == 0.0:
            return float("inf")
        return self.travel_distance / straight

    @property
    def interval(self) -> float:
        """Average spacing ``I = ψ(R) / |R|`` between consecutive points."""
        return self.travel_distance / len(self.points)

    def distance_to_point(self, point: Sequence[float]) -> float:
        """Point-route distance ``dist(t, R)`` (Definition 3)."""
        return point_to_points_distance(point, self.points)

    def squared_distance_to_point(self, point: Sequence[float]) -> float:
        """Squared point-route distance, the library's comparison form."""
        return point_to_points_distance_sq(point, self.points)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return self.route_id == other.route_id and self.points == other.points

    def __hash__(self) -> int:
        return hash((self.route_id, self.points))

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Route(id={self.route_id}, points={len(self.points)}{label})"

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_vertices(
        cls,
        route_id: int,
        vertex_ids: Sequence[int],
        positions: Sequence[Sequence[float]],
        name: Optional[str] = None,
    ) -> "Route":
        """Build a route from graph vertex ids and a vertex position table."""
        points: List[Tuple[float, float]] = [
            (positions[v][0], positions[v][1]) for v in vertex_ids
        ]
        return cls(route_id, points, name=name)
