"""Vectorized geometry kernels with an automatic pure-Python fallback.

The filter-refine framework spends almost all of its time in four geometric
primitives, evaluated once per R-tree node / transition endpoint / candidate:

* ``MinDist``-to-query lower bounds (best-first traversal ordering),
* half-plane containment of a box (Definition 6, the filtering space),
* the per-route Voronoi domination test (Definition 8), and
* point–polyline (point-to-route) distances (verification thresholds).

This module provides *batch* versions of those primitives: one call evaluates
a whole block of boxes or points against a whole block of filter/query points,
so the per-tuple Python interpreter overhead is paid once per block instead of
once per tuple.  When numpy is available the batch kernels are numpy
expressions; otherwise they fall back to loops over the scalar predicates in
:mod:`repro.geometry.halfspace` — the results are identical either way, which
the differential tests in ``tests/test_engine_kernels.py`` assert.

Determinism.  Every kernel evaluates the *same* elementary-float expression
as its scalar counterpart (no transcendental functions, squared distances
instead of ``hypot``), so the numpy and Python backends agree bitwise and the
batched execution engine returns element-wise identical answers to the scalar
one.

Backend selection
-----------------
``numpy_available()`` reports whether numpy could be imported *and* was not
disabled via the ``RKNNT_PURE_PYTHON`` environment variable (set it to ``1``
to force the fallback path, e.g. in CI).  :func:`resolve_backend` maps the
user-facing ``"auto" | "numpy" | "python"`` choice onto a concrete backend.
"""

from __future__ import annotations

import os
from array import array as _stdlib_array
from bisect import bisect_left
from typing import Iterable, List, Sequence, Tuple

try:  # pragma: no cover - exercised via the CI matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Set ``RKNNT_PURE_PYTHON=1`` to force the pure-Python kernels even when
#: numpy is importable (used by the CI fallback job and the kernel tests).
_FORCED_PURE = os.environ.get("RKNNT_PURE_PYTHON", "").strip().lower() in (
    "1",
    "true",
    "yes",
)

BACKEND_AUTO = "auto"
BACKEND_NUMPY = "numpy"
BACKEND_PYTHON = "python"
BACKENDS = (BACKEND_AUTO, BACKEND_NUMPY, BACKEND_PYTHON)

Coords = Sequence[Sequence[float]]
BoxTuples = Sequence[Tuple[float, float, float, float]]


def numpy_available() -> bool:
    """True when the numpy backend can be used."""
    return _np is not None and not _FORCED_PURE


def resolve_backend(backend: str = BACKEND_AUTO) -> str:
    """Resolve ``"auto"`` to a concrete backend, validating the name.

    Raises
    ------
    ValueError
        If ``backend`` is unknown, or ``"numpy"`` is requested but numpy is
        unavailable (or disabled via ``RKNNT_PURE_PYTHON``).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == BACKEND_AUTO:
        return BACKEND_NUMPY if numpy_available() else BACKEND_PYTHON
    if backend == BACKEND_NUMPY and not numpy_available():
        raise ValueError(
            "numpy backend requested but numpy is not available "
            "(or RKNNT_PURE_PYTHON is set)"
        )
    return backend


# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------
def pack_points(points: Coords):
    """Pack ``(x, y)`` pairs into an ``(N, 2)`` float64 array (or list)."""
    if numpy_available():
        arr = _np.asarray(points, dtype=_np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(0, 2) if arr.size == 0 else arr.reshape(1, 2)
        return arr
    return [(float(p[0]), float(p[1])) for p in points]


def pack_boxes(boxes: BoxTuples):
    """Pack ``(min_x, min_y, max_x, max_y)`` tuples into an ``(N, 4)`` array."""
    if numpy_available():
        arr = _np.asarray(boxes, dtype=_np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(0, 4) if arr.size == 0 else arr.reshape(1, 4)
        return arr
    return [tuple(float(v) for v in b) for b in boxes]


FLOAT64_ITEMSIZE = 8


def float64_nbytes(rows: int, cols: int) -> int:
    """Bytes needed to store a ``(rows, cols)`` float64 array."""
    return rows * cols * FLOAT64_ITEMSIZE


def write_f64(buffer, offset: int, array) -> int:
    """Copy a float64 array into ``buffer`` at ``offset``; returns the end.

    The workhorse of the shared-memory arena publisher: ``buffer`` is a
    writable buffer (e.g. ``SharedMemory.buf``) and ``array`` any 2-D
    float64 array-like.  The transient view created for the copy is dropped
    before returning so the buffer keeps no exported pointers (closing a
    shared-memory segment with live exports raises ``BufferError``).
    """
    assert numpy_available(), "write_f64 requires the numpy backend"
    source = _np.ascontiguousarray(array, dtype=_np.float64)
    end = offset + source.nbytes
    if source.size:
        view = _np.ndarray(source.shape, dtype=_np.float64, buffer=buffer, offset=offset)
        view[...] = source
        del view
    return end


def view_f64(buffer, offset: int, rows: int, cols: int):
    """Read-only float64 view of ``buffer`` at ``offset``.

    The arena attach primitive: the returned array aliases the buffer
    (no copy) and is marked non-writable, so a worker can never scribble
    over a segment other processes are reading.
    """
    assert numpy_available(), "view_f64 requires the numpy backend"
    view = _np.ndarray((rows, cols), dtype=_np.float64, buffer=buffer, offset=offset)
    view.setflags(write=False)
    return view


# ----------------------------------------------------------------------
# Packed int32 id columns (columnar dataset core)
# ----------------------------------------------------------------------
#: ``array.array`` typecode with a 32-bit signed layout on every supported
#: platform ("i" is C int, 4 bytes everywhere CPython runs today).
INT32_TYPECODE = "i"
INT32_ITEMSIZE = 4


def pack_i32(values: Iterable[int]):
    """Pack integer ids into a 1-D int32 array (numpy) or ``array.array``.

    The id-column primitive of the columnar dataset core
    (:mod:`repro.engine.columnar`): both representations slice, iterate,
    compare and pickle identically, and both serialise to the same byte
    layout, so columnar pickles are byte-deterministic on either backend.
    """
    if numpy_available():
        return _np.asarray(list(values), dtype=_np.int32)
    return _stdlib_array(INT32_TYPECODE, values)


def int32_nbytes(count: int) -> int:
    """Bytes needed to store ``count`` int32 values."""
    return count * INT32_ITEMSIZE


def write_i32(buffer, offset: int, values) -> int:
    """Copy an int32 array into ``buffer`` at ``offset``; returns the end.

    The integer twin of :func:`write_f64`, used by the shared-memory arena
    to publish id and offset columns.  The transient view is dropped before
    returning so the buffer keeps no exported pointers.
    """
    assert numpy_available(), "write_i32 requires the numpy backend"
    source = _np.ascontiguousarray(values, dtype=_np.int32)
    end = offset + source.nbytes
    if source.size:
        view = _np.ndarray(source.shape, dtype=_np.int32, buffer=buffer, offset=offset)
        view[...] = source
        del view
    return end


def view_i32(buffer, offset: int, count: int):
    """Read-only 1-D int32 view of ``buffer`` at ``offset``.

    The integer twin of :func:`view_f64` (arena attach primitive)."""
    assert numpy_available(), "view_i32 requires the numpy backend"
    view = _np.ndarray((count,), dtype=_np.int32, buffer=buffer, offset=offset)
    view.setflags(write=False)
    return view


def id_list(ids) -> List[int]:
    """A packed id column as a list of plain Python ints.

    Set/dict consumers (the NList shortcut, crossover-set accounting) go
    through this so numpy scalars never leak into id sets — mixed
    ``np.int32``/``int`` members hash identically but copy slower.
    """
    if hasattr(ids, "tolist"):
        return ids.tolist()
    return list(ids)


def gather_row(flat, offsets, index: int):
    """Row ``index`` of an offset-table column: ``flat[offsets[i]:offsets[i+1]]``.

    The packed-block gather primitive: ``offsets`` has one more entry than
    there are rows, and each row is the half-open slice between consecutive
    offsets.  Works for numpy arrays and plain ``array.array``/list columns
    alike (slicing semantics coincide).
    """
    return flat[int(offsets[index]) : int(offsets[index + 1])]


def lex_search_point(points, x: float, y: float) -> int:
    """Row index of ``(x, y)`` in a lexicographically sorted point column.

    ``points`` is a :func:`pack_points` output sorted by ``(x, y)``; returns
    ``-1`` when the point is absent.  The numpy path narrows by binary
    search on the x column and then on the y run; the fallback bisects the
    plain tuple list — both are exact float comparisons, so membership
    matches the dict-based :class:`~repro.index.inverted.PointList` bitwise.

    Dispatch is on the *column's* type, not on :func:`numpy_available`: a
    columnar pickle built with numpy arrays must still answer correctly in
    a process that forces the pure-Python kernels (``bisect`` over ndarray
    rows would raise on the elementwise comparison).
    """
    if _np is not None and hasattr(points, "ndim"):
        xs = points[:, 0]
        lo = int(_np.searchsorted(xs, x, side="left"))
        hi = int(_np.searchsorted(xs, x, side="right"))
        if lo == hi:
            return -1
        ys = points[lo:hi, 1]
        j = int(_np.searchsorted(ys, y, side="left"))
        if j < hi - lo and ys[j] == y:
            return lo + j
        return -1
    key = (x, y)
    row = bisect_left(points, key)
    if row < len(points) and tuple(points[row]) == key:
        return row
    return -1


# ----------------------------------------------------------------------
# MinDist lower bounds
# ----------------------------------------------------------------------
def points_min_dist_sq_to_query(points, query) -> List[float]:
    """Squared distance from each point to its nearest query point.

    ``points`` and ``query`` are outputs of :func:`pack_points`.  Returns a
    sequence of length ``len(points)``.
    """
    if numpy_available():
        pts = _np.asarray(points, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(pts) == 0:
            return _np.zeros(0)
        dx = pts[:, 0][:, None] - qry[:, 0][None, :]
        dy = pts[:, 1][:, None] - qry[:, 1][None, :]
        return (dx * dx + dy * dy).min(axis=1)
    out = []
    for px, py in points:
        best = float("inf")
        for qx, qy in query:
            dx = px - qx
            dy = py - qy
            d = dx * dx + dy * dy
            if d < best:
                best = d
        out.append(best)
    return out


def boxes_min_dist_sq_to_query(boxes, query) -> List[float]:
    """Squared MinDist from each box to the query (minimum over query points).

    ``boxes`` is the output of :func:`pack_boxes`, ``query`` of
    :func:`pack_points`.
    """
    if numpy_available():
        bxs = _np.asarray(boxes, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(bxs) == 0:
            return _np.zeros(0)
        qx = qry[:, 0][None, :]
        qy = qry[:, 1][None, :]
        dx = _np.maximum(bxs[:, 0][:, None] - qx, 0.0) + _np.maximum(
            qx - bxs[:, 2][:, None], 0.0
        )
        dy = _np.maximum(bxs[:, 1][:, None] - qy, 0.0) + _np.maximum(
            qy - bxs[:, 3][:, None], 0.0
        )
        return (dx * dx + dy * dy).min(axis=1)
    out = []
    for min_x, min_y, max_x, max_y in boxes:
        best = float("inf")
        for qx, qy in query:
            dx = min_x - qx if qx < min_x else (qx - max_x if qx > max_x else 0.0)
            dy = min_y - qy if qy < min_y else (qy - max_y if qy > max_y else 0.0)
            d = dx * dx + dy * dy
            if d < best:
                best = d
        out.append(best)
    return out


def points_dist_sq_to_point(points, point) -> List[float]:
    """Squared distance from each of ``points`` to one ``point``.

    The block version of :func:`repro.geometry.point.squared_euclidean`,
    used by the block-expansion kNN traversals to score every entry of an
    R-tree leaf in one call.  ``points`` is the output of
    :func:`pack_points`.
    """
    px, py = float(point[0]), float(point[1])
    if numpy_available():
        pts = _np.asarray(points, dtype=_np.float64)
        if len(pts) == 0:
            return _np.zeros(0)
        dx = pts[:, 0] - px
        dy = pts[:, 1] - py
        return dx * dx + dy * dy
    out = []
    for x, y in points:
        dx = x - px
        dy = y - py
        out.append(dx * dx + dy * dy)
    return out


def boxes_min_max_dist_sq_to_point(boxes, point):
    """``(MinDist², MaxDist²)`` of every box to one point, in one call.

    The block version of :meth:`repro.geometry.bbox.BoundingBox.min_dist_sq`
    and :meth:`~repro.geometry.bbox.BoundingBox.max_dist_sq`: the
    block-expansion kNN traversals bound all children of an R-tree node per
    kernel call instead of per child.  Both bounds evaluate the same
    elementary-float expressions as the scalar methods (the two MinDist
    clamp terms cannot both be non-zero, so their sum equals the selected
    branch bitwise), keeping every backend's traversal decisions identical.
    """
    px, py = float(point[0]), float(point[1])
    if numpy_available():
        bxs = _np.asarray(boxes, dtype=_np.float64)
        if len(bxs) == 0:
            return _np.zeros(0), _np.zeros(0)
        dx = _np.maximum(bxs[:, 0] - px, 0.0) + _np.maximum(px - bxs[:, 2], 0.0)
        dy = _np.maximum(bxs[:, 1] - py, 0.0) + _np.maximum(py - bxs[:, 3], 0.0)
        fx = _np.maximum(_np.abs(px - bxs[:, 0]), _np.abs(px - bxs[:, 2]))
        fy = _np.maximum(_np.abs(py - bxs[:, 1]), _np.abs(py - bxs[:, 3]))
        return dx * dx + dy * dy, fx * fx + fy * fy
    mins = []
    maxs = []
    for min_x, min_y, max_x, max_y in boxes:
        dx = min_x - px if px < min_x else (px - max_x if px > max_x else 0.0)
        dy = min_y - py if py < min_y else (py - max_y if py > max_y else 0.0)
        mins.append(dx * dx + dy * dy)
        fx = max(abs(px - min_x), abs(px - max_x))
        fy = max(abs(py - min_y), abs(py - max_y))
        maxs.append(fx * fx + fy * fy)
    return mins, maxs


# ----------------------------------------------------------------------
# Half-plane / filtering-space containment
# ----------------------------------------------------------------------
def box_halfplane_tensor(box, filter_points, query):
    """``(F, Q)`` truth table: box ⊂ H_{r:q} for each filter/query pair.

    ``box`` is a ``(min_x, min_y, max_x, max_y)`` tuple; ``filter_points``
    and ``query`` are outputs of :func:`pack_points`.  Entry ``[i, j]`` is
    True when the whole box lies strictly inside the half-plane of points
    closer to filter point ``i`` than to query point ``j`` — the same test
    as :meth:`repro.geometry.halfspace.HalfPlane.contains_bbox`.
    """
    min_x, min_y, max_x, max_y = box
    if numpy_available():
        flt = _np.asarray(filter_points, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(flt) == 0:
            return _np.zeros((0, len(qry)), dtype=bool)
        rx = flt[:, 0][:, None]
        ry = flt[:, 1][:, None]
        qx = qry[:, 0][None, :]
        qy = qry[:, 1][None, :]
        a = 2.0 * (rx - qx)
        b = 2.0 * (ry - qy)
        c = (rx * rx + ry * ry) - (qx * qx + qy * qy)
        # The corner of the box minimising a*x + b*y decides containment.
        x = _np.where(a >= 0, min_x, max_x)
        y = _np.where(b >= 0, min_y, max_y)
        return a * x + b * y > c
    table = []
    for rx, ry in filter_points:
        row = []
        for qx, qy in query:
            a = 2.0 * (rx - qx)
            b = 2.0 * (ry - qy)
            c = (rx * rx + ry * ry) - (qx * qx + qy * qy)
            x = min_x if a >= 0 else max_x
            y = min_y if b >= 0 else max_y
            row.append(a * x + b * y > c)
        table.append(row)
    return table


def boxes_halfplane_tensor(boxes, filter_points, query):
    """``(B, F, Q)`` truth table: box ⊂ H_{r:q} for a whole block of boxes.

    The block version of :func:`box_halfplane_tensor`, used to test all
    children of an R-tree node (or all entries of a leaf, as degenerate
    boxes) in one call.  Evaluates the same expression per element, so each
    ``[b]`` slice equals ``box_halfplane_tensor(boxes[b], ...)`` bitwise.
    """
    if numpy_available():
        bxs = _np.asarray(boxes, dtype=_np.float64)
        flt = _np.asarray(filter_points, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(bxs) == 0 or len(flt) == 0:
            return _np.zeros((len(bxs), len(flt), len(qry)), dtype=bool)
        rx = flt[:, 0][None, :, None]
        ry = flt[:, 1][None, :, None]
        qx = qry[:, 0][None, None, :]
        qy = qry[:, 1][None, None, :]
        a = 2.0 * (rx - qx)
        b = 2.0 * (ry - qy)
        c = (rx * rx + ry * ry) - (qx * qx + qy * qy)
        x = _np.where(a >= 0, bxs[:, 0][:, None, None], bxs[:, 2][:, None, None])
        y = _np.where(b >= 0, bxs[:, 1][:, None, None], bxs[:, 3][:, None, None])
        return a * x + b * y > c
    return [box_halfplane_tensor(box, filter_points, query) for box in boxes]


def dominators_of_box(box, filter_points, query):
    """Per-filter-point mask: box ⊂ H_{r:Q} (inside *every* half-plane).

    Returns ``(all_q_mask, tensor)`` where ``all_q_mask[i]`` collapses row
    ``i`` of the ``(F, Q)`` tensor with AND (the basic filtering-space test of
    Definition 6) and ``tensor`` is the full table for the Voronoi step.
    """
    tensor = box_halfplane_tensor(box, filter_points, query)
    if numpy_available():
        return tensor.all(axis=1), tensor
    return [all(row) for row in tensor], tensor


def route_dominates_box(tensor, rows) -> bool:
    """Voronoi test (Definition 8) from a precomputed half-plane tensor.

    ``rows`` indexes the filter points belonging to one route.  The route
    dominates the box when, for every query point, at least one of its filter
    points contains the box in its half-plane.
    """
    if numpy_available():
        sub = tensor[rows]
        return bool(sub.any(axis=0).all())
    if not rows:
        return False
    columns = len(tensor[rows[0]])
    for j in range(columns):
        if not any(tensor[i][j] for i in rows):
            return False
    return True


def routes_dominate_boxes(tensor, rows):
    """Block Voronoi test: one route against a whole ``(B, F, Q)`` tensor.

    Returns a ``(B,)`` verdict mask where entry ``b`` equals
    ``route_dominates_box(tensor[b], rows)``.  The executor calls this once
    per eligible route over the boxes its step-1 accounting left undecided,
    replacing a per-(box, route) kernel call with a per-route one.
    """
    if numpy_available():
        return _np.asarray(tensor)[:, rows, :].any(axis=1).all(axis=1)
    return [route_dominates_box(table, rows) for table in tensor]


def points_in_filtering_space(points, filter_point, query):
    """Mask: each point strictly closer to ``filter_point`` than to every q.

    The per-point version of the filtering-space test, used to prune whole
    blocks of transition endpoints at once.  Matches
    :func:`repro.geometry.halfspace.filtering_space_contains_point`.
    """
    fx, fy = float(filter_point[0]), float(filter_point[1])
    if numpy_available():
        pts = _np.asarray(points, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(pts) == 0:
            return _np.zeros(0, dtype=bool)
        dxf = pts[:, 0] - fx
        dyf = pts[:, 1] - fy
        d_filter = dxf * dxf + dyf * dyf
        dxq = pts[:, 0][:, None] - qry[:, 0][None, :]
        dyq = pts[:, 1][:, None] - qry[:, 1][None, :]
        d_query = dxq * dxq + dyq * dyq
        return (d_filter[:, None] < d_query).all(axis=1)
    out = []
    for px, py in points:
        dxf = px - fx
        dyf = py - fy
        d_filter = dxf * dxf + dyf * dyf
        ok = True
        for qx, qy in query:
            dxq = px - qx
            dyq = py - qy
            if d_filter >= dxq * dxq + dyq * dyq:
                ok = False
                break
        out.append(ok)
    return out


def boxes_margin_slack(boxes, filter_points, query):
    """``(B, F)`` δ-margin slack matrix for the query-locality engine.

    Entry ``[b, f]`` is

        MinDist(box b, query)  −  MaxDist(box b, filter point f)

    — the largest δ below which the margin predicate prunes box ``b`` with
    filter point ``f`` (distances, not squared distances — the margin is
    additive, so this is the one place the engine takes square roots;
    ``sqrt`` is correctly rounded by IEEE 754, keeping the backends bitwise
    identical).  This is the block version of
    :func:`repro.geometry.halfspace.margin_slack_bbox`: ``slack > delta``
    proves box ``b`` lies inside the filtering space ``H_{f:Q′}`` of *every*
    query ``Q′`` within directed Hausdorff distance ``delta`` of ``query``.
    """
    if numpy_available():
        bxs = _np.asarray(boxes, dtype=_np.float64)
        flt = _np.asarray(filter_points, dtype=_np.float64)
        qry = _np.asarray(query, dtype=_np.float64)
        if len(bxs) == 0 or len(flt) == 0:
            return _np.zeros((len(bxs), len(flt)), dtype=_np.float64)
        rx = flt[:, 0][None, :]
        ry = flt[:, 1][None, :]
        fx = _np.maximum(
            _np.abs(rx - bxs[:, 0][:, None]), _np.abs(rx - bxs[:, 2][:, None])
        )
        fy = _np.maximum(
            _np.abs(ry - bxs[:, 1][:, None]), _np.abs(ry - bxs[:, 3][:, None])
        )
        max_dist = _np.sqrt(fx * fx + fy * fy)
        qx = qry[:, 0][None, :]
        qy = qry[:, 1][None, :]
        dx = _np.maximum(bxs[:, 0][:, None] - qx, 0.0) + _np.maximum(
            qx - bxs[:, 2][:, None], 0.0
        )
        dy = _np.maximum(bxs[:, 1][:, None] - qy, 0.0) + _np.maximum(
            qy - bxs[:, 3][:, None], 0.0
        )
        min_dist = _np.sqrt((dx * dx + dy * dy).min(axis=1))
        return min_dist[:, None] - max_dist
    from repro.geometry.bbox import BoundingBox
    from repro.geometry.halfspace import margin_slack_bbox

    table = []
    for min_x, min_y, max_x, max_y in boxes:
        box = BoundingBox(min_x, min_y, max_x, max_y)
        table.append(
            [margin_slack_bbox(box, r, query) for r in filter_points]
        )
    return table


# ----------------------------------------------------------------------
# Point–polyline (point-to-route) distances for verification
# ----------------------------------------------------------------------
def route_distance_matrix(points, route_points, route_offsets):
    """``(P, R)`` squared point-to-route distances.

    ``route_points`` is the concatenation of every route's points (grouped by
    route) and ``route_offsets`` the start index of each route's group —
    together they describe the flattened polyline soup built once per dataset
    by the execution context.  Entry ``[i, j]`` is the squared distance from
    point ``i`` to route ``j`` (the paper's Definition 3, minimum over the
    route's points).

    Only available on the numpy backend; the Python fallback engine verifies
    through the RR-tree instead (see ``engine/executor.py``).
    """
    assert numpy_available(), "route_distance_matrix requires the numpy backend"
    pts = _np.asarray(points, dtype=_np.float64)
    rpts = _np.asarray(route_points, dtype=_np.float64)
    offsets = _np.asarray(route_offsets, dtype=_np.intp)
    if len(pts) == 0 or len(offsets) == 0:
        return _np.zeros((len(pts), len(offsets)))
    dx = pts[:, 0][:, None] - rpts[:, 0][None, :]
    dy = pts[:, 1][:, None] - rpts[:, 1][None, :]
    d2 = dx * dx + dy * dy
    return _np.minimum.reduceat(d2, offsets, axis=1)


def count_closer_routes(
    points,
    thresholds_sq,
    route_points,
    route_offsets,
    excluded_columns=None,
    chunk_size: int = 512,
):
    """Distinct routes strictly closer than each point's threshold.

    The vectorized verification primitive: for each candidate point ``i``,
    count the routes whose squared point-to-route distance is strictly below
    ``thresholds_sq[i]``.  ``excluded_columns`` masks routes that must not
    count (e.g. the query route itself).  Work is chunked so the ``(P, N)``
    distance matrix never exceeds ``chunk_size`` rows at a time.
    """
    assert numpy_available(), "count_closer_routes requires the numpy backend"
    pts = _np.asarray(points, dtype=_np.float64)
    thr = _np.asarray(thresholds_sq, dtype=_np.float64)
    counts = _np.zeros(len(pts), dtype=_np.intp)
    if len(pts) == 0 or len(route_offsets) == 0:
        return counts
    for start in range(0, len(pts), chunk_size):
        stop = min(start + chunk_size, len(pts))
        block = route_distance_matrix(
            pts[start:stop], route_points, route_offsets
        )
        closer = block < thr[start:stop][:, None]
        if excluded_columns is not None and len(excluded_columns):
            closer[:, excluded_columns] = False
        counts[start:stop] = closer.sum(axis=1)
    return counts
