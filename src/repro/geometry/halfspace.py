"""Perpendicular-bisector half-plane pruning (Section 4.1.1 of the paper).

Given a query point ``q`` and a filtering route point ``r``, the perpendicular
bisector ``⊥(q, r)`` splits the plane into two half-planes: ``H_{r:q}`` (the
set of points strictly closer to ``r`` than to ``q``) and ``H_{q:r}``.  A
transition point inside ``H_{r:q}`` can never take ``q`` as its nearest
neighbour relative to ``r``.

The *filtering space* of a route point ``r`` with respect to a multi-point
query ``Q`` is the intersection ``H_{r:Q} = ∩_{q∈Q} H_{r:q}`` (Definition 6).
A transition point (or a whole R-tree node) located inside ``H_{r:Q}`` is
closer to ``r`` — and therefore to ``r``'s route — than to *every* point of
the query, so the query cannot be its nearest route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import squared_euclidean


@dataclass(frozen=True)
class HalfPlane:
    """The open half-plane ``{p : a*p.x + b*p.y > c}``.

    Constructed so that it contains the points strictly closer to a
    *filtering* point than to a *query* point (see
    :func:`bisector_halfplane`).
    """

    a: float
    b: float
    c: float

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies strictly inside the half-plane."""
        return self.a * point[0] + self.b * point[1] > self.c

    def contains_bbox(self, box: BoundingBox) -> bool:
        """True when the whole box lies strictly inside the half-plane.

        Because the half-plane is convex it suffices to check the corner of
        the box that minimises ``a*x + b*y``.
        """
        x = box.min_x if self.a >= 0 else box.max_x
        y = box.min_y if self.b >= 0 else box.max_y
        return self.a * x + self.b * y > self.c


def bisector_halfplane(
    query_point: Sequence[float], filter_point: Sequence[float]
) -> HalfPlane:
    """Half-plane ``H_{r:q}`` of points strictly closer to ``filter_point``.

    ``dist(p, r) < dist(p, q)`` expands to the linear inequality
    ``2(r-q)·p > |r|² - |q|²`` which is what the returned
    :class:`HalfPlane` encodes.

    Parameters
    ----------
    query_point:
        The query point ``q``.
    filter_point:
        The filtering route point ``r``.
    """
    qx, qy = query_point[0], query_point[1]
    rx, ry = filter_point[0], filter_point[1]
    a = 2.0 * (rx - qx)
    b = 2.0 * (ry - qy)
    c = (rx * rx + ry * ry) - (qx * qx + qy * qy)
    return HalfPlane(a, b, c)


def point_closer_to(
    point: Sequence[float],
    filter_point: Sequence[float],
    query_point: Sequence[float],
) -> bool:
    """True when ``point`` is strictly closer to ``filter_point`` than to ``query_point``."""
    return squared_euclidean(point, filter_point) < squared_euclidean(
        point, query_point
    )


def bbox_inside_halfplane(
    box: BoundingBox,
    filter_point: Sequence[float],
    query_point: Sequence[float],
) -> bool:
    """True when every point of ``box`` is strictly closer to ``filter_point``.

    Equivalent to ``box ⊂ H_{r:q}``; used to prune whole R-tree nodes.
    """
    return bisector_halfplane(query_point, filter_point).contains_bbox(box)


def filtering_space_contains_point(
    point: Sequence[float],
    filter_point: Sequence[float],
    query_points: Iterable[Sequence[float]],
) -> bool:
    """True when ``point`` lies inside the filtering space ``H_{r:Q}``.

    That is, ``point`` is strictly closer to ``filter_point`` than to *every*
    query point (Definition 6).
    """
    d_filter = squared_euclidean(point, filter_point)
    for q in query_points:
        if d_filter >= squared_euclidean(point, q):
            return False
    return True


def filtering_space_contains_bbox(
    box: BoundingBox,
    filter_point: Sequence[float],
    query_points: Iterable[Sequence[float]],
) -> bool:
    """True when the whole ``box`` lies inside the filtering space ``H_{r:Q}``.

    Every point of ``box`` must be strictly closer to ``filter_point`` than to
    every query point; since each ``H_{r:q}`` is convex, checking the
    worst-case corner per half-plane is exact.
    """
    for q in query_points:
        if not bisector_halfplane(q, filter_point).contains_bbox(box):
            return False
    return True


# ----------------------------------------------------------------------
# Translated half-spaces (the query-locality engine's reuse bound)
# ----------------------------------------------------------------------
def margin_dominates_bbox(
    box: BoundingBox,
    filter_point: Sequence[float],
    query_points: Sequence[Sequence[float]],
    delta: float,
) -> bool:
    """δ-margin filtering-space test: ``box ⊂ H_{r:Q′}`` for every query
    ``Q′`` within directed Hausdorff distance ``delta`` of ``Q``.

    The exact condition ``dist(p, r) < dist(p, q′)`` cannot be tested
    without knowing ``q′``; the triangle inequality gives the sufficient
    (conservative) bound

        MaxDist(box, r) + δ  <  min over q ∈ Q of MinDist(box, q)

    since ``dist(p, q′) ≥ dist(p, q) − |q q′| ≥ MinDist(box, q) − δ`` for
    the pilot point ``q`` nearest ``q′``.  Note the *linearly shifted*
    bisector half-plane is **not** a sound translation — the true margin
    region ``{p : dist(p, q) − dist(p, r) > δ}`` is bounded by a hyperbola
    strictly inside the shifted half-plane — which is why this predicate
    compares square roots instead of shifting ``c``.  Exact for degenerate
    (point) boxes; conservative otherwise, which is the safe direction.
    """
    return delta < margin_slack_bbox(box, filter_point, query_points)


def margin_slack_bbox(
    box: BoundingBox,
    filter_point: Sequence[float],
    query_points: Sequence[Sequence[float]],
) -> float:
    """The largest δ below which :func:`margin_dominates_bbox` holds.

        slack  =  (min over q ∈ Q of MinDist(box, q))  −  MaxDist(box, r)

    so ``margin_dominates_bbox(box, r, Q, δ) ⇔ δ < slack``.  The locality
    engine stores each shared candidate's slack once (computed during the
    pilot's margin traversal) and lets every cluster member prune it by
    comparing its *own* — usually much smaller — Hausdorff distance against
    it, instead of re-running an exact filter test per member.  Negative
    slack means not even the exact (δ = 0) conservative bound prunes the
    box.  Both backends evaluate the identical IEEE expression, so the
    shared/unshared differential discipline extends to slack comparisons.
    """
    rx, ry = float(filter_point[0]), float(filter_point[1])
    fx = max(abs(rx - box.min_x), abs(rx - box.max_x))
    fy = max(abs(ry - box.min_y), abs(ry - box.max_y))
    max_dist = math.sqrt(fx * fx + fy * fy)
    best = float("inf")
    for q in query_points:
        qx, qy = float(q[0]), float(q[1])
        dx = (
            box.min_x - qx
            if qx < box.min_x
            else (qx - box.max_x if qx > box.max_x else 0.0)
        )
        dy = (
            box.min_y - qy
            if qy < box.min_y
            else (qy - box.max_y if qy > box.max_y else 0.0)
        )
        d = dx * dx + dy * dy
        if d < best:
            best = d
    return math.sqrt(best) - max_dist


def margin_dominates_point(
    point: Sequence[float],
    filter_point: Sequence[float],
    query_points: Sequence[Sequence[float]],
    delta: float,
) -> bool:
    """Point version of :func:`margin_dominates_bbox`.

    True when ``point`` is provably closer to ``filter_point`` than to every
    point of *any* query within directed Hausdorff distance ``delta`` of
    ``query_points`` — i.e. ``dist(p, r) + δ < min_q dist(p, q)``.  The
    property test in ``tests/test_filtering_properties.py`` asserts the
    soundness of this bound against the exact predicate at the translated
    query.
    """
    return margin_dominates_bbox(
        BoundingBox(point[0], point[1], point[0], point[1]),
        filter_point,
        query_points,
        delta,
    )
