"""Planar points and distance helpers.

Points are represented as plain ``(x, y)`` tuples throughout the hot paths of
the library; the :class:`Point` named-tuple provides a readable wrapper for
public API surfaces while remaining a tuple (so both representations are
interchangeable).
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence, Tuple

Coordinate = Tuple[float, float]


class Point(NamedTuple):
    """A planar point.

    ``Point`` is a :class:`typing.NamedTuple`, therefore it *is* a tuple and
    can be used anywhere a raw ``(x, y)`` pair is accepted.

    Attributes
    ----------
    x:
        Horizontal coordinate (longitude in the paper's datasets).
    y:
        Vertical coordinate (latitude in the paper's datasets).
    """

    x: float
    y: float

    def distance_to(self, other: Sequence[float]) -> float:
        """Euclidean distance from this point to ``other``."""
        return euclidean(self, other)

    def squared_distance_to(self, other: Sequence[float]) -> float:
        """Squared Euclidean distance from this point to ``other``."""
        return squared_euclidean(self, other)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two planar points.

    Parameters
    ----------
    a, b:
        Any length-2 sequences of floats.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.hypot(dx, dy)


def squared_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the sqrt when only comparing)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def point_to_points_distance(
    point: Sequence[float], points: Iterable[Sequence[float]]
) -> float:
    """Minimum Euclidean distance from ``point`` to a collection of points.

    This is the paper's point-route distance (Definition 3):
    ``dist(t, R) = min_{r in R} distance(t, r)``.

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    best = math.inf
    px, py = point[0], point[1]
    for other in points:
        dx = px - other[0]
        dy = py - other[1]
        d = dx * dx + dy * dy
        if d < best:
            best = d
    if best is math.inf:
        raise ValueError("point_to_points_distance() requires at least one point")
    return math.sqrt(best)


def point_to_points_distance_sq(
    point: Sequence[float], points: Iterable[Sequence[float]]
) -> float:
    """Squared minimum distance from ``point`` to a collection of points.

    The comparison form of the point-route distance: strictly-closer
    decisions throughout the library (engine verification, brute-force
    oracle) compare these squared values, which are exact elementary-float
    expressions, so every code path makes identical decisions.

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    best = math.inf
    px, py = point[0], point[1]
    for other in points:
        dx = px - other[0]
        dy = py - other[1]
        d = dx * dx + dy * dy
        if d < best:
            best = d
    if best is math.inf:
        raise ValueError(
            "point_to_points_distance_sq() requires at least one point"
        )
    return best


def midpoint(a: Sequence[float], b: Sequence[float]) -> Point:
    """Midpoint of the segment joining ``a`` and ``b``."""
    return Point((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def path_length(points: Sequence[Sequence[float]]) -> float:
    """Total polyline length of a sequence of points.

    Matches the paper's travel distance ``ψ(R)`` (Equation 6) when applied to
    a route's stop sequence.
    """
    total = 0.0
    for first, second in zip(points, points[1:]):
        total += euclidean(first, second)
    return total
