"""Voronoi-based filtering predicate (Section 5.1 of the paper).

The basic half-space filter uses a *single* route point ``r``: a node is
pruned only when it is closer to ``r`` than to **every** query point.  When
the query has many points this filtering space shrinks quickly.  The paper's
Voronoi optimisation instead uses *all* the filter points of one route ``R``:
the enlarged filtering space ``H_{R:Q}`` is the union of the Voronoi cells of
``R``'s points in the Voronoi diagram of ``R ∪ Q`` (Definition 8).

A node lies inside ``H_{R:Q}`` exactly when it intersects no Voronoi cell of a
query point.  We use the following conservative-but-exact-on-bisectors test:

    the node is pruned by route ``R`` iff for **every** query point ``q``
    there exists a filter point ``r ∈ R`` such that the node lies entirely
    inside ``H_{r:q}``.

If the condition holds, every point ``p`` of the node satisfies
``dist(p, r_q) < dist(p, q)`` for each ``q`` (with ``r_q`` the witness filter
point), hence ``dist(p, R) < dist(p, Q)`` and the pruning is safe.  The test
is strictly weaker than requiring a *single* witness ``r`` for all query
points (the plain half-space filter), so it prunes strictly more nodes, which
is precisely the benefit the paper reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import bisector_halfplane, point_closer_to


def voronoi_prunes_point(
    point: Sequence[float],
    route_points: Sequence[Sequence[float]],
    query_points: Sequence[Sequence[float]],
) -> bool:
    """True when ``point`` is strictly closer to the route than to the query.

    ``dist(point, route_points) < dist(point, q)`` must hold for every query
    point ``q``; equivalently the point lies in the Voronoi filtering space
    ``H_{R:Q}``.
    """
    if not route_points:
        return False
    for q in query_points:
        if not any(point_closer_to(point, r, q) for r in route_points):
            return False
    return True


def voronoi_prunes_bbox(
    box: BoundingBox,
    route_points: Sequence[Sequence[float]],
    query_points: Sequence[Sequence[float]],
) -> bool:
    """True when the whole node ``box`` can be pruned by route ``route_points``.

    For every query point ``q`` some filter point of the route must dominate
    the entire box (the box lies inside ``H_{r:q}``).  Safe (never prunes a
    node containing a true RkNNT result) and strictly more powerful than the
    single-point filtering space test.
    """
    if not route_points:
        return False
    for q in query_points:
        dominated = False
        for r in route_points:
            if bisector_halfplane(q, r).contains_bbox(box):
                dominated = True
                break
        if not dominated:
            return False
    return True
