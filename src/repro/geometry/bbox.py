"""Axis-aligned minimum bounding rectangles (MBRs).

R-tree nodes, route segments and transition endpoints are all summarised by
:class:`BoundingBox` instances.  The class offers the distance predicates used
by the best-first traversals (``min_dist``) and the containment tests used by
the half-plane pruning machinery (corner enumeration).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple


class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    The box is closed (its boundary belongs to the box).  Degenerate boxes
    (single points) are valid and common — every leaf entry of the R-tree is a
    degenerate box.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x > max_x or min_y > max_y:
            raise ValueError(
                f"invalid bounding box: ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "BoundingBox":
        """Degenerate box covering a single point."""
        return cls(point[0], point[1], point[0], point[1])

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "BoundingBox":
        """Smallest box covering every point in ``points``.

        Raises
        ------
        ValueError
            If ``points`` is empty.
        """
        min_x = math.inf
        min_y = math.inf
        max_x = -math.inf
        max_y = -math.inf
        for p in points:
            x, y = p[0], p[1]
            if x < min_x:
                min_x = x
            if x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            if y > max_y:
                max_y = y
        if min_x is math.inf:
            raise ValueError("BoundingBox.from_points() requires at least one point")
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def union_all(cls, boxes: Iterable["BoundingBox"]) -> "BoundingBox":
        """Smallest box covering every box in ``boxes``."""
        min_x = math.inf
        min_y = math.inf
        max_x = -math.inf
        max_y = -math.inf
        for b in boxes:
            if b.min_x < min_x:
                min_x = b.min_x
            if b.min_y < min_y:
                min_y = b.min_y
            if b.max_x > max_x:
                max_x = b.max_x
            if b.max_y > max_y:
                max_y = b.max_y
        if min_x is math.inf:
            raise ValueError("BoundingBox.union_all() requires at least one box")
        return cls(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def corners(self) -> Iterator[Tuple[float, float]]:
        """Yield the four corners of the box (degenerate corners repeat)."""
        yield (self.min_x, self.min_y)
        yield (self.min_x, self.max_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)

    def is_point(self) -> bool:
        """True when the box degenerates to a single point."""
        return self.min_x == self.max_x and self.min_y == self.max_y

    # ------------------------------------------------------------------
    # Set operations and predicates
    # ------------------------------------------------------------------
    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed to cover ``other`` (R-tree insertion metric)."""
        return self.union(other).area - self.area

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside (or on the boundary of) the box."""
        return (
            self.min_x <= point[0] <= self.max_x
            and self.min_y <= point[1] <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_dist(self, point: Sequence[float]) -> float:
        """Minimum Euclidean distance from ``point`` to this box.

        Zero when the point lies inside the box.  This is the classical
        ``MinDist`` lower bound used for best-first R-tree traversal.
        """
        dx = 0.0
        dy = 0.0
        x, y = point[0], point[1]
        if x < self.min_x:
            dx = self.min_x - x
        elif x > self.max_x:
            dx = x - self.max_x
        if y < self.min_y:
            dy = self.min_y - y
        elif y > self.max_y:
            dy = y - self.max_y
        return math.hypot(dx, dy)

    def min_dist_sq(self, point: Sequence[float]) -> float:
        """Squared ``MinDist``; avoids the sqrt when only comparing.

        Squared distances are exact elementary-float expressions, so the
        scalar and vectorized execution backends compute bitwise-identical
        values and make identical pruning/verification decisions.
        """
        dx = 0.0
        dy = 0.0
        x, y = point[0], point[1]
        if x < self.min_x:
            dx = self.min_x - x
        elif x > self.max_x:
            dx = x - self.max_x
        if y < self.min_y:
            dy = self.min_y - y
        elif y > self.max_y:
            dy = y - self.max_y
        return dx * dx + dy * dy

    def max_dist(self, point: Sequence[float]) -> float:
        """Maximum Euclidean distance from ``point`` to this box."""
        x, y = point[0], point[1]
        dx = max(abs(x - self.min_x), abs(x - self.max_x))
        dy = max(abs(y - self.min_y), abs(y - self.max_y))
        return math.hypot(dx, dy)

    def max_dist_sq(self, point: Sequence[float]) -> float:
        """Squared maximum distance from ``point`` to this box."""
        x, y = point[0], point[1]
        dx = max(abs(x - self.min_x), abs(x - self.max_x))
        dy = max(abs(y - self.min_y), abs(y - self.max_y))
        return dx * dx + dy * dy

    def min_dist_to_query(self, query_points: Iterable[Sequence[float]]) -> float:
        """``MinDist(Q, c)`` of Equation 3: minimum over all query points."""
        best = math.inf
        for q in query_points:
            d = self.min_dist(q)
            if d < best:
                best = d
        return best

    def min_dist_sq_to_query(
        self, query_points: Iterable[Sequence[float]]
    ) -> float:
        """Squared ``MinDist(Q, c)``: minimum squared distance over the query."""
        best = math.inf
        for q in query_points:
            d = self.min_dist_sq(q)
            if d < best:
                best = d
        return best

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return (
            f"BoundingBox({self.min_x!r}, {self.min_y!r}, "
            f"{self.max_x!r}, {self.max_y!r})"
        )
