"""Geometric primitives used throughout the RkNNT library.

The paper's pruning machinery is built on three geometric ideas:

* Euclidean distances between points (:mod:`repro.geometry.point`),
* minimum bounding rectangles for R-tree nodes (:mod:`repro.geometry.bbox`),
* half-plane tests derived from perpendicular bisectors
  (:mod:`repro.geometry.halfspace`) and their per-route generalisation, the
  Voronoi filtering predicate (:mod:`repro.geometry.voronoi`).

All primitives are implemented from scratch (no shapely dependency) and are
deliberately small, allocation-light classes so that the filter-refine
algorithms remain fast in pure Python.
"""

from repro.geometry.point import (
    Point,
    euclidean,
    squared_euclidean,
    point_to_points_distance,
    midpoint,
)
from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import (
    HalfPlane,
    bisector_halfplane,
    point_closer_to,
    bbox_inside_halfplane,
    filtering_space_contains_point,
    filtering_space_contains_bbox,
)
from repro.geometry.voronoi import (
    voronoi_prunes_point,
    voronoi_prunes_bbox,
)

__all__ = [
    "Point",
    "euclidean",
    "squared_euclidean",
    "point_to_points_distance",
    "midpoint",
    "BoundingBox",
    "HalfPlane",
    "bisector_halfplane",
    "point_closer_to",
    "bbox_inside_halfplane",
    "filtering_space_contains_point",
    "filtering_space_contains_bbox",
    "voronoi_prunes_point",
    "voronoi_prunes_bbox",
]
