"""Synthetic bus networks standing in for the NYC / LA GTFS datasets.

The generator builds a city in three steps:

1. **Street graph** — a jittered grid of candidate stops over a rectangular
   area, with edges between neighbouring stops (4-neighbourhood plus a few
   diagonals) so that realistic detours exist.
2. **Bus routes** — each route connects two far-apart stops; the route
   follows a perturbed shortest path through the street graph obtained by
   routing via one or two random intermediate waypoints, which produces the
   detour-ratio distribution the paper reports in Figure 6 (mostly between
   1 and 2).
3. **Bus network graph** — the union of the generated routes, as in the
   paper's Definition 9 (vertices are stops used by at least one route).

All randomness flows through a single :class:`random.Random` instance seeded
by the caller, so datasets are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.dataset import RouteDataset
from repro.model.route import Route
from repro.planning.graph import BusNetwork
from repro.planning.shortest_path import dijkstra, shortest_path


@dataclass
class SyntheticCity:
    """A generated city: its street graph, bus routes and bus network."""

    #: The underlying street graph the routes were drawn on.
    street_graph: BusNetwork
    #: The generated bus routes ``DR``.
    routes: RouteDataset
    #: The bus-network graph ``G`` induced by the routes.
    network: BusNetwork
    #: Name of the preset / configuration that produced the city.
    name: str = "synthetic"

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) of the route dataset."""
        box = self.routes.bbox
        return (box.min_x, box.min_y, box.max_x, box.max_y)


class CityGenerator:
    """Generates synthetic cities with bus routes.

    Parameters
    ----------
    width, height:
        Size of the city rectangle (kilometres; 1 unit = 1 km throughout the
        library).
    grid_spacing:
        Approximate distance between neighbouring candidate stops.
    jitter:
        Random displacement applied to each grid stop, as a fraction of the
        grid spacing.
    diagonal_probability:
        Probability of adding each diagonal street segment; diagonals create
        shortcut opportunities and thus non-trivial detour ratios.
    seed:
        Seed of the internal random generator.
    """

    def __init__(
        self,
        width: float = 30.0,
        height: float = 30.0,
        grid_spacing: float = 1.0,
        jitter: float = 0.25,
        diagonal_probability: float = 0.3,
        seed: int = 0,
    ):
        if width <= 0 or height <= 0 or grid_spacing <= 0:
            raise ValueError("width, height and grid_spacing must be positive")
        self.width = width
        self.height = height
        self.grid_spacing = grid_spacing
        self.jitter = jitter
        self.diagonal_probability = diagonal_probability
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Street graph
    # ------------------------------------------------------------------
    def generate_street_graph(self) -> BusNetwork:
        """Jittered grid of stops with 4-neighbour streets plus some diagonals."""
        graph = BusNetwork()
        columns = max(2, int(self.width / self.grid_spacing) + 1)
        rows = max(2, int(self.height / self.grid_spacing) + 1)
        index: Dict[Tuple[int, int], int] = {}
        vertex_id = 0
        for row in range(rows):
            for column in range(columns):
                x = column * self.grid_spacing + self.rng.uniform(
                    -self.jitter, self.jitter
                ) * self.grid_spacing
                y = row * self.grid_spacing + self.rng.uniform(
                    -self.jitter, self.jitter
                ) * self.grid_spacing
                graph.add_vertex(vertex_id, (x, y))
                index[(row, column)] = vertex_id
                vertex_id += 1
        for row in range(rows):
            for column in range(columns):
                vertex = index[(row, column)]
                if column + 1 < columns:
                    graph.add_edge(vertex, index[(row, column + 1)])
                if row + 1 < rows:
                    graph.add_edge(vertex, index[(row + 1, column)])
                if (
                    row + 1 < rows
                    and column + 1 < columns
                    and self.rng.random() < self.diagonal_probability
                ):
                    graph.add_edge(vertex, index[(row + 1, column + 1)])
                if (
                    row + 1 < rows
                    and column >= 1
                    and self.rng.random() < self.diagonal_probability
                ):
                    graph.add_edge(vertex, index[(row + 1, column - 1)])
        return graph

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route_path(
        self,
        graph: BusNetwork,
        start: int,
        end: int,
        waypoints: int,
    ) -> Optional[List[int]]:
        """Path from start to end via random waypoints (introduces detours)."""
        anchors = [start]
        vertices = list(graph.vertices())
        for _ in range(waypoints):
            anchors.append(self.rng.choice(vertices))
        anchors.append(end)

        path: List[int] = []
        for u, v in zip(anchors, anchors[1:]):
            distance, segment = shortest_path(graph, u, v)
            if not segment:
                return None
            if path:
                segment = segment[1:]
            path.extend(segment)
        # Remove loops introduced by the waypoints (keep the first visit).
        seen: Dict[int, int] = {}
        cleaned: List[int] = []
        for vertex in path:
            if vertex in seen:
                cleaned = cleaned[: seen[vertex] + 1]
                seen = {v: i for i, v in enumerate(cleaned)}
                continue
            seen[vertex] = len(cleaned)
            cleaned.append(vertex)
        if len(cleaned) < 2:
            return None
        return cleaned

    def generate_routes(
        self,
        graph: BusNetwork,
        route_count: int,
        min_straight_distance: Optional[float] = None,
        max_detour_waypoints: int = 2,
    ) -> RouteDataset:
        """Generate ``route_count`` bus routes over the street graph.

        Each route connects two stops whose straight-line distance is at
        least ``min_straight_distance`` (default: a third of the city
        diagonal) via zero, one or two random waypoints.
        """
        if route_count <= 0:
            raise ValueError("route_count must be positive")
        if min_straight_distance is None:
            min_straight_distance = math.hypot(self.width, self.height) / 3.0
        vertices = list(graph.vertices())
        routes = RouteDataset()
        attempts = 0
        max_attempts = route_count * 50
        while len(routes) < route_count and attempts < max_attempts:
            attempts += 1
            start, end = self.rng.sample(vertices, 2)
            start_pos = graph.position(start)
            end_pos = graph.position(end)
            if (
                math.hypot(end_pos.x - start_pos.x, end_pos.y - start_pos.y)
                < min_straight_distance
            ):
                continue
            waypoints = self.rng.randint(0, max_detour_waypoints)
            path = self._route_path(graph, start, end, waypoints)
            if path is None or len(path) < 3:
                continue
            points = graph.path_points(path)
            routes.add(Route(len(routes), points, name=f"bus-{len(routes)}"))
        if len(routes) < route_count:
            raise RuntimeError(
                "could not generate the requested number of routes; "
                "increase the city size or lower min_straight_distance"
            )
        return routes

    # ------------------------------------------------------------------
    # Full city
    # ------------------------------------------------------------------
    def generate(self, route_count: int, name: str = "synthetic") -> SyntheticCity:
        """Generate a full synthetic city with ``route_count`` bus routes."""
        street_graph = self.generate_street_graph()
        routes = self.generate_routes(street_graph, route_count)
        network = BusNetwork.from_routes(routes)
        return SyntheticCity(
            street_graph=street_graph, routes=routes, network=network, name=name
        )
