"""GTFS-like and CSV IO for routes and transitions.

The paper extracts its route datasets from the NYC and LA GTFS feeds.  This
module provides:

* a loader for a minimal GTFS directory (``stops.txt``, ``trips.txt``,
  ``stop_times.txt``) that reconstructs one route per trip, so users who have
  a real feed can run the library on it;
* simple CSV persistence for :class:`~repro.model.dataset.RouteDataset` and
  :class:`~repro.model.dataset.TransitionDataset`, used by the examples to
  cache generated datasets between runs.

Only the Python standard library is used; files are plain UTF-8 CSV.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


# ----------------------------------------------------------------------
# Route CSV  (route_id, sequence, x, y, name)
# ----------------------------------------------------------------------
def save_routes_csv(routes: RouteDataset, path: str) -> None:
    """Write a route dataset to a CSV file (one row per route point)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["route_id", "sequence", "x", "y", "name"])
        for route in routes:
            for sequence, point in enumerate(route.points):
                writer.writerow(
                    [route.route_id, sequence, point.x, point.y, route.name or ""]
                )


def load_routes_csv(path: str) -> RouteDataset:
    """Read a route dataset written by :func:`save_routes_csv`."""
    points_by_route: Dict[int, List[Tuple[int, float, float]]] = {}
    names: Dict[int, Optional[str]] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            route_id = int(row["route_id"])
            points_by_route.setdefault(route_id, []).append(
                (int(row["sequence"]), float(row["x"]), float(row["y"]))
            )
            names[route_id] = row.get("name") or None
    dataset = RouteDataset()
    for route_id in sorted(points_by_route):
        rows = sorted(points_by_route[route_id])
        points = [(x, y) for _, x, y in rows]
        dataset.add(Route(route_id, points, name=names.get(route_id)))
    return dataset


# ----------------------------------------------------------------------
# Transition CSV  (transition_id, origin_x, origin_y, dest_x, dest_y, timestamp)
# ----------------------------------------------------------------------
def save_transitions_csv(transitions: TransitionDataset, path: str) -> None:
    """Write a transition dataset to a CSV file (one row per transition)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["transition_id", "origin_x", "origin_y", "dest_x", "dest_y", "timestamp"]
        )
        for transition in transitions:
            writer.writerow(
                [
                    transition.transition_id,
                    transition.origin.x,
                    transition.origin.y,
                    transition.destination.x,
                    transition.destination.y,
                    "" if transition.timestamp is None else transition.timestamp,
                ]
            )


def load_transitions_csv(path: str) -> TransitionDataset:
    """Read a transition dataset written by :func:`save_transitions_csv`."""
    dataset = TransitionDataset()
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            timestamp_raw = row.get("timestamp", "")
            timestamp = float(timestamp_raw) if timestamp_raw else None
            dataset.add(
                Transition(
                    int(row["transition_id"]),
                    (float(row["origin_x"]), float(row["origin_y"])),
                    (float(row["dest_x"]), float(row["dest_y"])),
                    timestamp=timestamp,
                )
            )
    return dataset


# ----------------------------------------------------------------------
# Minimal GTFS loader
# ----------------------------------------------------------------------
def load_gtfs_directory(directory: str, max_routes: Optional[int] = None) -> RouteDataset:
    """Load bus routes from a minimal GTFS directory.

    Required files and columns:

    * ``stops.txt`` — ``stop_id``, ``stop_lat``, ``stop_lon``;
    * ``trips.txt`` — ``trip_id``, ``route_id``;
    * ``stop_times.txt`` — ``trip_id``, ``stop_id``, ``stop_sequence``.

    One representative trip is kept per GTFS ``route_id`` (the first trip
    encountered), which is how the paper counts ``|DR|``.

    Parameters
    ----------
    max_routes:
        Optional cap on the number of routes loaded.
    """
    stops_path = os.path.join(directory, "stops.txt")
    trips_path = os.path.join(directory, "trips.txt")
    stop_times_path = os.path.join(directory, "stop_times.txt")
    for required in (stops_path, trips_path, stop_times_path):
        if not os.path.exists(required):
            raise FileNotFoundError(f"missing GTFS file: {required}")

    stop_locations: Dict[str, Tuple[float, float]] = {}
    with open(stops_path, newline="", encoding="utf-8-sig") as handle:
        for row in csv.DictReader(handle):
            stop_locations[row["stop_id"]] = (
                float(row["stop_lon"]),
                float(row["stop_lat"]),
            )

    representative_trip: Dict[str, str] = {}
    with open(trips_path, newline="", encoding="utf-8-sig") as handle:
        for row in csv.DictReader(handle):
            representative_trip.setdefault(row["route_id"], row["trip_id"])

    trips_wanted = set(representative_trip.values())
    stops_by_trip: Dict[str, List[Tuple[int, str]]] = {}
    with open(stop_times_path, newline="", encoding="utf-8-sig") as handle:
        for row in csv.DictReader(handle):
            trip_id = row["trip_id"]
            if trip_id not in trips_wanted:
                continue
            stops_by_trip.setdefault(trip_id, []).append(
                (int(row["stop_sequence"]), row["stop_id"])
            )

    dataset = RouteDataset()
    next_id = 0
    for gtfs_route_id, trip_id in sorted(representative_trip.items()):
        stop_rows = sorted(stops_by_trip.get(trip_id, []))
        points = [
            stop_locations[stop_id]
            for _, stop_id in stop_rows
            if stop_id in stop_locations
        ]
        if len(points) < 2:
            continue
        dataset.add(Route(next_id, points, name=str(gtfs_route_id)))
        next_id += 1
        if max_routes is not None and next_id >= max_routes:
            break
    return dataset
