"""Synthetic passenger transitions standing in for Foursquare check-ins.

The paper builds its transition sets by splitting users' check-in
trajectories into consecutive origin/destination pairs.  The generator below
reproduces the two structural properties the RkNNT algorithms care about:

* transitions are spatially correlated with the bus network (people check in
  near stops and popular corridors), modelled by sampling endpoints as
  Gaussian displacements around randomly chosen route stops;
* a fraction of transitions is background noise spread uniformly over the
  city, modelling trips not served by any route.

The generator can also emit multi-point trajectories and split them with
:func:`repro.model.dataset.split_trajectory_into_transitions`, mirroring the
paper's data cleaning step, and supports streaming generation of very large
synthetic sets (the paper's NYC-Synthetic has 10M transitions).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.model.dataset import (
    TransitionDataset,
    split_trajectory_into_transitions,
)
from repro.model.route import Route
from repro.model.dataset import RouteDataset
from repro.model.transition import Transition


class TransitionGenerator:
    """Generates passenger transitions correlated with a set of bus routes.

    Parameters
    ----------
    routes:
        The bus routes that anchor the transition distribution.
    walk_radius:
        Standard deviation (in map units) of the Gaussian displacement of a
        transition endpoint from its anchoring stop — how far passengers are
        willing to walk.
    noise_fraction:
        Fraction of transitions whose endpoints are uniform over the city
        bounding box instead of anchored to a route.
    same_route_probability:
        Probability that both endpoints of a transition are anchored to the
        *same* route (a trip directly served by one bus line).
    seed:
        Seed of the internal random generator.
    """

    def __init__(
        self,
        routes: RouteDataset,
        walk_radius: float = 0.4,
        noise_fraction: float = 0.1,
        same_route_probability: float = 0.6,
        seed: int = 0,
    ):
        if len(routes) == 0:
            raise ValueError("the route dataset must not be empty")
        if not 0.0 <= noise_fraction <= 1.0:
            raise ValueError("noise_fraction must lie in [0, 1]")
        if not 0.0 <= same_route_probability <= 1.0:
            raise ValueError("same_route_probability must lie in [0, 1]")
        self.routes = routes
        self.walk_radius = walk_radius
        self.noise_fraction = noise_fraction
        self.same_route_probability = same_route_probability
        self.rng = random.Random(seed)
        self._route_list: List[Route] = list(routes)
        box = routes.bbox
        self._bounds = (box.min_x, box.min_y, box.max_x, box.max_y)

    # ------------------------------------------------------------------
    # Point sampling
    # ------------------------------------------------------------------
    def _near_stop(self, route: Route) -> Tuple[float, float]:
        stop = self.rng.choice(route.points)
        return (
            stop.x + self.rng.gauss(0.0, self.walk_radius),
            stop.y + self.rng.gauss(0.0, self.walk_radius),
        )

    def _uniform_point(self) -> Tuple[float, float]:
        min_x, min_y, max_x, max_y = self._bounds
        return (
            self.rng.uniform(min_x, max_x),
            self.rng.uniform(min_y, max_y),
        )

    def _sample_pair(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        if self.rng.random() < self.noise_fraction:
            return self._uniform_point(), self._uniform_point()
        origin_route = self.rng.choice(self._route_list)
        if self.rng.random() < self.same_route_probability:
            destination_route = origin_route
        else:
            destination_route = self.rng.choice(self._route_list)
        return self._near_stop(origin_route), self._near_stop(destination_route)

    # ------------------------------------------------------------------
    # Transition generation
    # ------------------------------------------------------------------
    def iter_transitions(
        self, count: int, start_id: int = 0, timestamps: bool = False
    ) -> Iterator[Transition]:
        """Stream ``count`` transitions without materialising them in a dataset.

        Useful for the large synthetic experiments (Figure 13) where millions
        of transitions would not fit comfortably in a plain list of objects.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        for offset in range(count):
            origin, destination = self._sample_pair()
            timestamp = float(offset) if timestamps else None
            yield Transition(start_id + offset, origin, destination, timestamp=timestamp)

    def generate(
        self, count: int, start_id: int = 0, timestamps: bool = False
    ) -> TransitionDataset:
        """Generate a :class:`~repro.model.dataset.TransitionDataset` of ``count`` rows."""
        return TransitionDataset(
            self.iter_transitions(count, start_id=start_id, timestamps=timestamps)
        )

    # ------------------------------------------------------------------
    # Trajectory generation (mirrors the Foursquare cleaning step)
    # ------------------------------------------------------------------
    def generate_trajectory(self, length: int) -> List[Tuple[float, float]]:
        """A multi-point check-in trajectory anchored to one or two routes."""
        if length < 2:
            raise ValueError("a trajectory needs at least 2 points")
        anchor_route = self.rng.choice(self._route_list)
        points = []
        for _ in range(length):
            if self.rng.random() < self.noise_fraction:
                points.append(self._uniform_point())
            else:
                points.append(self._near_stop(anchor_route))
        return points

    def generate_from_trajectories(
        self,
        trajectory_count: int,
        min_length: int = 2,
        max_length: int = 6,
        start_id: int = 0,
    ) -> TransitionDataset:
        """Generate transitions by splitting synthetic check-in trajectories.

        A trajectory of ``n`` points yields ``n - 1`` transitions, exactly as
        in the paper's preparation of the Foursquare data.
        """
        if min_length < 2 or max_length < min_length:
            raise ValueError("need 2 <= min_length <= max_length")
        dataset = TransitionDataset()
        next_id = start_id
        for _ in range(trajectory_count):
            length = self.rng.randint(min_length, max_length)
            trajectory = self.generate_trajectory(length)
            for transition in split_trajectory_into_transitions(
                trajectory, start_id=next_id
            ):
                dataset.add(transition)
                next_id += 1
        return dataset
