"""Data substrate: synthetic cities, transitions, GTFS-like IO and workloads.

The paper evaluates on the NYC and LA GTFS bus networks plus Foursquare
check-in transitions.  Those datasets cannot be bundled here, so this package
provides generators that reproduce their structural properties at a
configurable scale (see DESIGN.md, "Substitutions") together with a small
GTFS-like loader for users who do have real data on disk.
"""

from repro.data.synthetic import CityGenerator, SyntheticCity
from repro.data.checkins import TransitionGenerator
from repro.data.gtfs import (
    load_routes_csv,
    save_routes_csv,
    load_transitions_csv,
    save_transitions_csv,
    load_gtfs_directory,
)
from repro.data.workloads import QueryWorkload, make_city, CITY_PRESETS

__all__ = [
    "CityGenerator",
    "SyntheticCity",
    "TransitionGenerator",
    "load_routes_csv",
    "save_routes_csv",
    "load_transitions_csv",
    "save_transitions_csv",
    "load_gtfs_directory",
    "QueryWorkload",
    "make_city",
    "CITY_PRESETS",
]
