"""Query workloads and city presets used by the experiments.

Two things live here:

* :func:`make_city` / :data:`CITY_PRESETS` — scaled-down stand-ins for the
  paper's LA and NYC datasets (see DESIGN.md for the substitution argument).
  The presets keep the *relative* properties of the two cities: NYC has more
  routes and more transitions than LA over a similarly sized area.
* :class:`QueryWorkload` — the paper's two query generators:

  1. synthetic query routes built by appending points with a bounded rotation
     angle (≤ 90°) and a fixed interval ``I`` so the route "will not zigzag";
  2. planning queries: start/end vertex pairs with a prescribed straight-line
     distance ``ψ(se)`` and threshold ratio ``τ/ψ(se)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.checkins import TransitionGenerator
from repro.data.synthetic import CityGenerator, SyntheticCity
from repro.geometry.point import euclidean
from repro.model.dataset import RouteDataset, TransitionDataset


@dataclass(frozen=True)
class CityPreset:
    """Configuration of a scaled-down city standing in for a real dataset."""

    name: str
    width: float
    height: float
    grid_spacing: float
    route_count: int
    transition_count: int
    seed: int


#: Scaled-down stand-ins for the paper's datasets (Table 2 / Table 3).  The
#: paper's LA has 1,208 routes and 109,036 transitions; NYC has 2,022 routes
#: and 195,833 transitions.  The presets keep NYC ≈ 1.7× LA in both counts at
#: roughly 1/20 of the size so the full benchmark suite runs on a laptop.
CITY_PRESETS: Dict[str, CityPreset] = {
    "la": CityPreset(
        name="la",
        width=30.0,
        height=24.0,
        grid_spacing=1.2,
        route_count=60,
        transition_count=5000,
        seed=7,
    ),
    "nyc": CityPreset(
        name="nyc",
        width=26.0,
        height=26.0,
        grid_spacing=1.0,
        route_count=100,
        transition_count=9000,
        seed=11,
    ),
    # A deliberately tiny preset for unit tests and the quickstart example.
    "mini": CityPreset(
        name="mini",
        width=10.0,
        height=10.0,
        grid_spacing=1.5,
        route_count=12,
        transition_count=400,
        seed=3,
    ),
}


def make_city(
    preset: str = "la",
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[SyntheticCity, TransitionDataset]:
    """Build a synthetic city and its transition set from a preset.

    Parameters
    ----------
    preset:
        One of ``"la"``, ``"nyc"`` or ``"mini"``.
    scale:
        Multiplier applied to the preset's route and transition counts
        (e.g. ``scale=2`` doubles both).  The spatial extent is unchanged.
    seed:
        Override the preset's seed.
    """
    if preset not in CITY_PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; expected one of {sorted(CITY_PRESETS)}"
        )
    if scale <= 0:
        raise ValueError("scale must be positive")
    config = CITY_PRESETS[preset]
    seed = config.seed if seed is None else seed
    generator = CityGenerator(
        width=config.width,
        height=config.height,
        grid_spacing=config.grid_spacing,
        seed=seed,
    )
    city = generator.generate(
        max(2, int(round(config.route_count * scale))), name=config.name
    )
    transitions = TransitionGenerator(city.routes, seed=seed + 1).generate(
        max(1, int(round(config.transition_count * scale)))
    )
    return city, transitions


class QueryWorkload:
    """Generates the query sets used throughout the evaluation section.

    Parameters
    ----------
    city:
        The city whose routes anchor the queries.
    seed:
        Seed of the internal random generator.
    """

    def __init__(self, city: SyntheticCity, seed: int = 0):
        self.city = city
        self.rng = random.Random(seed)
        self._route_points: List[Tuple[float, float]] = [
            (p.x, p.y) for route in city.routes for p in route.points
        ]

    # ------------------------------------------------------------------
    # RkNNT query routes (Section 7.2, "Queries")
    # ------------------------------------------------------------------
    def random_query_route(
        self,
        length: int,
        interval: float,
        max_turn_degrees: float = 90.0,
    ) -> List[Tuple[float, float]]:
        """A synthetic query route of ``length`` points.

        The first point is drawn from the existing route points; each
        subsequent point extends the route by ``interval`` map units with a
        heading change of at most ``max_turn_degrees`` (the paper uses 90° so
        the query "will not zigzag").
        """
        if length < 1:
            raise ValueError("length must be at least 1")
        if interval <= 0:
            raise ValueError("interval must be positive")
        start = self.rng.choice(self._route_points)
        points = [start]
        heading = self.rng.uniform(0.0, 2.0 * math.pi)
        max_turn = math.radians(max_turn_degrees)
        for _ in range(length - 1):
            heading += self.rng.uniform(-max_turn / 2.0, max_turn / 2.0)
            previous = points[-1]
            points.append(
                (
                    previous[0] + interval * math.cos(heading),
                    previous[1] + interval * math.sin(heading),
                )
            )
        return points

    def query_routes(
        self,
        count: int,
        length: int,
        interval: float,
        max_turn_degrees: float = 90.0,
    ) -> List[List[Tuple[float, float]]]:
        """``count`` independent synthetic query routes."""
        return [
            self.random_query_route(length, interval, max_turn_degrees)
            for _ in range(count)
        ]

    def clustered_query_routes(
        self,
        count: int,
        length: int,
        interval: float,
        clusters: int = 4,
        spread: float = 0.35,
        heading_jitter_degrees: float = 30.0,
    ) -> List[List[Tuple[float, float]]]:
        """``count`` query routes grouped into spatial clusters.

        Models the query-locality workloads of Section 7.2: ``clusters``
        cluster centres are drawn from the existing route points, and each
        query starts at a Gaussian perturbation (``spread`` map units) of its
        cluster's centre.  All queries of a cluster share a base heading with
        at most ``heading_jitter_degrees`` of per-query jitter, so routes in
        a cluster stay close along their whole length — the property the
        locality engine's δ-margin (a directed Hausdorff bound) exploits.
        Queries are assigned to clusters round-robin, so any prefix of the
        returned list covers every cluster.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if clusters < 1:
            raise ValueError("clusters must be at least 1")
        centres = [
            self.rng.choice(self._route_points)
            for _ in range(min(clusters, count))
        ]
        base_headings = [
            self.rng.uniform(0.0, 2.0 * math.pi) for _ in centres
        ]
        jitter = math.radians(heading_jitter_degrees)
        max_step_turn = jitter / max(1, length - 1) if length > 1 else 0.0
        routes: List[List[Tuple[float, float]]] = []
        for index in range(count):
            which = index % len(centres)
            cx, cy = centres[which]
            start = (
                self.rng.gauss(cx, spread),
                self.rng.gauss(cy, spread),
            )
            heading = base_headings[which] + self.rng.uniform(-jitter, jitter)
            points = [start]
            for _ in range(length - 1):
                heading += self.rng.uniform(-max_step_turn, max_step_turn)
                previous = points[-1]
                points.append(
                    (
                        previous[0] + interval * math.cos(heading),
                        previous[1] + interval * math.sin(heading),
                    )
                )
            routes.append(points)
        return routes

    def existing_route_queries(
        self, count: Optional[int] = None
    ) -> List[int]:
        """Ids of existing routes to use as "real route queries" (Figure 16).

        Returns all route ids (shuffled) or a random sample of ``count``.
        """
        route_ids = list(self.city.routes.route_ids)
        self.rng.shuffle(route_ids)
        if count is not None:
            route_ids = route_ids[:count]
        return route_ids

    # ------------------------------------------------------------------
    # Planning queries (Section 7.3, "Queries")
    # ------------------------------------------------------------------
    def planning_query(
        self,
        straight_distance: float,
        tolerance: float = 0.25,
        max_attempts: int = 2000,
    ) -> Tuple[int, int]:
        """A (start, end) vertex pair with ``ψ(se) ≈ straight_distance``.

        Raises ``RuntimeError`` when no pair within ``tolerance`` (relative)
        can be found, which signals that the requested distance exceeds the
        city size.
        """
        vertices = list(self.city.network.vertices())
        if len(vertices) < 2:
            raise ValueError("the bus network has fewer than two vertices")
        low = straight_distance * (1.0 - tolerance)
        high = straight_distance * (1.0 + tolerance)
        for _ in range(max_attempts):
            start, end = self.rng.sample(vertices, 2)
            d = euclidean(
                self.city.network.position(start), self.city.network.position(end)
            )
            if low <= d <= high:
                return start, end
        raise RuntimeError(
            f"could not find a vertex pair with straight-line distance "
            f"≈ {straight_distance} (city too small?)"
        )

    def planning_queries(
        self,
        count: int,
        straight_distance: float,
        tolerance: float = 0.25,
    ) -> List[Tuple[int, int]]:
        """``count`` independent planning queries with the same ``ψ(se)``."""
        return [
            self.planning_query(straight_distance, tolerance=tolerance)
            for _ in range(count)
        ]
