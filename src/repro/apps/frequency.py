"""Service frequency recommendation from time-sliced RkNNT demand.

The paper notes that "by taking the temporal factor into consideration, i.e.,
user transitions at different time periods, [RkNNT] can help further adjust
the frequency of planned vehicles on the planned routes".  This module
implements that workflow:

1. partition the transition dataset into time slots using the transitions'
   timestamps,
2. run an RkNNT query for the target route against each slot's transitions,
3. convert per-slot demand into a recommended number of vehicles per slot
   given a vehicle capacity and a target maximum load factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.rknnt import RkNNTProcessor, VORONOI
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition


@dataclass
class SlotDemand:
    """Estimated demand and recommended service level for one time slot."""

    #: Inclusive start and exclusive end of the slot (same unit as timestamps).
    slot_start: float
    slot_end: float
    #: Number of transitions active in the slot.
    active_transitions: int
    #: Estimated riders: size of the route's RkNNT set within the slot.
    riders: int
    #: Recommended vehicles for the slot.
    vehicles: int

    @property
    def load_per_vehicle(self) -> float:
        """Average riders per recommended vehicle (0 when no service needed)."""
        if self.vehicles == 0:
            return 0.0
        return self.riders / self.vehicles


class FrequencyPlanner:
    """Recommends per-slot vehicle counts for a route from timestamped demand.

    Parameters
    ----------
    routes:
        The route dataset ``DR`` (competitor routes for the RkNNT queries).
    transitions:
        Timestamped transitions; rows without a timestamp are ignored.
    k:
        ``k`` of the underlying RkNNT queries.
    vehicle_capacity:
        Passengers one vehicle can carry over a slot.
    target_load_factor:
        Fraction of the capacity the operator wants to use at most
        (0 < factor ≤ 1); lower values yield more vehicles.
    """

    def __init__(
        self,
        routes: RouteDataset,
        transitions: TransitionDataset,
        k: int = 10,
        vehicle_capacity: int = 40,
        target_load_factor: float = 0.8,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if vehicle_capacity <= 0:
            raise ValueError("vehicle_capacity must be positive")
        if not 0.0 < target_load_factor <= 1.0:
            raise ValueError("target_load_factor must be in (0, 1]")
        self.routes = routes
        self.transitions = transitions
        self.k = k
        self.vehicle_capacity = vehicle_capacity
        self.target_load_factor = target_load_factor

    # ------------------------------------------------------------------
    # Slot handling
    # ------------------------------------------------------------------
    def _timestamped(self) -> List[Transition]:
        return [t for t in self.transitions if t.timestamp is not None]

    def time_range(self) -> Tuple[float, float]:
        """(min, max) timestamp over the timestamped transitions."""
        stamped = self._timestamped()
        if not stamped:
            raise ValueError("the transition dataset has no timestamped rows")
        times = [t.timestamp for t in stamped]
        return min(times), max(times)

    def slot_transitions(
        self, slot_start: float, slot_end: float
    ) -> TransitionDataset:
        """Transitions whose timestamp falls in ``[slot_start, slot_end)``."""
        return TransitionDataset(
            t
            for t in self._timestamped()
            if slot_start <= t.timestamp < slot_end
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def vehicles_needed(self, riders: int) -> int:
        """Vehicles needed to carry ``riders`` at the target load factor."""
        if riders <= 0:
            return 0
        effective_capacity = self.vehicle_capacity * self.target_load_factor
        return max(1, math.ceil(riders / effective_capacity))

    def plan(
        self,
        route: Union[Route, Sequence[Sequence[float]]],
        slots: int = 4,
        time_range: Optional[Tuple[float, float]] = None,
    ) -> List[SlotDemand]:
        """Per-slot demand and vehicle recommendation for ``route``.

        Parameters
        ----------
        slots:
            Number of equal-width time slots to divide the range into.
        time_range:
            Optional explicit (start, end); defaults to the dataset's range.
        """
        if slots <= 0:
            raise ValueError("slots must be positive")
        start, end = time_range if time_range is not None else self.time_range()
        if end <= start:
            end = start + 1.0
        width = (end - start) / slots

        plan: List[SlotDemand] = []
        for index in range(slots):
            slot_start = start + index * width
            # The final slot is closed so the maximum timestamp is included.
            slot_end = end + 1e-9 if index == slots - 1 else slot_start + width
            slot_data = self.slot_transitions(slot_start, slot_end)
            if len(slot_data) == 0:
                plan.append(
                    SlotDemand(slot_start, slot_end, 0, 0, self.vehicles_needed(0))
                )
                continue
            processor = RkNNTProcessor(self.routes, slot_data)
            result = processor.query(route, self.k, method=VORONOI)
            riders = len(result)
            plan.append(
                SlotDemand(
                    slot_start=slot_start,
                    slot_end=slot_end,
                    active_transitions=len(slot_data),
                    riders=riders,
                    vehicles=self.vehicles_needed(riders),
                )
            )
        return plan

    def peak_slot(self, plan: Sequence[SlotDemand]) -> SlotDemand:
        """The slot with the highest estimated demand."""
        if not plan:
            raise ValueError("plan must not be empty")
        return max(plan, key=lambda slot: slot.riders)
