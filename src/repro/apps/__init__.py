"""Applications built on top of the RkNNT operator.

The paper motivates RkNNT with several downstream applications beyond raw
capacity estimation.  This package implements two of them as worked,
importable components (each also has a dedicated example-style test):

* :mod:`repro.apps.advertising` — bus advertisement recommendation: use the
  RkNNT set of a route to find the passengers it would carry, then select the
  advertisements with the largest influence over those passengers (a greedy
  maximum-coverage selection).
* :mod:`repro.apps.frequency` — service frequency recommendation: split the
  day into time slots, run RkNNT over the transitions of each slot, and
  suggest how many vehicles per hour each route needs per slot.
"""

from repro.apps.advertising import AdvertisingRecommender, Advertisement
from repro.apps.frequency import FrequencyPlanner, SlotDemand

__all__ = [
    "AdvertisingRecommender",
    "Advertisement",
    "FrequencyPlanner",
    "SlotDemand",
]
