"""Bus advertisement recommendation (Section 1, application 2 of the paper).

The paper's sketch: an RkNNT query for a route locates the passengers who
would take it; combining those passengers' interest profiles (e.g. from a
social network) lets an operator choose the advertisements that will reach
the most interested riders on that route.

This module implements that pipeline:

1. run an RkNNT query for the target route to obtain its prospective riders,
2. look up each rider's interest tags in a profile table,
3. greedily select a bounded number of advertisements maximising the number
   of distinct riders interested in at least one selected ad (weighted
   maximum coverage, the standard greedy (1 - 1/e) approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.rknnt import RkNNTProcessor, VORONOI
from repro.core.semantics import EXISTS, Semantics
from repro.model.route import Route


@dataclass(frozen=True)
class Advertisement:
    """An advertisement with the interest tags it appeals to."""

    ad_id: str
    interests: FrozenSet[str]
    #: Revenue (or any other value) earned per reached passenger.
    value_per_passenger: float = 1.0

    def appeals_to(self, passenger_interests: Iterable[str]) -> bool:
        """True when the ad shares at least one interest with the passenger."""
        return not self.interests.isdisjoint(passenger_interests)


@dataclass
class AdPlacement:
    """One selected advertisement and the passengers it reaches."""

    advertisement: Advertisement
    reached_transition_ids: FrozenSet[int]

    @property
    def reach(self) -> int:
        return len(self.reached_transition_ids)

    @property
    def value(self) -> float:
        return self.reach * self.advertisement.value_per_passenger


class AdvertisingRecommender:
    """Chooses the advertisements with the largest influence on a route.

    Parameters
    ----------
    processor:
        RkNNT processor over the current route and transition datasets.
    profiles:
        Map from transition id to the interest tags of the passenger who made
        that transition.  Transitions without a profile are treated as having
        no interests (no ad can reach them).
    k:
        ``k`` of the underlying RkNNT queries.
    """

    def __init__(
        self,
        processor: RkNNTProcessor,
        profiles: Mapping[int, Iterable[str]],
        k: int = 10,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.processor = processor
        self.profiles: Dict[int, FrozenSet[str]] = {
            transition_id: frozenset(interests)
            for transition_id, interests in profiles.items()
        }
        self.k = k

    # ------------------------------------------------------------------
    # Audience
    # ------------------------------------------------------------------
    def audience(
        self,
        route: Route | Sequence[Sequence[float]],
        semantics: Semantics | str = EXISTS,
    ) -> FrozenSet[int]:
        """Prospective riders of ``route``: its RkNNT set."""
        result = self.processor.query(
            route, self.k, method=VORONOI, semantics=semantics
        )
        return result.transition_ids

    def audience_interests(self, audience: Iterable[int]) -> Dict[str, int]:
        """Histogram of interest tags over an audience."""
        histogram: Dict[str, int] = {}
        for transition_id in audience:
            for interest in self.profiles.get(transition_id, ()):  # type: ignore[arg-type]
                histogram[interest] = histogram.get(interest, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Ad selection
    # ------------------------------------------------------------------
    def recommend(
        self,
        route: Route | Sequence[Sequence[float]],
        advertisements: Sequence[Advertisement],
        max_ads: int = 3,
        semantics: Semantics | str = EXISTS,
    ) -> List[AdPlacement]:
        """Greedy maximum-coverage selection of at most ``max_ads`` ads.

        Each greedy round picks the advertisement adding the largest
        *marginal* value (newly reached passengers × value per passenger);
        selection stops early when no remaining ad reaches a new passenger.
        """
        if max_ads <= 0:
            raise ValueError("max_ads must be positive")
        audience = self.audience(route, semantics=semantics)
        reach_by_ad: Dict[str, Set[int]] = {}
        for advertisement in advertisements:
            reach_by_ad[advertisement.ad_id] = {
                transition_id
                for transition_id in audience
                if advertisement.appeals_to(self.profiles.get(transition_id, frozenset()))
            }

        selected: List[AdPlacement] = []
        covered: Set[int] = set()
        remaining = list(advertisements)
        while remaining and len(selected) < max_ads:
            best_ad = None
            best_gain = 0.0
            best_new: Set[int] = set()
            for advertisement in remaining:
                new = reach_by_ad[advertisement.ad_id] - covered
                gain = len(new) * advertisement.value_per_passenger
                if gain > best_gain:
                    best_ad = advertisement
                    best_gain = gain
                    best_new = new
            if best_ad is None:
                break
            selected.append(
                AdPlacement(
                    advertisement=best_ad,
                    reached_transition_ids=frozenset(reach_by_ad[best_ad.ad_id]),
                )
            )
            covered |= best_new
            remaining = [ad for ad in remaining if ad.ad_id != best_ad.ad_id]
        return selected

    def coverage(self, placements: Sequence[AdPlacement]) -> FrozenSet[int]:
        """Distinct passengers reached by a set of placements."""
        covered: Set[int] = set()
        for placement in placements:
            covered |= placement.reached_transition_ids
        return frozenset(covered)
