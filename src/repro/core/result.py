"""Result object returned by RkNNT queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.core.semantics import FORALL, Semantics
from repro.core.stats import QueryStatistics


@dataclass
class RkNNTResult:
    """Answer of an RkNNT query.

    Attributes
    ----------
    transition_ids:
        The ids of the transitions in the answer under the requested
        semantics.
    semantics:
        Which aggregation rule (∃ or ∀) produced ``transition_ids``.
    confirmed_endpoints:
        Map from transition id to the set of endpoint labels (``"o"`` /
        ``"d"``) that individually take the query as a kNN.  This is the raw
        per-point answer from which either semantics can be derived
        (Lemma 1), and is what MaxRkNNT's dominance check needs (it compares
        ``|∀RkNNT|`` of one partial route against ``|∃RkNNT|`` of another).
    k:
        The ``k`` used by the query.
    stats:
        Instrumentation for the benchmark harness.
    """

    transition_ids: FrozenSet[int]
    semantics: Semantics
    confirmed_endpoints: Dict[int, FrozenSet[str]]
    k: int
    stats: QueryStatistics = field(default_factory=QueryStatistics)

    def __len__(self) -> int:
        return len(self.transition_ids)

    def __contains__(self, transition_id: int) -> bool:
        return transition_id in self.transition_ids

    def exists_ids(self) -> FrozenSet[int]:
        """Transition ids under ∃ semantics (at least one endpoint confirmed)."""
        return frozenset(
            tid for tid, endpoints in self.confirmed_endpoints.items() if endpoints
        )

    def forall_ids(self) -> FrozenSet[int]:
        """Transition ids under ∀ semantics (both endpoints confirmed)."""
        return frozenset(
            tid
            for tid, endpoints in self.confirmed_endpoints.items()
            if len(endpoints) == 2
        )

    @classmethod
    def from_confirmed(
        cls,
        confirmed_endpoints: Dict[int, Set[str]],
        semantics: Semantics,
        k: int,
        stats: QueryStatistics,
    ) -> "RkNNTResult":
        """Build a result from the per-endpoint confirmation map."""
        frozen = {tid: frozenset(eps) for tid, eps in confirmed_endpoints.items()}
        if semantics is FORALL:
            ids = frozenset(
                tid for tid, eps in frozen.items() if len(eps) == 2
            )
        else:
            ids = frozenset(tid for tid, eps in frozen.items() if eps)
        return cls(
            transition_ids=ids,
            semantics=semantics,
            confirmed_endpoints=frozen,
            k=k,
            stats=stats,
        )
