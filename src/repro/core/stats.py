"""Per-query instrumentation used by the benchmark harness.

Figures 10, 12 and 15 of the paper break running time down into a *filtering*
phase and a *verification* phase; the statistics object below records those
timings plus the counters that explain them (nodes visited, candidates kept,
filter points collected).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class QueryStatistics:
    """Counters and timings collected while answering one RkNNT query."""

    #: Wall-clock seconds spent generating the filter set and pruning the
    #: TR-tree (the paper's "Filtering" bar).
    filtering_seconds: float = 0.0
    #: Wall-clock seconds spent verifying candidates (the "Verification" bar).
    verification_seconds: float = 0.0
    #: Route R-tree nodes popped during FilterRoute.
    route_nodes_visited: int = 0
    #: Transition R-tree nodes popped during PruneTransition.
    transition_nodes_visited: int = 0
    #: Route points added to the filtering set.
    filter_points: int = 0
    #: R-tree nodes pruned (route tree + transition tree).
    nodes_pruned: int = 0
    #: Transition endpoints that survived pruning and required verification.
    candidates: int = 0
    #: Transition endpoints confirmed as taking the query as a kNN.
    confirmed_points: int = 0
    #: Number of sub-queries issued (only > 1 for divide & conquer).
    subqueries: int = 1

    @property
    def total_seconds(self) -> float:
        """Total measured time (filtering + verification)."""
        return self.filtering_seconds + self.verification_seconds

    def merge(self, other: "QueryStatistics") -> None:
        """Accumulate another query's statistics into this one (in place).

        Used by divide & conquer, which answers one sub-query per query point
        and reports aggregate statistics.
        """
        self.filtering_seconds += other.filtering_seconds
        self.verification_seconds += other.verification_seconds
        self.route_nodes_visited += other.route_nodes_visited
        self.transition_nodes_visited += other.transition_nodes_visited
        self.filter_points += other.filter_points
        self.nodes_pruned += other.nodes_pruned
        self.candidates += other.candidates
        self.confirmed_points += other.confirmed_points
        self.subqueries += other.subqueries

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for benchmark CSV/JSON output."""
        return {
            "filtering_seconds": self.filtering_seconds,
            "verification_seconds": self.verification_seconds,
            "total_seconds": self.total_seconds,
            "route_nodes_visited": self.route_nodes_visited,
            "transition_nodes_visited": self.transition_nodes_visited,
            "filter_points": self.filter_points,
            "nodes_pruned": self.nodes_pruned,
            "candidates": self.candidates,
            "confirmed_points": self.confirmed_points,
            "subqueries": self.subqueries,
        }
