"""Top-level RkNNT query interface (Algorithm 1 plus the method variants).

:class:`RkNNTProcessor` owns the RR-tree and TR-tree for a pair of datasets
and answers queries with any of the three strategies evaluated in the paper:

========================  =====================================================
method                    description
========================  =====================================================
``"filter-refine"``       basic half-space filtering (Section 4)
``"voronoi"``             plus the per-route Voronoi filtering space (Sec. 5.1)
``"divide-conquer"``      one sub-query per query point, results unioned
                          (Section 5.2, Lemma 3)
========================  =====================================================

All three strategies run on the unified execution engine
(:mod:`repro.engine`): a method name is just a :class:`~repro.engine.plan
.QueryPlan`, and the processor owns one
:class:`~repro.engine.context.ExecutionContext` whose per-dataset caches are
shared by every query it answers.  :meth:`RkNNTProcessor.query_batch`
evaluates a whole workload through that shared context on the vectorized
geometry kernels; its results are element-wise identical to per-query
:meth:`RkNNTProcessor.query` calls.

The processor also exposes the dynamic-update entry points (add/remove routes
and transitions) so that the "most up-to-date transition data" requirement of
the paper is satisfied without rebuilding the indexes — the engine caches
invalidate automatically through the indexes' version counters.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.engine.parallel import ShardedExecutor

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.engine import resilience
from repro.engine.context import ExecutionContext
from repro.engine.continuous import ContinuousRkNNT, ResultDelta, Subscription
from repro.engine.executor import execute
from repro.engine.plan import (
    DIVIDE_CONQUER,
    FILTER_REFINE,
    METHODS,
    QueryPlan,
    VORONOI,
)
from repro.geometry.kernels import BACKEND_AUTO, BACKEND_PYTHON
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

QueryLike = Union[Route, Sequence[Sequence[float]]]

#: The method names are re-exported here because this module is the public
#: entry point: callers that construct a processor also pick a method.
__all__ = [
    "DIVIDE_CONQUER",
    "FILTER_REFINE",
    "METHODS",
    "VORONOI",
    "QueryLike",
    "RkNNTProcessor",
    "SERVING_POOL_ENV",
    "as_query_points",
    "rknnt_query",
    "serving_pool_env_enabled",
]

#: ``RKNNT_SERVING_POOL=1`` makes ``query_batch(workers=N)`` adopt a
#: processor-owned *persistent* worker pool on first use instead of
#: spawning (and tearing down) a per-call pool — the environment-variable
#: twin of the :meth:`RkNNTProcessor.serving_pool` context manager.  The
#: adopted pool lives until :meth:`RkNNTProcessor.close`.
SERVING_POOL_ENV = "RKNNT_SERVING_POOL"


def serving_pool_env_enabled() -> bool:
    """True when ``RKNNT_SERVING_POOL`` requests a persistent pool."""
    return os.environ.get(SERVING_POOL_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def as_query_points(query: QueryLike) -> list:
    """Normalise a query (Route or point sequence) into a list of points."""
    if isinstance(query, Route):
        return [(p.x, p.y) for p in query.points]
    points = [(float(p[0]), float(p[1])) for p in query]
    if not points:
        raise ValueError("query must contain at least one point")
    return points


class RkNNTProcessor:
    """Answers RkNNT queries over a route set and a transition set.

    Parameters
    ----------
    routes:
        The route dataset ``DR``.
    transitions:
        The transition dataset ``DT``.
    max_entries:
        Fanout of both R-trees.
    exclude_route_ids:
        Route ids excluded from the RR-tree (used when querying with an
        existing route, mirroring the paper's "remove the points of this
        route from the RR-tree index before running each query").
    """

    def __init__(
        self,
        routes: RouteDataset,
        transitions: TransitionDataset,
        max_entries: int = 16,
        exclude_route_ids: Optional[Iterable[int]] = None,
    ):
        self.routes = routes
        self.transitions = transitions
        self._excluded: Set[int] = set(exclude_route_ids or ())
        self.route_index = RouteIndex(
            routes, max_entries=max_entries, exclude_route_ids=self._excluded
        )
        self.transition_index = TransitionIndex(transitions, max_entries=max_entries)
        #: Shared engine state (route matrices, memoised sub-queries) reused
        #: by every query this processor answers; see ``repro.engine``.
        self.engine_context = ExecutionContext(
            self.route_index, self.transition_index
        )
        self._continuous: Optional[ContinuousRkNNT] = None
        self._serving_pool = None
        #: True when the live pool was adopted via ``RKNNT_SERVING_POOL``
        #: (growable on demand) rather than opened by :meth:`serving_pool`.
        self._serving_pool_adopted = False

    @classmethod
    def from_store(cls, source) -> "RkNNTProcessor":
        """Boot a processor straight from a persistent store file, in O(1).

        ``source`` is a path to a file written by :func:`repro.engine.store
        .save_indexes` (the CLI ``pack`` command), or an already-minted
        :class:`~repro.engine.store.StoreHandle`.  Both indexes install
        their columns lazily over read-only ``mmap`` views, so this returns
        in constant time regardless of dataset size and the OS shares the
        column pages between every process attached to the same file.  The
        resulting processor answers identically to one built from the
        datasets; its serving pools reseed by shipping the store handle
        instead of a context pickle.  Raises
        :class:`~repro.engine.resilience.StoreError` when the file is
        missing, corrupt, of an unsupported version, or numpy is
        unavailable (the store needs the typed-array backend).
        """
        from repro.engine import store as store_module

        if isinstance(source, store_module.StoreHandle):
            handle = source
        else:
            handle = store_module.open_handle(source)
        context = store_module.attach_context(handle)
        processor = cls.__new__(cls)
        processor.route_index = context.route_index
        processor.transition_index = context.transition_index
        processor.engine_context = context
        processor._excluded = set(context.route_index.excluded_route_ids)
        processor._continuous = None
        processor._serving_pool = None
        processor._serving_pool_adopted = False
        return processor

    def __getattr__(self, name):
        # Only reached when an attribute is missing: a store-booted
        # processor (from_store) resolves its dataset attributes from the
        # lazy indexes on first touch, keeping the boot itself O(1).
        if name == "routes" and "route_index" in self.__dict__:
            self.routes = self.route_index.routes
            return self.routes
        if name == "transitions" and "transition_index" in self.__dict__:
            self.transitions = self.transition_index.transitions
            return self.transitions
        raise AttributeError(name)

    @property
    def continuous(self) -> ContinuousRkNNT:
        """The lazily-created continuous-query manager of this processor."""
        if self._continuous is None:
            self._continuous = ContinuousRkNNT(self.engine_context)
        return self._continuous

    # ------------------------------------------------------------------
    # Serving pool (persistent worker pool + shared-memory arenas)
    # ------------------------------------------------------------------
    @property
    def active_serving_pool(self):
        """The live persistent pool, or ``None`` (see :meth:`serving_pool`)."""
        return self._serving_pool

    @contextmanager
    def serving_pool(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        use_arena: Optional[bool] = None,
        queue_limit: Optional[int] = None,
    ) -> Iterator["ShardedExecutor"]:
        """Keep one worker pool alive across every parallel call in scope.

        Inside the ``with`` block, :meth:`query_batch` (any ``workers > 0``),
        the planning bulk pre-computation
        (:meth:`repro.planning.precompute.VertexRkNNTIndex.build`) and
        :meth:`refresh_subscriptions` all dispatch through this one pool
        instead of spawning a fresh pool per call — workers keep their
        unpickled context, shared-memory arena attachment and warmed caches
        between calls, so dispatch latency stops scaling with dataset size.

        Dynamic updates stay correct while the pool is live: transition
        churn is forwarded to the workers as version-counted deltas (their
        caches invalidate or delta-patch instead of being rebuilt), and
        route churn reseeds the pool transparently.

        Parameters are those of
        :class:`~repro.engine.parallel.ShardedExecutor`; ``workers=None``
        uses every available CPU, and ``start_method=None`` defers to
        ``RKNNT_START_METHOD`` (else ``fork`` on Linux, the platform
        default elsewhere) — the columnar context pickle makes serving
        start-method-agnostic, so ``spawn`` (macOS/Windows) answers
        identically.  The pool (and its shared-memory segment) is
        destroyed on exit, crash included — the ``with`` form is what
        guarantees cleanup.  For an open-ended lifetime use
        ``RKNNT_SERVING_POOL=1`` plus :meth:`close`.

        ``queue_limit`` bounds in-flight shard tasks (admission control
        with :class:`~repro.engine.resilience.PoolSaturated`
        backpressure); ``None`` defers to ``RKNNT_QUEUE_LIMIT``.  Pool
        failures are retried with backoff and, past ``RKNNT_MAX_RESEEDS``,
        degrade to in-process execution with identical answers — see
        :mod:`repro.engine.resilience`.
        """
        from repro.engine.parallel import ShardedExecutor

        if self._serving_pool is not None:
            raise RuntimeError("a serving pool is already active for this processor")
        pool = ShardedExecutor(
            self.engine_context,
            workers=workers,
            chunk_size=chunk_size,
            start_method=start_method,
            use_arena=use_arena,
            queue_limit=queue_limit,
        )
        self._serving_pool = pool
        self._serving_pool_adopted = False
        try:
            yield pool
        finally:
            if self._serving_pool is pool:
                self._serving_pool = None
            pool.close()

    def _adopted_serving_pool(self, workers: int):
        """The env-var flavour of :meth:`serving_pool`: lazily create and
        retain a processor-owned pool when ``RKNNT_SERVING_POOL`` is set.

        The adopted pool is sized by the first call, but never *caps* a
        later one: a request for more workers than the pool holds replaces
        it with a larger pool (a smaller request keeps the larger pool —
        warm workers beat an exact count).
        """
        from repro.engine.parallel import ShardedExecutor

        pool = self._serving_pool
        if pool is not None and workers > pool.workers:
            pool.close()
            self._serving_pool = pool = None
        if pool is None:
            self._serving_pool = pool = ShardedExecutor(
                self.engine_context, workers=workers
            )
        self._serving_pool_adopted = True
        return pool

    def close(self) -> None:
        """Release long-lived resources (idempotent).

        Shuts the persistent serving pool down (destroying its
        shared-memory segment) and cancels every standing subscription.
        Query entry points remain usable afterwards — the serial path needs
        nothing closed, and a later parallel call simply builds fresh
        state.
        """
        if self._serving_pool is not None:
            self._serving_pool.close()
            self._serving_pool = None
        self._serving_pool_adopted = False
        if self._continuous is not None:
            self._continuous.close()

    def __enter__(self) -> "RkNNTProcessor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def add_route(self, route: Route) -> None:
        """Add a new route to the dataset and the RR-tree."""
        self.routes.add(route)
        self.route_index.add_route(route)

    def remove_route(self, route_id: int) -> Route:
        """Remove a route from the dataset and the RR-tree."""
        route = self.routes.remove(route_id)
        self.route_index.remove_route(route)
        return route

    def add_transition(self, transition: Transition) -> None:
        """Add a new transition (e.g. an incoming ride request)."""
        self.transitions.add(transition)
        self.transition_index.add_transition(transition)

    def remove_transition(self, transition_id: int) -> Transition:
        """Remove an expired transition."""
        transition = self.transitions.remove(transition_id)
        self.transition_index.remove_transition(transition)
        return transition

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def _resolve_exclusions(
        self, query: QueryLike, exclude_route_ids: Optional[Iterable[int]]
    ) -> Set[int]:
        """Construction-time exclusions plus per-query ones (and the query
        route itself when it is still part of the dataset)."""
        excluded = set(self._excluded)
        if exclude_route_ids is not None:
            excluded.update(exclude_route_ids)
        if isinstance(query, Route) and query.route_id in self.routes:
            excluded.add(query.route_id)
        return excluded

    def query(
        self,
        query: QueryLike,
        k: int,
        method: str = VORONOI,
        semantics: Union[Semantics, str] = EXISTS,
        exclude_route_ids: Optional[Iterable[int]] = None,
        backend: str = BACKEND_PYTHON,
    ) -> RkNNTResult:
        """Answer ``RkNNT(query)`` with the chosen method and semantics.

        Parameters
        ----------
        query:
            A :class:`~repro.model.route.Route` or a sequence of points.
        k:
            Number of nearest routes considered per transition endpoint.
        method:
            One of ``"filter-refine"``, ``"voronoi"`` or ``"divide-conquer"``.
        semantics:
            ``"exists"`` (default) or ``"forall"``.
        exclude_route_ids:
            Extra routes to ignore for this query only (combined with the
            construction-time exclusions).  If the query is an existing route
            of the dataset, pass its id here so it does not compete with
            itself.
        backend:
            Geometry-kernel backend.  Defaults to the scalar backend: a
            single query does not amortise array packing, and its statistics
            then reflect the per-tuple work the paper's figures count.  Use
            :meth:`query_batch` (or pass ``"auto"``) for the vectorized
            kernels; answers are identical either way.

        Returns
        -------
        RkNNTResult
            The matching transition ids under ``semantics``, the raw
            per-endpoint confirmation map, and the query statistics.
        """
        semantics = Semantics.coerce(semantics)
        plan = QueryPlan.for_method(method, backend=backend)
        query_points = as_query_points(query)
        excluded = self._resolve_exclusions(query, exclude_route_ids)
        return execute(
            self.engine_context,
            query_points,
            k,
            plan,
            semantics,
            exclude_route_ids=excluded,
        )

    def query_batch(
        self,
        queries: Sequence[QueryLike],
        k: int,
        method: str = VORONOI,
        semantics: Union[Semantics, str] = EXISTS,
        exclude_route_ids: Optional[Iterable[int]] = None,
        backend: str = BACKEND_AUTO,
        workers: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> List[RkNNTResult]:
        """Answer a whole workload of queries, sharing work across them.

        Results are element-wise identical to calling :meth:`query` once per
        query (the differential tests assert this for every method and both
        semantics, serial and sharded); the speedup comes from

        * the vectorized geometry kernels (``backend="auto"`` selects numpy
          when available) testing whole R-tree child/entry blocks per call,
        * the flattened route matrix shared by every verification stage,
        * memoised single-point sub-queries, which divide & conquer
          workloads with overlapping query routes hit constantly, and
        * with ``workers >= 1``, sharding across a process pool (the
          :class:`~repro.engine.parallel.ShardedExecutor`), which sidesteps
          the GIL entirely — one private execution context per worker,
          results re-ordered back into workload order.

        Parameters
        ----------
        queries:
            Routes or point sequences.  Per-query route exclusion (a Route
            query still present in the dataset) is applied per element,
            exactly as :meth:`query` would.
        exclude_route_ids:
            Routes ignored by *every* query of the batch.
        workers:
            ``0`` (default) answers the batch in-process.  ``workers >= 1``
            shards it across that many worker processes (``1`` is useful to
            exercise the worker path deterministically; real speedups need
            ``>= 2`` and spare CPUs).  While a persistent pool is live
            (:meth:`serving_pool` scope, or adopted via
            ``RKNNT_SERVING_POOL=1``), any ``workers >= 1`` call dispatches
            through it — reusing its warm workers — instead of spawning a
            per-call pool.  Worker sub-query caches are private, so the
            parent context's caches are neither used nor warmed.
        deadline_ms:
            Time budget for the whole batch, in milliseconds.  On expiry
            the call raises a typed
            :class:`~repro.engine.resilience.DeadlineExceeded` instead of
            blocking (on the pool path hung workers are terminated) —
            never a partial or wrong answer.  ``None`` defers to the
            ``RKNNT_DEADLINE_MS`` environment knob; unset means no
            deadline.

        Returns
        -------
        list of RkNNTResult
            One result per query, in workload order, element-wise identical
            to per-query :meth:`query` calls.
        """
        semantics = Semantics.coerce(semantics)
        plan = QueryPlan.for_method(
            method, backend=backend, share_subquery_cache=True
        ).resolved()
        if deadline_ms is None:
            deadline_ms = resilience.default_deadline_ms()
        deadline = resilience.Deadline.from_ms(deadline_ms)
        jobs = [
            (
                as_query_points(query),
                frozenset(self._resolve_exclusions(query, exclude_route_ids)),
            )
            for query in queries
        ]
        if workers:
            pool = self._serving_pool
            if pool is not None and self._serving_pool_adopted:
                # Adopted pools are growable: asking for more workers than
                # the pool holds replaces it, a smaller ask reuses it.
                pool = self._adopted_serving_pool(workers)
            elif pool is None and serving_pool_env_enabled():
                pool = self._adopted_serving_pool(workers)
            if pool is not None:
                return pool.run(jobs, k, plan, semantics, deadline=deadline)
            from repro.engine.parallel import (
                ShardedExecutor,
                available_cpu_count,
                min_shard_batch,
            )

            floor = min_shard_batch()
            if floor == 0 or (
                available_cpu_count() >= 2 and len(jobs) >= floor
            ):
                with ShardedExecutor(
                    self.engine_context, workers=workers
                ) as sharded:
                    return sharded.run(jobs, k, plan, semantics, deadline=deadline)
            # A per-call pool costs more than it buys without spare CPUs
            # or a batch worth slicing (``RKNNT_MIN_SHARD_BATCH``) —
            # answer serially and record the fallback.  Persistent pools
            # (handled above) are exempt: their setup cost is sunk.
            self.engine_context.shard_fallbacks += 1
        # The locality engine owns the serial batch loop: with
        # RKNNT_LOCALITY off (the default) it degenerates to exactly one
        # ``execute`` call per job; with it on, spatially clustered jobs
        # share their pilot's filter set (answers identical either way).
        from repro.engine.locality import execute_batch

        return execute_batch(
            self.engine_context, jobs, k, plan, semantics, deadline=deadline
        )

    # ------------------------------------------------------------------
    # Continuous queries (delta-maintained standing results)
    # ------------------------------------------------------------------
    def watch(
        self,
        query: QueryLike,
        k: int,
        method: str = VORONOI,
        semantics: Union[Semantics, str] = EXISTS,
        exclude_route_ids: Optional[Iterable[int]] = None,
        backend: str = BACKEND_PYTHON,
        callback=None,
    ) -> Subscription:
        """Register a standing RkNNT query maintained under updates.

        The returned :class:`~repro.engine.continuous.Subscription` tracks
        ``RkNNT(query)`` as transitions stream in and out of the dataset:
        each :meth:`add_transition` / :meth:`remove_transition` produces an
        incremental :class:`~repro.engine.continuous.ResultDelta`
        (``added`` / ``removed`` transition ids) instead of a full
        recomputation — inserted endpoints are tested against the
        subscription's retained filter half-spaces in O(filter) and only
        borderline ones are verified exactly; route mutations trigger a
        scoped re-filter, detected through the index generation counters.

        Parameters
        ----------
        query, k, method, semantics, exclude_route_ids, backend:
            Exactly as :meth:`query`; the materialized standing result
            (:meth:`~repro.engine.continuous.Subscription.result`) is
            element-wise identical to a fresh :meth:`query` with the same
            arguments at any point of the update stream.
        callback:
            Optional ``callback(delta)`` invoked synchronously for every
            non-empty result delta; deltas are also queued for
            :meth:`~repro.engine.continuous.Subscription.poll`.

        Returns
        -------
        Subscription
            The live subscription; cancel it with :meth:`unwatch`.
        """
        semantics = Semantics.coerce(semantics)
        plan = QueryPlan.for_method(method, backend=backend)
        query_points = as_query_points(query)
        excluded = self._resolve_exclusions(query, exclude_route_ids)
        return self.continuous.watch(
            query_points,
            k,
            plan,
            semantics,
            exclude_route_ids=excluded,
            callback=callback,
        )

    def unwatch(self, subscription: Subscription) -> None:
        """Cancel a standing query registered with :meth:`watch`."""
        self.continuous.unwatch(subscription)

    def refresh_subscriptions(self) -> List[ResultDelta]:
        """Eagerly re-validate every standing query after index churn.

        Stale subscriptions normally re-filter lazily, one by one, on their
        next access.  After a burst of route mutations a serving process
        wants them all current *now*; this entry point re-filters every
        stale subscription at once — and, while a persistent pool is live
        (:meth:`serving_pool`), runs those re-filters sharded across the
        pool's workers instead of serially in the parent.  Results (and the
        retained filter structures) are identical either way.

        Returns the non-empty ``"rebuild"`` result deltas that were emitted.
        """
        if self._continuous is None:
            return []
        return self._continuous.refresh_all(pool=self._serving_pool)

    def __repr__(self) -> str:
        return (
            f"RkNNTProcessor(routes={len(self.routes)}, "
            f"transitions={len(self.transitions)})"
        )


def rknnt_query(
    routes: RouteDataset,
    transitions: TransitionDataset,
    query: QueryLike,
    k: int,
    method: str = VORONOI,
    semantics: Union[Semantics, str] = EXISTS,
) -> RkNNTResult:
    """One-shot convenience wrapper building the indexes and running a query.

    Prefer :class:`RkNNTProcessor` when issuing many queries over the same
    datasets — the indexes are then built once and reused.
    """
    processor = RkNNTProcessor(routes, transitions)
    return processor.query(query, k, method=method, semantics=semantics)
