"""Brute-force RkNNT baseline (the "straightforward method" of Section 1).

For every transition endpoint, run a k nearest route search and check whether
the query would be among the k nearest routes.  This is intractable at scale
— which is the paper's motivation for the filter-refine framework — but it is
exact, simple, and serves two purposes here:

* the correctness oracle for the property-based tests, and
* the unoptimised comparison point in the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.core.stats import QueryStatistics
from repro.geometry.point import point_to_points_distance_sq
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route

import time

QueryLike = Union[Route, Sequence[Sequence[float]]]


def knn_of_point_bruteforce(
    routes: RouteDataset,
    point: Sequence[float],
    k: int,
    exclude_route_ids: Optional[Set[int]] = None,
) -> List[Tuple[float, int]]:
    """k nearest routes of ``point`` by scanning every route (Definition 4)."""
    if k <= 0:
        raise ValueError("k must be positive")
    excluded = exclude_route_ids or set()
    distances = [
        (route.distance_to_point(point), route.route_id)
        for route in routes
        if route.route_id not in excluded
    ]
    distances.sort()
    return distances[:k]


def rknnt_bruteforce(
    routes: RouteDataset,
    transitions: TransitionDataset,
    query: QueryLike,
    k: int,
    semantics: Union[Semantics, str] = EXISTS,
    exclude_route_ids: Optional[Iterable[int]] = None,
) -> RkNNTResult:
    """Exact RkNNT by running a kNN check for every transition endpoint.

    An endpoint is confirmed when strictly fewer than ``k`` routes are
    strictly closer to it than the query route.  The comparisons are between
    *squared* distances — the same elementary-float expressions the
    execution engine's verification stage evaluates on both backends — so
    the oracle and the framework make bitwise-identical decisions even on
    geometric near-ties.
    """
    semantics = Semantics.coerce(semantics)
    if isinstance(query, Route):
        query_points = [(p.x, p.y) for p in query.points]
    else:
        query_points = [(float(p[0]), float(p[1])) for p in query]
    if not query_points:
        raise ValueError("query must contain at least one point")

    excluded = set(exclude_route_ids or ())
    if isinstance(query, Route) and query.route_id in routes:
        excluded.add(query.route_id)

    stats = QueryStatistics()
    started = time.perf_counter()
    confirmed: Dict[int, Set[str]] = {}
    candidate_routes = [
        route for route in routes if route.route_id not in excluded
    ]
    for transition in transitions:
        for endpoint_label, point in (
            ("o", transition.origin),
            ("d", transition.destination),
        ):
            threshold_sq = point_to_points_distance_sq(point, query_points)
            closer = 0
            for route in candidate_routes:
                if route.squared_distance_to_point(point) < threshold_sq:
                    closer += 1
                    if closer >= k:
                        break
            stats.candidates += 1
            if closer < k:
                confirmed.setdefault(transition.transition_id, set()).add(
                    endpoint_label
                )
                stats.confirmed_points += 1
    stats.verification_seconds = time.perf_counter() - started
    return RkNNTResult.from_confirmed(confirmed, semantics, k, stats)
