"""Divide & conquer RkNNT evaluation (Section 5.2).

Lemma 3 of the paper states that the RkNNT of a multi-point query is the
union of the RkNNTs of its individual points.  The divide & conquer strategy
therefore runs one single-point sub-query per query point — each sub-query
enjoys the largest possible filtering space (Definition 6 degenerates to a
single half-plane intersection per filter point) — and unions the per-endpoint
confirmations.

The ∀ semantics is applied only after the union, exactly as in the unified
framework: a transition belongs to ``∀RkNNT(Q)`` when *both* of its endpoints
take ``Q`` (i.e. some query point) among their k nearest routes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Union

from repro.core.filtering import FilterRefineEngine
from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.core.stats import QueryStatistics
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex


def rknnt_divide_conquer(
    route_index: RouteIndex,
    transition_index: TransitionIndex,
    query_points: Sequence[Sequence[float]],
    k: int,
    semantics: Union[Semantics, str] = EXISTS,
    exclude_route_ids: Optional[Iterable[int]] = None,
    use_voronoi: bool = True,
) -> RkNNTResult:
    """Answer an RkNNT query by decomposing it into per-point sub-queries.

    Parameters
    ----------
    route_index, transition_index:
        Pre-built RR-tree and TR-tree.
    query_points:
        The query route's points.
    k:
        Number of nearest routes per transition endpoint.
    semantics:
        ``"exists"`` or ``"forall"``.
    exclude_route_ids:
        Routes ignored by every sub-query (e.g. the query route itself).
    use_voronoi:
        Whether each sub-query also applies the per-route Voronoi filter.  On
        single-point queries the basic filtering space is already maximal, so
        this mainly helps when several filter points of one route each fail
        individually; the paper's divide & conquer builds on the full
        framework, so it defaults to on.
    """
    semantics = Semantics.coerce(semantics)
    points = [(float(p[0]), float(p[1])) for p in query_points]
    if not points:
        raise ValueError("query must contain at least one point")
    excluded = set(exclude_route_ids or ())

    aggregate_stats = QueryStatistics(subqueries=0)
    confirmed: Dict[int, Set[str]] = {}
    for point in points:
        engine = FilterRefineEngine(
            route_index,
            transition_index,
            k,
            use_voronoi=use_voronoi,
            exclude_route_ids=excluded,
        )
        sub_confirmed = engine.run([point])
        aggregate_stats.merge(engine.stats)
        for transition_id, endpoints in sub_confirmed.items():
            confirmed.setdefault(transition_id, set()).update(endpoints)

    return RkNNTResult.from_confirmed(confirmed, semantics, k, aggregate_stats)
