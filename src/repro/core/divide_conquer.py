"""Divide & conquer RkNNT evaluation (Section 5.2).

Lemma 3 of the paper states that the RkNNT of a multi-point query is the
union of the RkNNTs of its individual points.  The divide & conquer strategy
therefore runs one single-point sub-query per query point — each sub-query
enjoys the largest possible filtering space (Definition 6 degenerates to a
single half-plane intersection per filter point) — and unions the per-endpoint
confirmations.

The strategy is now a plan configuration of the unified execution engine
(``QueryPlan(decompose=True)``); this module keeps the seed's functional
entry point.  Sub-query statistics (node visits, filter points, candidate and
verification counts, both phase timings) are summed into the parent result's
:class:`~repro.core.stats.QueryStatistics`, so the reported cost covers every
sub-query rather than only the last one.

The ∀ semantics is applied only after the union, exactly as in the unified
framework: a transition belongs to ``∀RkNNT(Q)`` when *both* of its endpoints
take ``Q`` (i.e. some query point) among their k nearest routes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute
from repro.engine.plan import DIVIDE_CONQUER, QueryPlan
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex


def rknnt_divide_conquer(
    route_index: RouteIndex,
    transition_index: TransitionIndex,
    query_points: Sequence[Sequence[float]],
    k: int,
    semantics: Union[Semantics, str] = EXISTS,
    exclude_route_ids: Optional[Iterable[int]] = None,
    use_voronoi: bool = True,
    context: Optional[ExecutionContext] = None,
    backend: str = "python",
) -> RkNNTResult:
    """Answer an RkNNT query by decomposing it into per-point sub-queries.

    Parameters
    ----------
    route_index, transition_index:
        Pre-built RR-tree and TR-tree.
    query_points:
        The query route's points.
    k:
        Number of nearest routes per transition endpoint.
    semantics:
        ``"exists"`` or ``"forall"``.
    exclude_route_ids:
        Routes ignored by every sub-query (e.g. the query route itself).
    use_voronoi:
        Whether each sub-query also applies the per-route Voronoi filter.  On
        single-point queries the basic filtering space is already maximal, so
        this mainly helps when several filter points of one route each fail
        individually; the paper's divide & conquer builds on the full
        framework, so it defaults to on.
    context:
        Optional shared :class:`~repro.engine.context.ExecutionContext`
        (e.g. the one owned by a processor); a private one is created when
        omitted.
    backend:
        Geometry-kernel backend for the sub-queries.
    """
    if context is None:
        context = ExecutionContext(route_index, transition_index)
    plan = QueryPlan(
        method=DIVIDE_CONQUER,
        use_voronoi=use_voronoi,
        decompose=True,
        backend=backend,
    )
    return execute(
        context,
        query_points,
        k,
        plan,
        semantics,
        exclude_route_ids=exclude_route_ids,
    )
