"""The filter–refine engine: Algorithms 2, 3 and 4 of the paper.

Historically this module contained the whole scalar implementation; the
pipeline now lives in the unified execution engine
(:mod:`repro.engine.executor`), shared by all three evaluation strategies and
by both geometry backends.  What remains here is the backward-compatible
entry point:

* :class:`FilterSet` — re-exported from :mod:`repro.engine.filterset`;
* :class:`FilterRefineEngine` — a :class:`~repro.engine.executor
  .QueryExecutor` bound to a private execution context, keeping the seed's
  constructor signature (``route_index, transition_index, k, ...``) and its
  stage-level methods (``filter_routes`` / ``prune_transitions`` /
  ``verify`` / ``is_filtered`` / ``run``), which the unit and property tests
  drive directly.

Pruning rule.  A node (or point) can be discarded as soon as at least ``k``
*distinct* routes are provably strictly closer to it than the query:

* a filter point ``r`` proves its whole crossover route set ``C(r)`` closer
  when the node lies inside the filtering space ``H_{r:Q}`` (Definition 6);
* with the Voronoi optimisation enabled, a filtering route ``R`` proves
  itself closer when, for every query point ``q``, some filter point of ``R``
  dominates the node (Definition 8, Section 5.1).

Strictly-closer semantics make the pruning consistent with the verification
predicate (``fewer than k routes strictly closer ⇒ result``), so the
framework returns exactly the same answer as the brute-force baseline.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryExecutor
from repro.engine.filterset import FilterSet
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex

__all__ = ["FilterSet", "FilterRefineEngine"]


class FilterRefineEngine(QueryExecutor):
    """Executes one RkNNT query with the filter-refine framework.

    A thin strategy configuration over the unified
    :class:`~repro.engine.executor.QueryExecutor`: it owns a private
    :class:`~repro.engine.context.ExecutionContext` for the given index pair
    and defaults to the scalar geometry backend, matching the seed's
    behaviour exactly.  Callers holding a shared context (batch workloads)
    should construct :class:`QueryExecutor` directly instead.

    Parameters
    ----------
    route_index:
        RR-tree + PList/NList over the route set.
    transition_index:
        TR-tree over the transition set.
    k:
        The ``k`` of the reverse k nearest neighbour query.
    use_voronoi:
        Enable the Voronoi per-route filtering optimisation (Section 5.1).
    exclude_route_ids:
        Routes that must not count against candidates (used when the query is
        an existing route still present in the index).
    backend:
        Geometry-kernel backend (``"python"`` by default; ``"numpy"`` or
        ``"auto"`` opt into the vectorized kernels).
    """

    def __init__(
        self,
        route_index: RouteIndex,
        transition_index: TransitionIndex,
        k: int,
        use_voronoi: bool = False,
        exclude_route_ids: Optional[Iterable[int]] = None,
        backend: str = "python",
    ):
        super().__init__(
            ExecutionContext(route_index, transition_index),
            k,
            use_voronoi=use_voronoi,
            exclude_route_ids=exclude_route_ids,
            backend=backend,
        )

    @property
    def route_index(self) -> RouteIndex:
        return self.context.route_index

    @property
    def transition_index(self) -> TransitionIndex:
        return self.context.transition_index
