"""The filter–refine engine: Algorithms 2, 3 and 4 of the paper.

``FilterRefineEngine`` traverses the RR-tree to build a *filtering set* of
route points (Algorithm 2 / ``FilterRoute``), uses it to prune TR-tree nodes
and transition endpoints (Algorithm 4 / ``PruneTransition``), and finally
verifies the surviving candidates exactly (Section 4.2.3).

Pruning rule.  A node (or point) can be discarded as soon as at least ``k``
*distinct* routes are provably strictly closer to it than the query:

* a filter point ``r`` proves its whole crossover route set ``C(r)`` closer
  when the node lies inside the filtering space ``H_{r:Q}`` (Definition 6);
* with the Voronoi optimisation enabled, a filtering route ``R`` proves
  itself closer when, for every query point ``q``, some filter point of ``R``
  dominates the node (Definition 8, Section 5.1).

Strictly-closer semantics make the pruning consistent with the verification
predicate (``fewer than k routes strictly closer ⇒ result``), so the
framework returns exactly the same answer as the brute-force baseline.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import filtering_space_contains_bbox
from repro.geometry.voronoi import voronoi_prunes_bbox
from repro.core.knn import count_routes_within, query_distance
from repro.core.stats import QueryStatistics
from repro.index.route_index import RouteIndex
from repro.index.rtree import RTreeEntry, RTreeNode
from repro.index.transition_index import TransitionIndex, TransitionEntry

import heapq
import itertools

QueryPoints = Sequence[Sequence[float]]


class FilterSet:
    """The filtering set ``S_filter`` (Section 4.2.1).

    Two views are maintained, mirroring the paper's ``S_filter.P`` and
    ``S_filter.R``:

    * ``points`` — filter points sorted by decreasing crossover degree
      ``|C(r)|`` so that points shared by many routes are tried first;
    * ``routes`` — for each route id, the filter points belonging to it,
      which is what the Voronoi per-route pruning consumes.
    """

    def __init__(self) -> None:
        self._points: List[Tuple[Tuple[float, float], FrozenSet[int]]] = []
        self._routes: Dict[int, List[Tuple[float, float]]] = {}
        self._seen: Set[Tuple[float, float]] = set()
        self._sorted = True

    def add(self, point: Sequence[float], crossover_routes: FrozenSet[int]) -> None:
        """Add a filter point with its crossover route set ``C(r)``."""
        key = (float(point[0]), float(point[1]))
        if key in self._seen:
            return
        self._seen.add(key)
        self._points.append((key, crossover_routes))
        self._sorted = False
        for route_id in crossover_routes:
            self._routes.setdefault(route_id, []).append(key)

    def points_by_crossover(
        self,
    ) -> List[Tuple[Tuple[float, float], FrozenSet[int]]]:
        """Filter points in decreasing order of ``|C(r)|``."""
        if not self._sorted:
            self._points.sort(key=lambda item: -len(item[1]))
            self._sorted = True
        return self._points

    @property
    def route_ids(self) -> Set[int]:
        """Route ids represented in the filtering set (``S_filter.R`` keys)."""
        return set(self._routes)

    def route_points(self, route_id: int) -> List[Tuple[float, float]]:
        """Filter points belonging to ``route_id``."""
        return self._routes.get(route_id, [])

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return f"FilterSet(points={len(self._points)}, routes={len(self._routes)})"


class FilterRefineEngine:
    """Executes one RkNNT query with the filter-refine framework.

    Parameters
    ----------
    route_index:
        RR-tree + PList/NList over the route set.
    transition_index:
        TR-tree over the transition set.
    k:
        The ``k`` of the reverse k nearest neighbour query.
    use_voronoi:
        Enable the Voronoi per-route filtering optimisation (Section 5.1).
    exclude_route_ids:
        Routes that must not count against candidates (used when the query is
        an existing route still present in the index).
    """

    def __init__(
        self,
        route_index: RouteIndex,
        transition_index: TransitionIndex,
        k: int,
        use_voronoi: bool = False,
        exclude_route_ids: Optional[Iterable[int]] = None,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.route_index = route_index
        self.transition_index = transition_index
        self.k = k
        self.use_voronoi = use_voronoi
        self.excluded: FrozenSet[int] = frozenset(exclude_route_ids or ())
        self.stats = QueryStatistics()
        self.filter_set = FilterSet()
        self.refine_nodes: List[RTreeNode] = []

    # ------------------------------------------------------------------
    # Algorithm 3: IsFiltered
    # ------------------------------------------------------------------
    def is_filtered(self, box: BoundingBox, query_points: QueryPoints) -> bool:
        """True when at least ``k`` distinct routes provably dominate ``box``.

        Step 1 walks the filter points in decreasing crossover degree and adds
        a point's whole crossover route set once the box lies in its filtering
        space.  Step 2 (only with the Voronoi optimisation) tries each
        remaining filtering route as a whole.
        """
        dominating: Set[int] = set()
        # Step 1: individual filter points, highest crossover degree first.
        for point, crossover in self.filter_set.points_by_crossover():
            if len(dominating) >= self.k:
                return True
            if crossover <= dominating:
                continue
            if filtering_space_contains_bbox(box, point, query_points):
                dominating.update(crossover - self.excluded)
        if len(dominating) >= self.k:
            return True
        # Step 2: whole filtering routes via the Voronoi filtering space.
        if self.use_voronoi:
            for route_id in self.filter_set.route_ids:
                if len(dominating) >= self.k:
                    return True
                if route_id in dominating or route_id in self.excluded:
                    continue
                route_points = self.filter_set.route_points(route_id)
                if len(route_points) < 2:
                    continue
                if voronoi_prunes_bbox(box, route_points, query_points):
                    dominating.add(route_id)
        return len(dominating) >= self.k

    # ------------------------------------------------------------------
    # Algorithm 2: FilterRoute
    # ------------------------------------------------------------------
    def filter_routes(self, query_points: QueryPoints) -> None:
        """Traverse the RR-tree, building the filter set and the refine set."""
        tree = self.route_index.tree
        if len(tree) == 0 or tree.root.bbox is None:
            return
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (
                tree.root.bbox.min_dist_to_query(query_points),
                next(counter),
                tree.root,
            )
        ]
        while heap:
            _, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeNode):
                self.stats.route_nodes_visited += 1
                assert item.bbox is not None
                if self.is_filtered(item.bbox, query_points):
                    # Keep the pruned node for the verification phase (its
                    # NList supplies whole sets of closer routes at once).
                    self.refine_nodes.append(item)
                    self.stats.nodes_pruned += 1
                    continue
                for child in item.children:
                    if isinstance(child, RTreeNode):
                        if child.bbox is None:
                            continue
                        d = child.bbox.min_dist_to_query(query_points)
                    else:
                        d = query_distance(child.point, query_points)
                    heapq.heappush(heap, (d, next(counter), child))
            else:
                assert isinstance(item, RTreeEntry)
                crossover = frozenset(item.payload) - self.excluded
                if not crossover:
                    continue
                self.filter_set.add(item.point, crossover)
                self.stats.filter_points += 1

    # ------------------------------------------------------------------
    # Algorithm 4: PruneTransition
    # ------------------------------------------------------------------
    def prune_transitions(
        self, query_points: QueryPoints
    ) -> List[Tuple[Tuple[float, float], TransitionEntry]]:
        """Traverse the TR-tree, returning the candidate endpoints."""
        candidates: List[Tuple[Tuple[float, float], TransitionEntry]] = []
        tree = self.transition_index.tree
        if len(tree) == 0 or tree.root.bbox is None:
            return candidates
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (
                tree.root.bbox.min_dist_to_query(query_points),
                next(counter),
                tree.root,
            )
        ]
        while heap:
            _, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeNode):
                self.stats.transition_nodes_visited += 1
                assert item.bbox is not None
                if self.is_filtered(item.bbox, query_points):
                    self.stats.nodes_pruned += 1
                    continue
                for child in item.children:
                    if isinstance(child, RTreeNode):
                        if child.bbox is None:
                            continue
                        d = child.bbox.min_dist_to_query(query_points)
                    else:
                        d = query_distance(child.point, query_points)
                    heapq.heappush(heap, (d, next(counter), child))
            else:
                assert isinstance(item, RTreeEntry)
                if self.is_filtered(
                    BoundingBox.from_point(item.point), query_points
                ):
                    continue
                for tag in item.payload:
                    candidates.append((item.point, tag))
        self.stats.candidates += len(candidates)
        return candidates

    # ------------------------------------------------------------------
    # Section 4.2.3: verification
    # ------------------------------------------------------------------
    def verify(
        self,
        query_points: QueryPoints,
        candidates: List[Tuple[Tuple[float, float], TransitionEntry]],
    ) -> Dict[int, Set[str]]:
        """Exactly verify each candidate endpoint.

        A candidate endpoint is confirmed when fewer than ``k`` distinct
        routes are strictly closer to it than the query.  The count uses the
        RR-tree with the NList shortcut (whole nodes whose maximum distance is
        below the threshold contribute all of their routes at once), which is
        the role the paper assigns to ``S_refine``.
        """
        confirmed: Dict[int, Set[str]] = {}
        for point, tag in candidates:
            threshold = query_distance(point, query_points)
            closer = count_routes_within(
                self.route_index,
                point,
                threshold,
                stop_at=self.k,
                exclude_route_ids=set(self.excluded),
            )
            if closer < self.k:
                confirmed.setdefault(tag.transition_id, set()).add(tag.endpoint)
                self.stats.confirmed_points += 1
        return confirmed

    # ------------------------------------------------------------------
    # Algorithm 1: the full pipeline
    # ------------------------------------------------------------------
    def run(self, query_points: QueryPoints) -> Dict[int, Set[str]]:
        """Execute filter → prune → verify and return confirmed endpoints."""
        query = [(float(p[0]), float(p[1])) for p in query_points]
        if not query:
            raise ValueError("query must contain at least one point")

        started = time.perf_counter()
        self.filter_routes(query)
        candidates = self.prune_transitions(query)
        self.stats.filtering_seconds += time.perf_counter() - started

        started = time.perf_counter()
        confirmed = self.verify(query, candidates)
        self.stats.verification_seconds += time.perf_counter() - started
        return confirmed
