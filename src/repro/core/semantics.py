"""Query semantics: ∃RkNNT versus ∀RkNNT (Definition 5).

The paper supports two result semantics for a transition ``T = {t_o, t_d}``:

* **∃RkNNT** — ``T`` is a result when *at least one* of its endpoints takes
  the query among its k nearest routes (the default in the paper and here).
* **∀RkNNT** — ``T`` is a result when *both* endpoints take the query among
  their k nearest routes.

By Lemma 1, ``∀RkNNT(Q) ⊆ ∃RkNNT(Q)``, so a single framework computes the
per-endpoint answers and the semantics only changes the final aggregation.
"""

from __future__ import annotations

import enum


class Semantics(enum.Enum):
    """Result aggregation rule over the two endpoints of a transition."""

    EXISTS = "exists"
    FORALL = "forall"

    @classmethod
    def coerce(cls, value: "Semantics | str") -> "Semantics":
        """Accept either a :class:`Semantics` member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown semantics {value!r}; expected 'exists' or 'forall'"
            ) from None


EXISTS = Semantics.EXISTS
FORALL = Semantics.FORALL
