"""k nearest route search for a single point (Definition 4).

These helpers are the building blocks of both the brute-force RkNNT baseline
and the exact verification step of the filter-refine framework:

* :func:`k_nearest_routes` — the k routes nearest to a point, deduplicated by
  route id, found with a best-first RR-tree traversal;
* :func:`count_routes_within` — how many *distinct* routes lie strictly
  closer to a point than a given distance, with early termination at ``k``;
* :func:`point_takes_query_as_knn` — whether the query route would be among
  the point's k nearest routes, the predicate that defines RkNNT membership.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry import kernels
from repro.geometry.kernels import BACKEND_AUTO, BACKEND_NUMPY, resolve_backend
from repro.geometry.point import euclidean, squared_euclidean
from repro.index.route_index import RouteIndex
from repro.index.rtree import RTreeEntry, RTreeNode


def _add_node_union(
    found: Set[int], node: RTreeNode, excluded: Set[int]
) -> None:
    """NList shortcut: add every route id below ``node`` to ``found``.

    Reads the node's packed sorted-id union (:meth:`~repro.index.rtree
    .RTreeNode.union_ids`) instead of the ``payload_union`` frozenset: on a
    worker attached to a shared-memory arena this is a read-only slice of
    the shared NList block, and iteration order is sorted everywhere.  The
    resulting set is identical either way, so decisions never change.
    """
    ids = kernels.id_list(node.union_ids())
    if excluded:
        found.update(route_id for route_id in ids if route_id not in excluded)
    else:
        found.update(ids)


def query_distance(
    point: Sequence[float], query_points: Sequence[Sequence[float]]
) -> float:
    """``dist(t, Q)``: minimum distance from ``point`` to the query route."""
    best = math.inf
    for q in query_points:
        d = euclidean(point, q)
        if d < best:
            best = d
    return best


def query_distance_sq(
    point: Sequence[float], query_points: Sequence[Sequence[float]]
) -> float:
    """Squared ``dist(t, Q)``: the verification threshold of the engine.

    Squared distances are exact elementary-float expressions (no ``sqrt`` /
    ``hypot`` rounding), so the scalar and vectorized execution backends
    compute bitwise-identical thresholds and confirm exactly the same
    endpoints.
    """
    best = math.inf
    for q in query_points:
        d = squared_euclidean(point, q)
        if d < best:
            best = d
    return best


def k_nearest_routes(
    route_index: RouteIndex, point: Sequence[float], k: int
) -> List[Tuple[float, int]]:
    """The ``k`` routes nearest to ``point`` as ``(distance, route_id)`` pairs.

    The distance to a route is the paper's point-route distance (minimum over
    the route's points).  Results are sorted by increasing distance; ties are
    broken by route id for determinism.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    best_by_route: Dict[int, float] = {}
    # Best-first traversal: entries come back ordered by distance, so the
    # first time a route id is seen, that distance is the route's distance.
    # Once k routes are known the traversal continues only while remaining
    # entries could still tie the current k-th distance, so that ties are
    # resolved deterministically (by route id) like the brute-force scan.
    for distance, entry in route_index.tree.iter_nearest(point):
        if len(best_by_route) >= k:
            kth_distance = sorted(best_by_route.values())[k - 1]
            if distance > kth_distance:
                break
        for route_id in entry.payload:
            if route_id not in best_by_route:
                best_by_route[route_id] = distance
    ranked = sorted(best_by_route.items(), key=lambda item: (item[1], item[0]))
    return [(distance, route_id) for route_id, distance in ranked[:k]]


def count_routes_within(
    route_index: RouteIndex,
    point: Sequence[float],
    threshold: float,
    stop_at: Optional[int] = None,
    exclude_route_ids: Optional[Set[int]] = None,
) -> int:
    """Count distinct routes strictly closer to ``point`` than ``threshold``.

    This is the verification primitive: a transition endpoint takes the query
    as one of its k nearest routes exactly when fewer than ``k`` routes are
    strictly closer to it than the query is.

    The traversal uses the RR-tree and the per-node route-id sets (NList): a
    node whose *maximum* distance to ``point`` is below ``threshold`` has all
    of its routes closer, so they are added without opening the node.

    Like :func:`count_routes_within_sq` the traversal block-expands: when a
    node is opened, all of its children are lower-bounded in one pass (here
    through the scalar predicates — this non-squared variant compares
    ``math.hypot`` distances, which the array kernels deliberately avoid).
    The MaxDist bound of the NList shortcut stays a pop-time computation:
    children pushed but never popped (tight thresholds, ``stop_at`` exits)
    must not pay for it.  Keep structural changes in sync between the two
    variants.

    Parameters
    ----------
    stop_at:
        Early-exit bound — once this many distinct routes have been found the
        exact count no longer matters and the function returns immediately.
    exclude_route_ids:
        Routes to ignore (used when the query is an existing route that is
        still present in the index).
    """
    excluded = exclude_route_ids or frozenset()
    found: Set[int] = set()
    tree = route_index.tree
    if len(tree) == 0 or tree.root.bbox is None:
        return 0

    counter = itertools.count()
    heap: List[Tuple[float, int, RTreeNode]] = [
        (tree.root.bbox.min_dist(point), next(counter), tree.root)
    ]
    while heap:
        min_dist, _, node = heapq.heappop(heap)
        if min_dist >= threshold:
            # Every remaining node is at least this far: nothing closer left.
            break
        if stop_at is not None and len(found) >= stop_at:
            break
        assert node.bbox is not None
        if node.bbox.max_dist(point) < threshold:
            # NList shortcut: every route below this node is strictly closer.
            _add_node_union(found, node, excluded)
            continue
        if node.is_leaf:
            for entry in node.children:
                assert isinstance(entry, RTreeEntry)
                if euclidean(entry.point, point) < threshold:
                    found.update(set(entry.payload) - excluded)
        else:
            for child in node.children:
                assert isinstance(child, RTreeNode)
                if child.bbox is None:
                    continue
                child_min = child.bbox.min_dist(point)
                if child_min < threshold:
                    heapq.heappush(heap, (child_min, next(counter), child))
    return len(found)


def count_routes_within_sq(
    route_index: RouteIndex,
    point: Sequence[float],
    threshold_sq: float,
    stop_at: Optional[int] = None,
    exclude_route_ids: Optional[Set[int]] = None,
    backend: str = BACKEND_AUTO,
) -> int:
    """Squared-threshold variant of :func:`count_routes_within`.

    Identical traversal and NList shortcut, but every comparison is between
    squared distances.  This is the scalar half of the engine's verification
    stage; :func:`repro.geometry.kernels.count_closer_routes` is the
    vectorized half, and the two make identical decisions because they
    evaluate the same elementary-float expressions.

    The traversal is *block-expanding* on the numpy backend: opening a node
    bounds all of its children (squared MinDist *and* MaxDist) in one
    :func:`repro.geometry.kernels.boxes_min_max_dist_sq_to_point` call, the
    MaxDist bound riding along on the heap, and a leaf's entries are scored
    in one :func:`repro.geometry.kernels.points_dist_sq_to_point` call.  On
    the Python backend the loop stays on the scalar
    :class:`~repro.geometry.bbox.BoundingBox` methods — ``backend="python"``
    never touches numpy machinery, and MaxDist stays a pop-time computation
    so children pushed but never popped don't pay for it.  Both backends
    evaluate the same elementary-float expressions, so the traversal visits
    exactly the nodes the node-at-a-time loop visited.  Early exits and the
    NList shortcut still apply at pop time.  Keep structural changes in
    sync with :func:`count_routes_within`.
    """
    excluded = exclude_route_ids or frozenset()
    found: Set[int] = set()
    tree = route_index.tree
    if len(tree) == 0 or tree.root.bbox is None:
        return 0
    use_kernels = resolve_backend(backend) == BACKEND_NUMPY

    counter = itertools.count()
    root = tree.root
    # Heap items carry the squared MaxDist when it was batch-computed at
    # push time (numpy backend); None means "compute at pop" (scalar).
    heap: List[Tuple[float, int, RTreeNode, Optional[float]]] = [
        (root.bbox.min_dist_sq(point), next(counter), root, None)
    ]
    while heap:
        min_dist_sq, _, node, max_dist_sq = heapq.heappop(heap)
        if min_dist_sq >= threshold_sq:
            # Every remaining node is at least this far: nothing closer left.
            break
        if stop_at is not None and len(found) >= stop_at:
            break
        if max_dist_sq is None:
            assert node.bbox is not None
            max_dist_sq = node.bbox.max_dist_sq(point)
        if max_dist_sq < threshold_sq:
            # NList shortcut: every route below this node is strictly closer.
            _add_node_union(found, node, excluded)
            continue
        if node.is_leaf:
            if use_kernels:
                distances = kernels.points_dist_sq_to_point(
                    node.leaf_point_tuples(), point
                )
                for entry, distance_sq in zip(node.children, distances):
                    assert isinstance(entry, RTreeEntry)
                    if distance_sq < threshold_sq:
                        found.update(set(entry.payload) - excluded)
            else:
                for entry in node.children:
                    assert isinstance(entry, RTreeEntry)
                    if squared_euclidean(entry.point, point) < threshold_sq:
                        found.update(set(entry.payload) - excluded)
        elif use_kernels:
            children = [
                child
                for child in node.children
                if isinstance(child, RTreeNode) and child.bbox is not None
            ]
            mins, maxs = kernels.boxes_min_max_dist_sq_to_point(
                [child.bbox.as_tuple() for child in children], point
            )
            for child, child_min_sq, child_max_sq in zip(children, mins, maxs):
                if child_min_sq < threshold_sq:
                    heapq.heappush(
                        heap,
                        (
                            float(child_min_sq),
                            next(counter),
                            child,
                            float(child_max_sq),
                        ),
                    )
        else:
            for child in node.children:
                assert isinstance(child, RTreeNode)
                if child.bbox is None:
                    continue
                child_min_sq = child.bbox.min_dist_sq(point)
                if child_min_sq < threshold_sq:
                    heapq.heappush(
                        heap, (child_min_sq, next(counter), child, None)
                    )
    return len(found)


def closer_route_count(
    route_index: RouteIndex,
    point: Sequence[float],
    query_points: Sequence[Sequence[float]],
    k: int,
    exclude_route_ids: Optional[Set[int]] = None,
    backend: str = BACKEND_AUTO,
) -> int:
    """Distinct routes strictly closer to ``point`` than the query is.

    The endpoint-confirmation primitive: the threshold is the squared
    distance from ``point`` to its nearest query point, the count stops
    early at ``k`` (whether more routes are closer no longer matters), and
    ``point`` is confirmed exactly when the returned count is below ``k``.
    The single source of this expression — the engine's verification stage,
    the continuous-query delta maintenance and the execution context's
    cache patching must all make identical decisions.

    Returns
    -------
    int
        The number of distinct non-excluded routes strictly closer than
        the query, capped at ``k``.
    """
    threshold_sq = query_distance_sq(point, query_points)
    return count_routes_within_sq(
        route_index,
        point,
        threshold_sq,
        stop_at=k,
        exclude_route_ids=exclude_route_ids,
        backend=backend,
    )


def point_takes_query_as_knn(
    route_index: RouteIndex,
    point: Sequence[float],
    query_points: Sequence[Sequence[float]],
    k: int,
    exclude_route_ids: Optional[Set[int]] = None,
    backend: str = BACKEND_AUTO,
) -> bool:
    """True when the query route is among the k nearest routes of ``point``.

    Implemented as: fewer than ``k`` distinct routes are strictly closer to
    ``point`` than the query is (ties therefore favour the query, matching
    the strict half-plane pruning used by the filter phase).  Uses the
    squared-distance comparison, like the engine's verification stage.
    """
    closer = closer_route_count(
        route_index,
        point,
        query_points,
        k,
        exclude_route_ids=exclude_route_ids,
        backend=backend,
    )
    return closer < k
