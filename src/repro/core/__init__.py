"""Core RkNNT query processing (the paper's primary contribution).

The public entry point is :class:`repro.core.rknnt.RkNNTProcessor`, which
wires the RR-tree / TR-tree indexes together and exposes the three query
evaluation strategies compared in the paper's experiments:

* ``filter-refine`` — the basic framework of Section 4,
* ``voronoi`` — the enlarged per-route filtering space of Section 5.1,
* ``divide-conquer`` — the per-query-point decomposition of Section 5.2.

The brute-force algorithm of Section 1 (a kNN search per transition) lives in
:mod:`repro.core.baseline` and doubles as the correctness oracle in the test
suite.
"""

from repro.core.semantics import EXISTS, FORALL, Semantics
from repro.core.stats import QueryStatistics
from repro.core.result import RkNNTResult
from repro.core.knn import k_nearest_routes, count_routes_within, query_distance
from repro.core.filtering import FilterSet, FilterRefineEngine
from repro.core.rknnt import RkNNTProcessor, rknnt_query
from repro.core.divide_conquer import rknnt_divide_conquer
from repro.core.baseline import rknnt_bruteforce, knn_of_point_bruteforce

__all__ = [
    "EXISTS",
    "FORALL",
    "Semantics",
    "QueryStatistics",
    "RkNNTResult",
    "k_nearest_routes",
    "count_routes_within",
    "query_distance",
    "FilterSet",
    "FilterRefineEngine",
    "RkNNTProcessor",
    "rknnt_query",
    "rknnt_divide_conquer",
    "rknnt_bruteforce",
    "knn_of_point_bruteforce",
]
