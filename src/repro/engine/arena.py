"""Shared-memory dataset arenas for the serving pool.

The parallel execution layer ships one pickled :class:`~repro.engine.context
.ExecutionContext` to every worker, and each worker then *rebuilds* its
derived arrays — the flattened route matrix and the per-node packed box
blocks — from the unpickled objects.  Both rebuilds are O(dataset), so a
worker's warm-up cost scales with dataset size and every worker carries a
private copy of arrays that are bit-identical across the pool.

A **dataset arena** removes both costs.  The parent packs the derived
arrays once into a single :class:`multiprocessing.shared_memory
.SharedMemory` segment and publishes a tiny picklable
:class:`ArenaHandle` describing the layout; a worker *attaches* by opening
the segment and installing read-only numpy views:

``segment layout``::

    ┌───────────────────────────────────────────────────────────────┐
    │ route-matrix block 0 points (R0, 2) float64                   │
    │ route-matrix block 1 points (R1, 2) float64                   │
    │ ...                                                           │
    │ RR-tree node boxes, preorder: per node (children, 4) float64  │
    │ TR-tree node boxes, preorder: per node (children, 4) float64  │
    │ PList point locations (P, 2) float64, sorted lexicographically│
    │ PList offsets (P + 1) int32                                   │
    │ PList crossover route ids (flat, sorted per point) int32      │
    │ NList offsets (RR-tree nodes + 1, preorder) int32             │
    │ NList route-id unions (flat, sorted per node) int32           │
    └───────────────────────────────────────────────────────────────┘

The trailing five regions are the **columnar sidecars** (see
:mod:`repro.engine.columnar`): the PList and the NList re-encoded as packed
int32/float64 arrays with offset tables.  Attached workers install them as
read-only views — the PList answers crossover lookups by binary search over
the shared point column, and every RR-tree node's ``packed_union`` becomes
a slice of the shared NList id column, which the verification shortcut
reads directly.  All float64 regions precede the int32 regions so every
view stays naturally aligned.  ``RKNNT_COLUMNAR=0`` drops the sidecars
(matrix + boxes only, the PR-4 layout).

Attach cost is O(1) in the number of route/transition *points* (one
``shm_open`` + ``mmap``, then pointer-arithmetic view construction while
walking the already-unpickled trees), and physical memory is shared by
every worker instead of copied per worker.

Correctness is preserved by construction:

* views are **read-only** (``kernels.view_f64`` clears the write flag), so
  no worker can scribble over a segment others are reading;
* the installed route matrix is tagged with the route-index version it was
  built against, and per-node box caches are dropped by any tree mutation
  — if a worker's replica churns (delta sync), the affected arrays are
  rebuilt privately and the shared segment is simply no longer referenced;
* when numpy is unavailable (or ``RKNNT_ARENA=0``), publishing returns
  ``None`` and the old pickle-and-rebuild path runs unchanged.

Cleanup is guaranteed: every published segment is tracked in a
module-level registry and destroyed (close + unlink) by ``close()``, by
garbage collection, and at interpreter teardown (``weakref.finalize``
doubles as an atexit hook); a crashed parent is covered by the standard
``multiprocessing`` resource tracker, which the segment stays registered
with for exactly this purpose.  Workers unregister their *attachments*
from the resource tracker so a dying worker can never unlink a segment the
rest of the pool still maps.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import columnar, faults
from repro.engine.columnar import walk_nodes as _walk_nodes
from repro.engine.context import ExecutionContext, RouteMatrix, RouteMatrixBlock
from repro.engine.resilience import ArenaAttachError
from repro.geometry import kernels

try:  # pragma: no cover - absent only on exotic builds without _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: ``RKNNT_ARENA`` — ``0``/``off`` disables arenas, ``1``/``on`` forces them
#: even below the size threshold, anything else (or unset) means "auto".
ARENA_ENV = "RKNNT_ARENA"

#: ``RKNNT_ARENA_MIN_BYTES`` — in auto mode, datasets whose packed arrays
#: total fewer bytes than this are shipped by pickle as before (a segment
#: per tiny test dataset costs more than it saves).
ARENA_MIN_BYTES_ENV = "RKNNT_ARENA_MIN_BYTES"
DEFAULT_ARENA_MIN_BYTES = 16_384

#: Bytes per packed box row (4 float64 columns).
_BOX_ROW_BYTES = kernels.float64_nbytes(1, 4)
_POINT_ROW_BYTES = kernels.float64_nbytes(1, 2)

#: Sidecar columns a columnar handle must carry, all or nothing.
_COLUMN_KEYS = frozenset(
    {"plist_points", "plist_offsets", "plist_ids", "nlist_offsets", "nlist_ids"}
)

#: Live arenas published by this process: segment name -> finalizer.
_ACTIVE: Dict[str, "weakref.finalize"] = {}


def arena_enabled() -> Optional[bool]:
    """Tri-state ``RKNNT_ARENA``: ``False`` off, ``True`` forced, ``None`` auto."""
    raw = os.environ.get(ARENA_ENV, "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    if raw in ("1", "on", "true", "yes", "force"):
        return True
    return None


def arena_min_bytes() -> int:
    """The auto-mode size threshold (``RKNNT_ARENA_MIN_BYTES``).

    Invalid or negative values fall back to the default — a mistyped tuning
    knob must never change answers or crash a query.
    """
    raw = os.environ.get(ARENA_MIN_BYTES_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_ARENA_MIN_BYTES
        if value >= 0:
            return value
    return DEFAULT_ARENA_MIN_BYTES


def active_segment_names() -> List[str]:
    """Names of the shared-memory segments this process currently owns.

    The differential lifecycle tests assert this is empty after teardown —
    an entry left here after a pool/arena close is a leaked segment.
    """
    return sorted(name for name, fin in _ACTIVE.items() if fin.alive)


# ----------------------------------------------------------------------
# Layout description (pickled to workers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockSpec:
    """Layout of one route-matrix block inside the segment."""

    offset: int
    rows: int
    route_offsets: Tuple[int, ...]
    column_route_ids: Tuple[int, ...]


@dataclass(frozen=True)
class TreeSpec:
    """Layout of one R-tree's preorder packed-box region."""

    key: str  # "route" or "transition"
    offset: int
    rows: int


@dataclass(frozen=True)
class ColumnSpec:
    """Layout of one columnar-sidecar array inside the segment.

    ``kind`` selects the view primitive: ``"f64"`` is a 2-D float64 region
    (``rows`` × ``cols``), ``"i32"`` a 1-D int32 region of ``rows``
    elements.
    """

    key: str
    kind: str  # "f64" or "i32"
    offset: int
    rows: int
    cols: int = 0


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of a published arena (name + layout table).

    The handle is all a worker needs to attach; it is O(routes + tree
    metadata) — the float payload itself never travels through a pickle.
    """

    name: str
    nbytes: int
    route_version: int
    transition_version: int
    blocks: Tuple[BlockSpec, ...]
    trees: Tuple[TreeSpec, ...]
    columns: Tuple[ColumnSpec, ...] = ()


# ----------------------------------------------------------------------
# Publishing (parent side)
# ----------------------------------------------------------------------
class DatasetArena:
    """One published shared-memory segment, owned by the publishing process.

    Destroy it with :meth:`close` (idempotent); garbage collection and
    interpreter teardown are covered by a ``weakref.finalize`` hook, and a
    hard crash of the owner by the multiprocessing resource tracker.
    """

    def __init__(self, shm, handle: ArenaHandle):
        self._shm = shm
        self.handle = handle
        self._finalizer = weakref.finalize(
            self, _destroy_segment, shm, handle.name, os.getpid()
        )
        _ACTIVE[handle.name] = self._finalizer

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Close and unlink the segment (idempotent, safe to call twice)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "DatasetArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.nbytes} bytes"
        return f"DatasetArena(name={self.name!r}, {state})"


def _destroy_segment(shm, name: str, owner_pid: int) -> None:
    """Close the mapping and, in the owning process only, unlink the segment.

    A forked worker inherits the parent's arena objects; if one of those
    copies were finalized in the child it must never ``unlink`` a segment
    the parent still serves from — hence the pid guard.
    """
    _ACTIVE.pop(name, None)
    try:
        shm.close()
    except Exception:  # pragma: no cover - BufferError etc.; unlink anyway
        pass
    if os.getpid() == owner_pid:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - platform-specific teardown
            pass


def _tree_box_rows(tree) -> int:
    """Total packed-box rows of a tree: every node contributes one row per
    direct child (leaf entries are degenerate boxes)."""
    return sum(len(node.children) for node in _walk_nodes(tree))


def publish_arena(
    context: ExecutionContext,
    min_bytes: Optional[int] = None,
    force: bool = False,
) -> Optional[DatasetArena]:
    """Pack the context's derived arrays into a shared segment.

    Returns ``None`` — leaving the pickle-and-rebuild path in charge — when
    numpy or ``shared_memory`` is unavailable, arenas are disabled via
    ``RKNNT_ARENA=0``, the packed payload is below the auto-mode threshold,
    or the platform refuses the segment (e.g. an unwritable ``/dev/shm``).
    ``force=True`` (an explicit per-executor ``use_arena=True``) overrides
    the environment kill-switch and the size threshold — an explicit caller
    choice always wins over ambient configuration; only a genuinely
    impossible arena (no numpy / no shared memory) still returns ``None``.
    """
    enabled = True if force else arena_enabled()
    if enabled is False or _shared_memory is None or not kernels.numpy_available():
        return None
    store_handle = getattr(context, "store_handle", None)
    if store_handle is not None and store_handle.matches(context):
        # A persistent store file already backs this dataset: its pages are
        # file-backed shared memory through the OS page cache, so a second
        # (anonymous) shared segment would only duplicate them.  Workers
        # attach the store instead (see ``repro.engine.parallel``).
        return None
    if min_bytes is None:
        min_bytes = arena_min_bytes()

    matrix = context.route_matrix()
    route_tree = context.route_index.tree
    transition_tree = context.transition_index.tree
    tree_rows = {
        "route": _tree_box_rows(route_tree),
        "transition": _tree_box_rows(transition_tree),
    }
    # Columnar sidecars (PList + NList packed arrays): encoded through the
    # index's version-keyed cache, so the pickle the executor ships right
    # after publishing reuses this encoding instead of re-walking the tree.
    sidecars = None
    if columnar.columnar_enabled():
        route_columns = context.route_index.to_columns()
        sidecars = (route_columns.plist, route_columns.nlist)
    total = sum(len(block.points) * _POINT_ROW_BYTES for block in matrix.blocks)
    total += sum(rows * _BOX_ROW_BYTES for rows in tree_rows.values())
    if sidecars is not None:
        plist_cols, nlist_cols = sidecars
        total += kernels.float64_nbytes(len(plist_cols.points), 2)
        total += kernels.int32_nbytes(
            len(plist_cols.offsets)
            + len(plist_cols.route_ids)
            + len(nlist_cols.offsets)
            + len(nlist_cols.route_ids)
        )
    if total == 0 or (enabled is not True and total < min_bytes):
        return None

    try:
        shm = _shared_memory.SharedMemory(create=True, size=total)
    except OSError:  # pragma: no cover - no usable shared-memory backing
        return None
    try:
        offset = 0
        blocks: List[BlockSpec] = []
        for block in matrix.blocks:
            spec = BlockSpec(
                offset=offset,
                rows=len(block.points),
                route_offsets=tuple(block.offsets),
                column_route_ids=tuple(block.column_route_ids),
            )
            offset = kernels.write_f64(shm.buf, offset, block.points)
            blocks.append(spec)
        trees: List[TreeSpec] = []
        for key, tree in (("route", route_tree), ("transition", transition_tree)):
            start = offset
            for node in _walk_nodes(tree):
                if node.children:
                    offset = kernels.write_f64(
                        shm.buf, offset, node.packed_child_boxes()
                    )
            trees.append(TreeSpec(key=key, offset=start, rows=tree_rows[key]))
            assert offset - start == tree_rows[key] * _BOX_ROW_BYTES
        columns: List[ColumnSpec] = []
        if sidecars is not None:
            plist_cols, nlist_cols = sidecars
            # float64 region first: every earlier write is a whole number
            # of 8-byte rows, so the point column starts aligned and the
            # int32 regions after it need only 4-byte alignment.
            columns.append(
                ColumnSpec(
                    key="plist_points",
                    kind="f64",
                    offset=offset,
                    rows=len(plist_cols.points),
                    cols=2,
                )
            )
            offset = kernels.write_f64(shm.buf, offset, plist_cols.points)
            for key, array in (
                ("plist_offsets", plist_cols.offsets),
                ("plist_ids", plist_cols.route_ids),
                ("nlist_offsets", nlist_cols.offsets),
                ("nlist_ids", nlist_cols.route_ids),
            ):
                columns.append(
                    ColumnSpec(key=key, kind="i32", offset=offset, rows=len(array))
                )
                offset = kernels.write_i32(shm.buf, offset, array)
        handle = ArenaHandle(
            name=shm.name,
            nbytes=total,
            route_version=context.route_index.version,
            transition_version=context.transition_index.version,
            blocks=tuple(blocks),
            trees=tuple(trees),
            columns=tuple(columns),
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return DatasetArena(shm, handle)


# ----------------------------------------------------------------------
# Attaching (worker side)
# ----------------------------------------------------------------------
class AttachedArena:
    """A worker-side attachment: the open segment plus its installed views.

    The worker keeps this object alive for its whole life (module global in
    :mod:`repro.engine.parallel`) so the mapping outlives every view handed
    to the engine.  It never unlinks — only the publishing parent does.
    """

    def __init__(self, shm):
        self._shm = shm

    def close(self) -> None:  # pragma: no cover - exercised at process exit
        try:
            self._shm.close()
        except BufferError:
            # Live views still alias the mapping; the OS reclaims it at
            # process exit, which is the only time workers detach anyway.
            pass


def _attach_segment(name: str):
    """Open an existing segment without adopting cleanup responsibility.

    On Python ≥ 3.13 ``track=False`` says exactly that.  On older
    interpreters attaching re-registers the name with the resource
    tracker; our attachers are always *children of the publisher* (pool
    workers) or the publisher itself, which share one tracker process —
    there the duplicate registration is a set-level no-op and only the
    publisher's ``unlink`` ever unregisters, so no workaround is needed
    (and the classic ``unregister``-after-attach hack would wrongly erase
    the publisher's own crash-cleanup registration).
    """
    assert _shared_memory is not None
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return _shared_memory.SharedMemory(name=name)


def attach_arena(handle: ArenaHandle, context: ExecutionContext) -> AttachedArena:
    """Attach to a published arena and install its views into ``context``.

    Installs the route matrix (read-only shared views) and pre-populates
    the packed-box cache of every RR-/TR-tree node.  Raises a typed
    :class:`~repro.engine.resilience.ArenaAttachError` on any failure —
    segment vanished, layout mismatch, injected ``arena_attach`` fault —
    and callers treat it as "no arena", falling back to the private
    rebuild path, never to wrong answers.

    The returned attachment is also stored on the context
    (``_arena_attachment``), pinning the mapping for as long as the context
    — whose caches hold views into it — is alive; dropping the return value
    is therefore safe.
    """
    if _shared_memory is None or not kernels.numpy_available():
        raise ArenaAttachError("shared-memory arenas need numpy and shared_memory")
    faults.fire(faults.ARENA_ATTACH)
    try:
        shm = _attach_segment(handle.name)
    except Exception as exc:
        raise ArenaAttachError(
            "arena segment attach failed", segment=handle.name
        ) from exc
    try:
        # Stage-then-install: every view is built and every layout check
        # passes *before* the first context mutation.  A worker context
        # must never be left holding views into a mapping the failure path
        # is about to unmap (numpy arrays do not pin the mmap — reading a
        # view of a closed segment is a segfault, not an exception).
        blocks = []
        for spec in handle.blocks:
            points = kernels.view_f64(shm.buf, spec.offset, spec.rows, 2)
            blocks.append(
                RouteMatrixBlock(
                    points, list(spec.route_offsets), list(spec.column_route_ids)
                )
            )
        trees = {
            "route": context.route_index.tree,
            "transition": context.transition_index.tree,
        }
        staged_boxes = []
        for spec in handle.trees:
            offset = spec.offset
            for node in _walk_nodes(trees[spec.key]):
                rows = len(node.children)
                if rows:
                    staged_boxes.append(
                        (node, kernels.view_f64(shm.buf, offset, rows, 4))
                    )
                    offset += rows * _BOX_ROW_BYTES
            if offset - spec.offset != spec.rows * _BOX_ROW_BYTES:
                raise ArenaAttachError(
                    f"arena layout mismatch on the {spec.key} tree",
                    segment=handle.name,
                    walked=offset - spec.offset,
                    published=spec.rows * _BOX_ROW_BYTES,
                )
        nlist_columns = plist_columns = None
        if handle.columns:
            views = {}
            for column in handle.columns:
                if column.kind == "f64":
                    views[column.key] = kernels.view_f64(
                        shm.buf, column.offset, column.rows, column.cols
                    )
                else:
                    views[column.key] = kernels.view_i32(
                        shm.buf, column.offset, column.rows
                    )
            missing = _COLUMN_KEYS - views.keys()
            if missing:
                raise ArenaAttachError(
                    "arena sidecar columns incomplete",
                    segment=handle.name,
                    missing=sorted(missing),
                )
            nlist_columns = columnar.NListColumns(
                offsets=views["nlist_offsets"], route_ids=views["nlist_ids"]
            )
            node_count = sum(1 for _ in columnar.walk_nodes(context.route_index.tree))
            if node_count != nlist_columns.node_count:
                raise ArenaAttachError(
                    "arena sidecar shape mismatch on the NList columns",
                    segment=handle.name,
                    tree_nodes=node_count,
                    column_nodes=nlist_columns.node_count,
                )
            plist_columns = columnar.PListColumns(
                points=views["plist_points"],
                offsets=views["plist_offsets"],
                route_ids=views["plist_ids"],
            )
        # Install phase — all checks passed, nothing below can raise.
        context.install_route_matrix(RouteMatrix(blocks), handle.route_version)
        for node, view in staged_boxes:
            node.packed_boxes = view
        if nlist_columns is not None:
            # Every RR-tree node's packed union becomes a slice of the
            # shared id column; PList crossover lookups become binary
            # searches over the shared point column (the private arrays
            # the pickle carried are dropped and reclaimed).
            columnar.install_nlist(context.route_index.tree, nlist_columns)
            context.route_index.plist.install_columns(plist_columns)
    except BaseException:
        # Defence in depth: should a partial install ever slip through,
        # drop it before the mapping goes away below.
        context._route_matrix = None
        context._route_matrix_version = -1
        for tree in (context.route_index.tree, context.transition_index.tree):
            for node in _walk_nodes(tree):
                node.packed_boxes = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - lingering buffer exports
            pass
        raise
    attachment = AttachedArena(shm)
    context._arena_attachment = attachment
    return attachment
